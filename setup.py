"""Legacy shim so editable installs work without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only exists
because the build environment is offline and its setuptools cannot
build PEP 517 editable wheels (`pip install -e . --no-build-isolation
--no-use-pep517` takes the legacy path through here).
"""

from setuptools import setup

setup()

#!/usr/bin/env python
"""Theorem 4, mechanized: every deterministic attempt fails.

Section 3 proves no deterministic protocol solves coordination, even
for two processors.  This example feeds a zoo of natural deterministic
attempts to the model checker, which produces for each one a concrete
*certificate* of failure:

* a run violating consistency or nontriviality, or
* an explicit infinite non-deciding schedule (a prefix plus a cycle of
  configurations that can be pumped forever — the Lemma 2 / Lemma 3
  construction made executable).

The certificates are then *replayed* through the simulator to show they
are real schedules, not just abstract claims.

Usage:
    python examples/impossibility_demo.py
"""

from __future__ import annotations

from repro.checker import analyze_deterministic
from repro.checker.flp import find_bivalent_initial
from repro.core.deterministic import zoo
from repro.sched.simple import FixedScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


def replay(protocol, report, repeats: int = 30) -> None:
    """Pump the lasso and report who starves."""
    schedule = list(report.lasso_prefix) + list(report.lasso_cycle) * repeats
    sim = Simulation(protocol, report.inputs, FixedScheduler(schedule),
                     ReplayableRng(0))
    for _ in range(len(schedule)):
        if sim.finished:
            break
        sim.step()
    for pid in sorted(set(report.lasso_cycle)):
        state = "decided" if pid in sim.decisions else "UNDECIDED"
        print(f"      after {sim.step_index} steps: P{pid} activated "
              f"{sim.activations[pid]} times, {state}")


def main() -> None:
    print("Lemma 2: searching input assignments for a bivalent initial "
          "configuration...")
    for protocol in zoo():
        found = find_bivalent_initial(protocol)
        if found:
            inputs, graph, _vmap = found
            print(f"  {protocol.name:<30} bivalent at inputs {inputs} "
                  f"({graph.n_states} reachable configurations)")
        else:
            print(f"  {protocol.name:<30} all initial configurations "
                  "univalent (fails elsewhere)")

    print("\nTheorem 4: one failure certificate per protocol.\n")
    for protocol in zoo():
        report = analyze_deterministic(protocol)
        print(report.render())
        if report.lasso_cycle:
            print("    replaying the witness schedule:")
            replay(type(protocol)(protocol._rule, "replay"), report)
        print()

    print("Every deterministic attempt fails, as Theorem 4 demands; the "
          "randomized\nprotocols in repro.core dodge the theorem by "
          "sampling coins the adversary\ncannot foresee.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Adversarial showdown: why the 'obvious' protocol is broken.

Section 5 of the paper warns that "many natural protocols fail in very
subtle ways" and gives the example: everyone re-flips a coin until all
registers agree.  An adaptive scheduler kills it — manufacture a frozen
disagreement between two processors, then starve them and activate only
the third, which can never see unanimity.

This example runs that exact strategy against (1) the naive protocol
and (2) the paper's real three-processor protocol, printing the
contrast benchmark E4 measures: the naive victim spins forever, the
Figure 2 victim simply out-races the frozen pair and decides alone.

Usage:
    python examples/adversarial_showdown.py
"""

from __future__ import annotations

from repro.core import NaiveProtocol, ThreeUnboundedProtocol
from repro.sched.adversary import NaiveKillerAdversary
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


BUDGET = 3_000


def run_under_killer(protocol, label: str, seed: int = 11) -> None:
    sim = Simulation(protocol, ("a", "a", "a"), NaiveKillerAdversary(),
                     ReplayableRng(seed))
    result = sim.run(BUDGET)
    victim_steps = result.activations[2]
    print(f"\n  {label}")
    print(f"    step budget:        {BUDGET}")
    print(f"    victim activations: {victim_steps}")
    if 2 in result.decisions:
        print(f"    victim decided:     {result.decisions[2]!r} after "
              f"{result.decision_activation[2]} of its own steps")
    else:
        print("    victim decided:     NEVER — activated "
              f"{victim_steps} times without terminating")
    frozen = {p: result.decisions.get(p, "—") for p in (0, 1)}
    print(f"    frozen pair:        decisions {frozen} "
          f"(registers hold the manufactured disagreement)")


def main() -> None:
    print("The Section 5 adversary: freeze a disagreement, starve the rest.")
    print("Strategy: run P0 until it writes; run P1 until its value "
          "differs from P0's;\nthen activate only P2, forever.")

    run_under_killer(NaiveProtocol(3), "naive 'flip until unanimous' protocol")
    run_under_killer(ThreeUnboundedProtocol(),
                     "Chor-Israeli-Li three-processor protocol (Figure 2)")

    print(
        "\nThe naive protocol requires unanimity the adversary can "
        "forever deny.\nThe paper's protocol instead lets the victim "
        "race: once its num field leads\nthe frozen registers by two "
        "while every leader it sees agrees with it, it\ndecides alone "
        "— wait-freedom in action."
    )


if __name__ == "__main__":
    main()

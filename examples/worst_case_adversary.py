#!/usr/bin/env python
"""Solving the adversary's game exactly: the 10-step bound is tight.

The paper's corollary says the two-processor protocol decides in an
expected ≤ 2 + 4·2 = 10 steps per processor, against any adaptive
adversary.  Is the 10 slack or sharp?  The scheduling game is a Markov
decision process on a finite configuration graph, so we can answer by
value iteration rather than by argument — and the answer is sharp:
the optimal adversary forces exactly 10.0.

This example solves the game under several cost models, shows the
ladder of adversaries from fair scheduling up to the optimal policy,
and cross-checks the solved values against Monte-Carlo measurement.

Usage:
    python examples/worst_case_adversary.py
"""

from __future__ import annotations

from repro.core import TwoProcessProtocol
from repro.sched.adversary import DisagreementAdversary
from repro.sched.lookahead import LookaheadAdversary
from repro.sched.optimal import OptimalAdversary, evaluate_policy, solve_game
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


def measured_p0_cost(scheduler_factory, n_runs=3000):
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=5,
    )
    stats = runner.run_many(n_runs, 4000)
    return sum(r.steps_to_decide[0] for r in stats.runs) / n_runs


def main() -> None:
    print("Solving the two-processor scheduling game by value iteration\n")

    for label, cost in [("steps of P0 until it decides", "processor:0"),
                        ("total steps until both decide", "total")]:
        sol = solve_game(TwoProcessProtocol(), ("a", "b"), cost_model=cost)
        print(f"  {label:<36} exact worst case = {sol.value:.4f}  "
              f"({len(sol.values)} configs, {sol.iterations} sweeps)")

    uni = evaluate_policy(TwoProcessProtocol(), ("a", "b"),
                          lambda c, enabled: None)
    print(f"  {'same, under uniform random scheduling':<36} "
          f"exact = {uni.value:.4f}")

    print("\nThe corollary's bound (2 + 4·2 = 10) is *tight*: the optimal")
    print("adversary achieves it exactly.  The adversary ladder, measured")
    print("(mean steps of P0, 3000 runs each):\n")

    sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                     cost_model="processor:0")
    ladder = [
        ("fair random scheduler", lambda rng: RandomScheduler(rng)),
        ("hand-written heuristic", lambda rng: DisagreementAdversary()),
        ("expectimax lookahead (h=4)", lambda rng: LookaheadAdversary(4)),
        ("optimal policy (value iteration)",
         lambda rng: OptimalAdversary(sol)),
    ]
    for label, factory in ladder:
        print(f"  {label:<36} {measured_p0_cost(factory):6.2f}")

    print("\nKnowledge is power, but bounded power: even the perfect")
    print("adversary cannot push past 10 — that is Theorem 7 with the")
    print("inequality replaced by an equality it didn't know it had.")


if __name__ == "__main__":
    main()

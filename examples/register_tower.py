#!/usr/bin/env python
"""The register tower: from flickering bits to atomic registers.

The paper's model needs atomic single-writer registers and asserts
(citing Lamport) that they "can be implemented from existing low level
hardware".  This example climbs the construction tower in a simulated
interval-time world where reads genuinely overlap writes:

    safe bit -> regular bit -> k-valued regular -> SRSW atomic
             -> MRSW atomic

For each level it runs an adversarially interleaved workload, grades
the resulting operation history against the formal safe / regular /
atomic conditions, and reports the primitive-operation cost per logical
operation (the price of each rung).

Usage:
    python examples/register_tower.py [n_seeds]
"""

from __future__ import annotations

import sys

from repro.registers import run_register_workload

LEVELS = (
    ("safe-cell", "bare safe cell (flickering hardware bit)", {}),
    ("regular-cell", "bare regular cell", {}),
    ("atomic-cell", "bare atomic cell (reference)", {}),
    ("regular-from-safe", "regular bit from safe bit", {}),
    ("unary-regular", "k-valued regular from regular bits", {}),
    ("srsw-atomic", "SRSW atomic from regular + seqnums", {"n_readers": 1}),
    ("mrsw-atomic", "MRSW atomic from SRSW + reader gossip",
     {"n_readers": 3, "n_reads": 6}),
)


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    print(f"Grading each level over {n_seeds} adversarial interleavings\n")
    print(f"{'level':<20} {'construction':<40} {'grade':<9} "
          f"{'events/op':>9}")
    print("-" * 82)
    for level, blurb, kw in LEVELS:
        worst = "atomic"
        cost = 0.0
        order = {"broken": 0, "safe": 1, "regular": 2, "atomic": 3}
        for seed in range(n_seeds):
            report = run_register_workload(level, seed=seed, **kw)
            if order[report.grade()] < order[worst]:
                worst = report.grade()
            cost += report.events_per_op
        cost /= n_seeds
        print(f"{level:<20} {blurb:<40} {worst:<9} {cost:>9.1f}")

    print(
        "\nReading the table: a level's worst grade over all seeds is "
        "its real semantics.\nThe bare safe cell degrades to 'safe' "
        "(overlapping reads return garbage), the\nbare regular cell to "
        "'regular' (new/old inversions), while every construction\n"
        "holds the level it is built to provide — at a measurable "
        "events-per-operation\ncost that is the price of the guarantee "
        "(benchmark E9 quantifies this)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: randomized wait-free consensus in a few lines.

Runs the paper's three headline protocols on mixed inputs, under a
seeded random scheduler, and prints what happened.  Everything here is
deterministic given the seed — re-running reproduces the exact runs.

Usage:
    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import (
    NProcessProtocol,
    ThreeBoundedProtocol,
    ThreeUnboundedProtocol,
    TwoProcessProtocol,
    solve,
)


def show(label: str, outcome) -> None:
    steps = ", ".join(
        f"P{pid}:{n}" for pid, n in sorted(outcome.steps_per_processor.items())
    )
    print(f"  {label:<42} -> agreed on {outcome.value!r}   "
          f"(total {outcome.steps} steps; per-processor {steps})")
    assert outcome.consistent, "the paper's consistency property failed?!"
    assert outcome.nontrivial, "the decision was not anyone's input?!"


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    print(f"Chor-Israeli-Li (PODC 1987) protocols, seed={seed}\n")

    print("Two processors, one shared bit each (Figure 1):")
    show("inputs ('a', 'b')",
         solve(TwoProcessProtocol(), ["a", "b"], seed=seed))
    show("inputs ('b', 'b')",
         solve(TwoProcessProtocol(), ["b", "b"], seed=seed))

    print("\nThree processors, unbounded pref/num registers (Figure 2):")
    show("inputs ('a', 'b', 'a')",
         solve(ThreeUnboundedProtocol(), ["a", "b", "a"], seed=seed))

    print("\nThree processors, bounded registers (Section 6):")
    show("inputs ('a', 'b', 'b')",
         solve(ThreeBoundedProtocol(), ["a", "b", "b"], seed=seed))

    print("\nSix processors (full-paper generalization):")
    show("inputs ('a','b','a','b','b','a')",
         solve(NProcessProtocol(6), list("ababba"), seed=seed))

    print("\nA space-time diagram (two processors):")
    from repro.sim.viz import render_decision_summary, render_space_time

    outcome = solve(TwoProcessProtocol(), ["a", "b"], seed=seed,
                    record_trace=True)
    print(render_space_time(outcome.trace, 2, limit=20))
    print()
    print(render_decision_summary(outcome.trace))

    print("\nEvery run above was checked for consistency (no two "
          "processors decide differently)\nand nontriviality (the "
          "decision is someone's input).")


if __name__ == "__main__":
    main()

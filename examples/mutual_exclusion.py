#!/usr/bin/env python
"""Mutual exclusion and friends: the applications of Section 1.

The paper motivates coordination with mutual exclusion ("choosing the
identity of a processor who is to enter the critical region ... the
input value of every processor in the trial region is simply its own
identity").  This example exercises that reduction plus two relatives:

* a long-lived mutual-exclusion arbiter (one consensus round per
  critical-section grant),
* leader election that survives n−1 fail-stop crashes,
* choice coordination over eight alternatives via the Theorem 5
  bitwise reduction.

Usage:
    python examples/mutual_exclusion.py [seed]
"""

from __future__ import annotations

import sys

from repro.apps import MutualExclusion, coordinate_choice, elect_leader


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    print("== Mutual exclusion as coordination ==")
    arbiter = MutualExclusion(n=5, seed=seed)
    log = arbiter.run_rounds(12)
    for grant in log.grants[:6]:
        print(f"  round {grant.round_index:>2}: contenders "
              f"{grant.contenders} -> P{grant.winner} enters the "
              f"critical section ({grant.steps} steps)")
    print("  ...")
    print(f"  wins over {len(log.grants)} rounds: "
          f"{dict(sorted(log.wins_by_processor().items()))}")
    print(f"  mutual exclusion held every round: "
          f"{log.mutual_exclusion_holds()}")

    print("\n== Leader election under crashes ==")
    healthy = elect_leader(5, seed=seed)
    print(f"  no crashes:        P{healthy.leader} elected, unanimous="
          f"{healthy.unanimous}, {healthy.steps} steps")
    brutal = elect_leader(5, seed=seed, crash=[0, 1, 2, 3])
    print(f"  4 of 5 crash:      P{brutal.leader} elected by the lone "
          f"survivor (crashed: {brutal.crashed})")
    print("  The paper's contrast: in the message-passing model no "
          "agreement is possible\n  once half the processors may fail "
          "[Bracha-Toueg]; with shared registers the\n  protocols "
          "tolerate t = n-1.")

    print("\n== Choice coordination (Rabin's problem, 8 alternatives) ==")
    result = coordinate_choice(
        alternatives=("dish1", "dish2", "dish3", "dish4",
                      "dish5", "dish6", "dish7", "dish8"),
        preferences=("dish3", "dish7", "dish3"),
        seed=seed,
    )
    print(f"  preferences {result.preferences} -> all committed to "
          f"{result.chosen!r}")
    print(f"  via the Theorem 5 bitwise reduction "
          f"(3 binary instances): {result.via_reduction}; "
          f"{result.steps} steps total")
    print(f"  chosen alternative was someone's preference: "
          f"{result.respected_someone}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Worker-sharded tail-probability sweep (Theorem 7).

Theorem 7 says a processor running the two-processor protocol is still
undecided after k of its own steps with probability at most
(1/4)^(k/2) as printed — (3/4)^(k/2) as the proof actually implies
(finding F2 in EXPERIMENTS.md).  Resolving the deep tail empirically
takes a lot of runs, so this sweep shards the batch across worker
processes with ``run_many(..., workers=N)`` — and, because every run is
keyed by ``derive_seed(root_seed, "run", i)`` alone, first *proves* on
a small batch that sharding is invisible: the merged metrics are
bit-identical to a serial run with the same root seed.

Usage:
    python examples/parallel_sweep.py [runs] [workers]
"""

from __future__ import annotations

import os
import sys
import time

from repro.analysis.theory import (
    two_process_tail_bound,
    two_process_tail_paper_stated,
)
from repro.obs import MetricsRegistry
from repro.parallel import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.runner import ExperimentRunner

SEED = 2024
MAX_STEPS = 4_000


def make_runner(registry=None):
    """Factories come from repro.parallel.tasks so they pickle."""
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        sinks=(registry,) if registry is not None else (),
    )


def main() -> None:
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    workers = (int(sys.argv[2]) if len(sys.argv) > 2
               else min(4, os.cpu_count() or 1))

    print(f"Theorem 7 tail sweep: {n_runs} two-processor runs, "
          f"seed {SEED}, {workers} workers\n")

    # -- the sharding contract, demonstrated ---------------------------
    serial_reg, sharded_reg = MetricsRegistry(), MetricsRegistry()
    small = min(n_runs, 500)
    serial = make_runner(serial_reg).run_many(small, max_steps=MAX_STEPS)
    sharded = make_runner(sharded_reg).run_many(small, max_steps=MAX_STEPS,
                                                workers=max(2, workers))
    identical = (serial.runs == sharded.runs
                 and serial_reg.to_dict() == sharded_reg.to_dict())
    print(f"sharding contract ({small} runs, workers=1 vs "
          f"workers={max(2, workers)}):")
    print(f"  bit-identical run stats and merged metrics: {identical}")
    assert identical, "derive_seed(root, 'run', i) contract violated?!"

    # -- the full sweep, sharded ---------------------------------------
    registry = MetricsRegistry()
    t0 = time.perf_counter()
    stats = make_runner(registry).run_many(n_runs, max_steps=MAX_STEPS,
                                           workers=workers)
    elapsed = time.perf_counter() - t0
    hist = registry.histograms["steps_to_decide"]
    print(f"\nswept {n_runs} runs ({hist.total} decisions) "
          f"in {elapsed:.2f}s at {workers} workers")
    print(f"mean steps to decide: {hist.mean:.2f} "
          f"(corollary bound: <= 10)\n")

    print("tail P(steps > k): empirical vs Theorem 7 envelopes")
    print(f"  {'k':>3}  {'empirical':>10}  {'(3/4)^(k/2)':>12}  "
          f"{'(1/4)^(k/2) printed':>20}")
    worst = hist.maximum or 0
    for k in range(2, min(worst, 14) + 1, 2):
        emp = stats.tail_probability(k)
        proof = two_process_tail_bound(k)
        printed = two_process_tail_paper_stated(k)
        inside = "ok" if emp <= proof else "ABOVE"
        print(f"  {k:>3}  {emp:>10.5f}  {proof:>12.5f}  "
              f"{printed:>20.5f}  [{inside} vs proof-implied]")

    assert stats.n_consistency_violations == 0
    print("\nevery tail point sits inside the proof-implied "
          "(3/4)^(k/2) envelope; the printed (1/4)^(k/2) curve is "
          "optimistic (finding F2 in EXPERIMENTS.md).")


if __name__ == "__main__":
    main()

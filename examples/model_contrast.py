#!/usr/bin/env python
"""Registers vs messages: the t = n−1 headline.

Section 1 of the paper contrasts its shared-register protocols with the
classical message-passing model: there, "no agreement (even randomized)
can be achieved if more than half of the processors are faulty"
(Bracha–Toueg), while the register protocols shrug off t = n−1 crashes.

This example runs both sides at n = 4:

* the register protocol with 3 of 4 processors crashed — the lone
  survivor still decides;
* Ben-Or's message-passing consensus at every failure budget t,
  watching its waiting thresholds become unsatisfiable at t ≥ n/2;
* the partition adversary splitting a relative-threshold Ben-Or into
  two confidently-deciding halves — what "losing safety instead of
  liveness" looks like.

Usage:
    python examples/model_contrast.py
"""

from __future__ import annotations

from repro.core import NProcessProtocol
from repro.msgpass import (
    BenOrProtocol,
    MPSimulation,
    PartitionAdversary,
    RandomDelivery,
)
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import RoundRobinScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


def main() -> None:
    n = 4
    print(f"== Shared registers, n = {n}, t = n−1 = {n - 1} crashes ==")
    plan = CrashPlan.kill_all_but(survivor=1, n=n)
    sim = Simulation(
        NProcessProtocol(n), ("a", "b", "a", "b"),
        CrashingScheduler(RoundRobinScheduler(), plan),
        ReplayableRng(2),
    )
    result = sim.run(200_000)
    print(f"  crashed: {sorted(result.crashed)}; survivor P1 decided "
          f"{result.decisions.get(1)!r} after "
          f"{result.decision_activation.get(1)} of its own steps\n")

    print(f"== Ben-Or (message passing), n = {n}, sweeping the budget t ==")
    for t in range(n):
        rng = ReplayableRng(30 + t)
        sim = MPSimulation(BenOrProtocol(n, t), (0, 1, 0, 1),
                           RandomDelivery(rng.child("net")), rng)
        r = sim.run(3000)
        status = (f"all decided {r.decided_values} after "
                  f"{r.deliveries} deliveries"
                  if r.all_live_decided else
                  f"NOBODY decided within {r.deliveries} deliveries "
                  "(thresholds unsatisfiable)")
        wall = "  <- Bracha-Toueg wall" if 2 * t >= n else ""
        print(f"  t = {t}: {status}{wall}")

    print("\n== The partition adversary at t = n/2 ==")
    print("  groups {0,1} with input 0, {2,3} with input 1; cross-group")
    print("  messages delayed forever (legal in an asynchronous network).")
    for mode in ("absolute", "relative"):
        rng = ReplayableRng(77)
        sim = MPSimulation(
            BenOrProtocol(n, n // 2, thresholds=mode), (0, 0, 1, 1),
            PartitionAdversary([[0, 1], [2, 3]]), rng,
        )
        r = sim.run(3000)
        if not r.decisions:
            verdict = "blocks forever — loses liveness, keeps safety"
        elif len(r.decided_values) > 1:
            verdict = (f"halves decide {sorted(r.decided_values)} — "
                       "keeps liveness, LOSES SAFETY")
        else:
            verdict = f"decided {r.decided_values}"
        print(f"  {mode:<9} thresholds: {verdict}")

    print("\nNo threshold discipline escapes: at t ≥ n/2 message passing")
    print("must give up safety or liveness (Bracha–Toueg).  The register")
    print("model has no such wall — which is the paper's point.")


if __name__ == "__main__":
    main()

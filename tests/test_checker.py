"""Tests for the checker: explorer, valency, properties, FLP pipeline."""

from __future__ import annotations

import pytest

from repro.checker import (
    classify,
    explore,
    find_bivalent_initial,
    successors,
    validate_run,
    verify_safety,
)
from repro.checker.explorer import enabled_pids
from repro.checker.properties import verify_safety_all_inputs
from repro.checker.valency import Valency, decision_values_of
from repro.core.deterministic import mirror, obstinate
from repro.core.two_process import TwoProcessProtocol
from repro.errors import ExplorationLimitError, VerificationError
from repro.sim.config import Configuration, RegisterLayout

from conftest import run_protocol


class TestExplorer:
    def test_initial_successors_are_the_two_writes(self):
        p = TwoProcessProtocol()
        layout = RegisterLayout.for_protocol(p)
        root = Configuration.initial(p, layout, ("a", "b"))
        succ = list(successors(p, layout, root))
        assert len(succ) == 2
        assert {s.pid for s in succ} == {0, 1}
        assert all(s.probability == 1.0 for s in succ)

    def test_coin_branches_both_explored(self):
        p = TwoProcessProtocol()
        graph = explore(p, ("a", "b"))
        branching = [
            s for succ in graph.edges.values() for s in succ
            if s.probability == 0.5
        ]
        assert branching, "coin branches must appear in the graph"

    def test_full_exploration_is_complete(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"))
        assert graph.complete
        assert not graph.frontier
        assert graph.n_states > 10

    def test_depth_budget_truncates(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"), max_depth=2)
        assert not graph.complete
        assert graph.frontier

    def test_state_budget_truncates(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"), max_states=5)
        assert not graph.complete
        assert graph.n_states <= 6

    def test_terminal_nodes_have_all_decided(self):
        p = TwoProcessProtocol()
        graph = explore(p, ("a", "b"))
        terminals = list(graph.terminal_nodes())
        assert terminals
        for config in terminals:
            assert not enabled_pids(p, config)
            assert len(config.decisions(p)) == 2

    def test_on_node_callback_sees_every_state(self):
        count = []
        graph = explore(TwoProcessProtocol(), ("a", "b"),
                        on_node=lambda c, d: count.append(d))
        assert len(count) == graph.n_states


class TestValency:
    def test_requires_complete_graph(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"), max_depth=2)
        with pytest.raises(ExplorationLimitError):
            decision_values_of(graph)

    def test_terminal_decisions_seed_the_fixpoint(self):
        p = TwoProcessProtocol()
        graph = explore(p, ("a", "a"))
        vmap = classify(graph)
        for config in graph.terminal_nodes():
            assert vmap.value(config) == "a"

    def test_counts_add_up(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"))
        vmap = classify(graph)
        total = sum(
            vmap.count(v) for v in
            (Valency.BIVALENT, Valency.UNIVALENT, Valency.NULLVALENT)
        )
        assert total == graph.n_states

    def test_obstinate_has_nullvalent_states(self):
        graph = explore(obstinate(), ("a", "b"))
        vmap = classify(graph)
        assert vmap.count(Valency.NULLVALENT) > 0

    def test_mirror_mixed_initial_is_bivalent(self):
        graph = explore(mirror(), ("a", "b"))
        vmap = classify(graph)
        assert vmap.valency(graph.roots[0]) is Valency.BIVALENT


class TestProperties:
    def test_validate_run_passes_good_run(self):
        result = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=4)
        report = validate_run(result, require_decision=True)
        assert report.consistent and report.nontrivial and report.all_decided

    def test_validate_run_rejects_incomplete_when_required(self):
        result = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=4,
                              max_steps=1)
        with pytest.raises(VerificationError):
            validate_run(result, require_decision=True)
        # ...but passes without the completeness requirement.
        validate_run(result)

    def test_verify_safety_flags_broken_protocol(self):
        # The 'decide your own input immediately' protocol: build it by
        # subverting the two-process rule machinery.
        from repro.core.deterministic import TwoProcessDeterministic

        def selfish(pid, pref, read):
            return ("decide", pref)

        # selfish never reaches its read (decides at the read step with
        # own pref) — with mixed inputs, two different decisions.
        broken = TwoProcessDeterministic(selfish, "selfish")
        report = verify_safety(broken, ("a", "b"))
        assert not report.ok
        assert "consistency" in report.violation
        assert report.witness is not None

    def test_verify_safety_guarantee_strings(self):
        full = verify_safety(TwoProcessProtocol(), ("a", "b"))
        assert "full reachable" in full.guarantee()
        partial = verify_safety(TwoProcessProtocol(), ("a", "b"), max_depth=3)
        assert "up to depth" in partial.guarantee()

    def test_verify_safety_all_inputs(self):
        reports = verify_safety_all_inputs(
            lambda: TwoProcessProtocol(), ("a", "b"), n=2
        )
        assert len(reports) == 4
        assert all(r.ok for _inputs, r in reports)


class TestFLPPipeline:
    def test_bivalent_initial_found_for_consistent_zoo(self):
        found = find_bivalent_initial(mirror())
        assert found is not None
        inputs, graph, vmap = found
        assert set(inputs) == {"a", "b"}

    def test_nontrivial_decision_values_in_graph(self):
        # Sanity: the mirror graph's reachable decisions are inputs only.
        graph = explore(mirror(), ("a", "b"))
        p = mirror()
        for config in graph.nodes():
            for v in config.decisions(p).values():
                assert v in ("a", "b")

"""Tests for the Lamport construction tower (E9's correctness half).

Each construction must grade at (or above) its advertised level over
many adversarial interleavings — and the weak baselines must *fail*
the stronger checks on at least some seed, otherwise the checkers
prove nothing.
"""

from __future__ import annotations

import pytest

from repro.registers.constructions import build_tower
from repro.registers.interval import IntervalSim
from repro.registers.workload import run_register_workload


def grades(level, n_seeds=30, **kw):
    out = []
    for seed in range(n_seeds):
        report = run_register_workload(level, seed=seed, **kw)
        out.append(report.grade())
    return out


class TestBaselines:
    def test_safe_cell_is_safe_but_not_regular(self):
        gs = grades("safe-cell")
        assert all(g in ("safe", "regular", "atomic") for g in gs)
        assert "safe" in gs, "no seed exposed safe-only behaviour"

    def test_regular_cell_is_regular_but_not_atomic(self):
        gs = grades("regular-cell")
        assert all(g in ("regular", "atomic") for g in gs)
        assert "regular" in gs, "no seed exposed a new/old inversion"

    def test_atomic_cell_always_atomic(self):
        assert set(grades("atomic-cell")) == {"atomic"}


class TestConstructions:
    def test_regular_from_safe_always_regular(self):
        gs = grades("regular-from-safe")
        assert all(g in ("regular", "atomic") for g in gs)

    def test_unary_regular_always_regular(self):
        gs = grades("unary-regular")
        assert all(g in ("regular", "atomic") for g in gs)

    def test_srsw_atomic_always_atomic(self):
        assert set(grades("srsw-atomic", n_readers=1)) == {"atomic"}

    def test_mrsw_atomic_always_atomic(self):
        assert set(grades("mrsw-atomic", n_readers=3, n_reads=5)) == {"atomic"}

    def test_srsw_atomic_rejects_second_reader(self):
        sim = IntervalSim(seed=0)
        reg = build_tower(sim, "srsw-atomic", domain=(0, 1, 2), initial=0)
        gen = reg.read_gen(1)  # not the registered reader
        with pytest.raises(ValueError):
            next(gen)

    def test_unknown_level_rejected(self):
        sim = IntervalSim(seed=0)
        with pytest.raises(ValueError):
            build_tower(sim, "quantum", domain=(0, 1), initial=0)

    def test_regular_from_safe_requires_bits(self):
        sim = IntervalSim(seed=0)
        with pytest.raises(ValueError):
            build_tower(sim, "regular-from-safe", domain=(0, 1, 2), initial=0)


class TestOverheadAccounting:
    def test_unary_costs_more_than_cell(self):
        cell = run_register_workload("regular-cell", seed=1)
        unary = run_register_workload("unary-regular", seed=1)
        assert unary.events_per_op > cell.events_per_op

    def test_mrsw_costs_more_than_srsw(self):
        srsw = run_register_workload("srsw-atomic", seed=1, n_readers=1)
        mrsw = run_register_workload("mrsw-atomic", seed=1, n_readers=3,
                                     n_reads=5)
        assert mrsw.events_per_op > srsw.events_per_op

    def test_report_fields(self):
        report = run_register_workload("atomic-cell", seed=2)
        assert report.logical_ops == len(report.history)
        assert report.primitive_events > 0
        assert "atomic" in report.atomic.render() or report.atomic.ok


class TestAdversarialResolver:
    def test_worst_case_resolver_cannot_break_constructions(self):
        # A resolver that always returns the first (oldest) choice and
        # one that always returns the last: neither may break the
        # regular constructions' guarantees.
        for pick in (lambda k, c: c[0], lambda k, c: c[-1]):
            for level in ("regular-from-safe", "unary-regular"):
                for seed in range(10):
                    report = run_register_workload(level, seed=seed,
                                                   resolver=pick)
                    assert report.regular.ok, (
                        f"{level} broke under adversarial resolver "
                        f"(seed {seed}):\n{report.regular.render()}"
                    )

    def test_garbage_resolver_breaks_safe_cell_regularity(self):
        # Sanity that the adversary has teeth: a safe cell with a
        # hostile resolver should produce regularity violations.
        def hostile(kind, choices):
            return choices[-1] if kind != "safe" else 0

        broken = 0
        for seed in range(20):
            report = run_register_workload("safe-cell", seed=seed,
                                           resolver=hostile)
            broken += not report.regular.ok
        assert broken > 0

"""Property-based tests (hypothesis) on core invariants.

These complement the exhaustive checker: hypothesis drives the
protocols through arbitrary seeds, input assignments, coin biases, and
adversarial schedule fragments, asserting the paper's safety
properties and the library's structural invariants on every generated
case.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.multivalued import MultiValuedProtocol, bit_width
from repro.core.n_process import NProcessProtocol
from repro.core.rules import PrefNum, candidate, decision
from repro.core.three_bounded import MIXED, ThreeBoundedProtocol, advance, ahead
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.kernel import Simulation
from repro.sim.ops import BOTTOM
from repro.sim.rng import ReplayableRng, derive_seed

from conftest import run_protocol


values2 = st.sampled_from(["a", "b"])
seeds = st.integers(min_value=0, max_value=2 ** 32)


# ----------------------------------------------------------------------
# RNG derivation
# ----------------------------------------------------------------------

@given(seeds, st.lists(st.one_of(st.integers(0, 2 ** 32), st.text(max_size=8)),
                       max_size=4))
def test_derive_seed_in_range_and_deterministic(seed, path):
    s1 = derive_seed(seed, *path)
    s2 = derive_seed(seed, *path)
    assert s1 == s2
    assert 0 <= s1 < 2 ** 64


@given(seeds)
def test_child_streams_replayable(seed):
    a = ReplayableRng(seed).child("x", 1)
    b = ReplayableRng(seed).child("x", 1)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


# ----------------------------------------------------------------------
# Circular position arithmetic (bounded protocol)
# ----------------------------------------------------------------------

positions = st.integers(min_value=1, max_value=9)


@given(positions, positions)
def test_ahead_antisymmetric_where_defined(x, y):
    d = ahead(x, y)
    assert -4 <= d <= 4
    if d != -4:  # -4/+4 wrap to each other's negation ambiguously at ±4...
        # antisymmetry holds strictly inside the window
        if abs(d) < 4:
            assert ahead(y, x) == -d


@given(positions)
def test_advance_stays_on_ring_and_moves_one(p):
    q = advance(p)
    assert 1 <= q <= 9
    assert ahead(q, p) == 1


@given(positions, st.integers(min_value=0, max_value=4))
def test_k_advances_measure_k(p, k):
    q = p
    for _ in range(k):
        q = advance(q)
    assert ahead(q, p) == k


# ----------------------------------------------------------------------
# Pref/num rules
# ----------------------------------------------------------------------

prefnums = st.builds(
    PrefNum,
    pref=st.sampled_from(["a", "b", BOTTOM]),
    num=st.integers(min_value=0, max_value=12),
)
own_prefnums = st.builds(
    PrefNum,
    pref=values2,
    num=st.integers(min_value=1, max_value=12),
)


@given(own_prefnums, st.lists(prefnums, min_size=1, max_size=5))
def test_candidate_increments_and_takes_existing_pref(own, others):
    cand = candidate(own, others)
    assert cand.num == own.num + 1
    assert cand.pref in {own.pref} | {o.pref for o in others}
    assert cand.pref is not BOTTOM


@given(own_prefnums, st.lists(prefnums, min_size=1, max_size=5))
def test_decision_value_is_a_visible_pref(own, others):
    value = decision(own, others)
    if value is not None:
        assert value is not BOTTOM
        assert value in {own.pref} | {o.pref for o in others}


@given(own_prefnums, st.lists(prefnums, min_size=1, max_size=5))
def test_decision_case_b_only_from_the_front(own, others):
    value = decision(own, others)
    prefs = {own.pref} | {o.pref for o in others if o.pref is not BOTTOM}
    if value is not None and len(prefs) > 1:
        # Not unanimous, so this was case B: the decider must lead.
        assert own.num >= max(o.num for o in others)


# ----------------------------------------------------------------------
# Protocol runs: safety under arbitrary seeds and inputs
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(values2, values2, seeds)
def test_two_process_safety_any_run(va, vb, seed):
    result = run_protocol(TwoProcessProtocol(), (va, vb), seed=seed)
    assert result.completed
    assert result.consistent and result.nontrivial
    # Decisions are always inputs; with unanimous inputs, that value.
    if va == vb:
        assert result.decided_values == {va}


@settings(max_examples=25, deadline=None)
@given(st.tuples(values2, values2, values2), seeds)
def test_three_unbounded_safety_any_run(inputs, seed):
    result = run_protocol(ThreeUnboundedProtocol(), inputs, seed=seed,
                          max_steps=100_000)
    assert result.completed
    assert result.consistent and result.nontrivial


@settings(max_examples=25, deadline=None)
@given(st.tuples(values2, values2, values2), seeds)
def test_three_bounded_safety_any_run(inputs, seed):
    result = run_protocol(ThreeBoundedProtocol(), inputs, seed=seed,
                          max_steps=100_000)
    assert result.completed
    assert result.consistent and result.nontrivial


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=6), seeds, st.data())
def test_n_process_safety_any_run(n, seed, data):
    inputs = tuple(
        data.draw(values2, label=f"input{i}") for i in range(n)
    )
    result = run_protocol(NProcessProtocol(n), inputs, seed=seed,
                          max_steps=200_000)
    assert result.completed
    assert result.consistent and result.nontrivial


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.1, max_value=0.9), seeds)
def test_biased_coins_preserve_safety(p_heads, seed):
    # The coin bias is a termination knob, never a safety knob.
    result = run_protocol(
        ThreeUnboundedProtocol(p_heads=p_heads), ("a", "b", "a"),
        seed=seed, max_steps=200_000,
    )
    assert result.consistent and result.nontrivial


# ----------------------------------------------------------------------
# Adversarial schedule fragments
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                max_size=40), seeds)
def test_two_process_safety_under_arbitrary_prefix(prefix, seed):
    # Any hand-crafted schedule prefix (then round-robin) keeps safety.
    rng = ReplayableRng(seed)
    sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                     FixedScheduler(prefix), rng)
    result = sim.run(5_000)
    assert result.consistent and result.nontrivial
    assert result.completed


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                max_size=60), seeds)
def test_three_bounded_safety_under_arbitrary_prefix(prefix, seed):
    rng = ReplayableRng(seed)
    sim = Simulation(ThreeBoundedProtocol(), ("a", "b", "b"),
                     FixedScheduler(prefix), rng)
    result = sim.run(100_000)
    assert result.consistent and result.nontrivial
    assert result.completed


# ----------------------------------------------------------------------
# Multivalued reduction
# ----------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=10 ** 6))
def test_bit_width_bounds(k):
    w = bit_width(k)
    assert 2 ** w >= k
    assert w == 1 or 2 ** (w - 1) < k


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=9), seeds, st.data())
def test_multivalued_decides_an_input(k, seed, data):
    values = tuple(f"v{i}" for i in range(k))
    inputs = (
        data.draw(st.sampled_from(values)),
        data.draw(st.sampled_from(values)),
    )
    protocol = MultiValuedProtocol(
        base_factory=lambda: TwoProcessProtocol(values=(0, 1)),
        values=values,
    )
    result = run_protocol(protocol, inputs, seed=seed, max_steps=200_000)
    assert result.completed
    assert result.consistent
    assert result.decided_values.issubset(set(inputs))

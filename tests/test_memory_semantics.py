"""Tests for the pluggable memory-semantics layer (docs/MODEL.md).

Covers the :mod:`repro.sim.memory` models directly, the kernel's
read-value resolution vocabulary (``Scheduler.resolve_read`` and
``Activate(pid, read_value=...)``), the fast-vs-reference differential
matrix under weak semantics, atomic zero-cost identity, journal schema
v2, batch/parallel threading of :class:`MemorySpec`, and the checker's
weak-memory branching (the Hadzilacos–Hu–Toueg-style claims: regular
registers keep two-process consensus consistent, safe registers admit a
replayable garbage-read anomaly).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.checker import (
    find_memory_anomaly,
    replay_witness,
    verify_safety,
)
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.core.consensus import solve
from repro.errors import SimulationError
from repro.obs import JsonlJournal, MetricsRegistry, replay_journal
from repro.obs.journal import SUPPORTED_VERSIONS, concatenate_journals
from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                  SchedulerSpec)
from repro.sched.adversary import ReadValueAdversary
from repro.sched.base import Scheduler
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.config import RegisterLayout
from repro.sim.kernel import Activate, Simulation
from repro.sim.memory import (
    ATOMIC,
    MEMORY_NAMES,
    AtomicMemory,
    MemorySpec,
    RegularMemory,
    SafeMemory,
    memory_spec,
)
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.process import Automaton, Branch, RegisterSpec
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner


# ----------------------------------------------------------------------
# Direct model semantics
# ----------------------------------------------------------------------


def _layout(n_regs=2, initial=BOTTOM):
    everyone = (0, 1)
    return RegisterLayout([
        RegisterSpec(name=f"r{i}", writers=everyone, readers=everyone,
                     initial=initial)
        for i in range(n_regs)
    ])


class TestAtomicModel:
    def test_write_is_immediately_the_only_choice(self):
        mem = AtomicMemory(_layout())
        assert mem.read_choices(0) == (BOTTOM,)
        mem.write(0, 0, "x")
        assert mem.read_choices(0) == ("x",)
        assert mem.values[0] == "x"

    def test_snapshot_is_always_none(self):
        mem = AtomicMemory(_layout())
        mem.write(1, 1, 5)
        assert mem.snapshot() is None
        mem.restore(("a", "b"), None)
        assert mem.values == ["a", "b"]
        with pytest.raises(SimulationError):
            mem.restore(("a", "b"), ("junk",))


class TestRegularModel:
    def test_write_pending_until_writers_next_activation(self):
        mem = RegularMemory(_layout())
        mem.on_activate(0)
        mem.write(0, 0, "new")
        # Pending: both old and new are legal, committed value first.
        assert mem.read_choices(0) == (BOTTOM, "new")
        assert mem.values[0] is BOTTOM
        # Another processor's activation does not commit P0's write.
        mem.on_activate(1)
        assert mem.read_choices(0) == (BOTTOM, "new")
        # P0's own next activation commits it.
        mem.on_activate(0)
        assert mem.read_choices(0) == ("new",)
        assert mem.values[0] == "new"

    def test_choices_are_committed_first_in_writer_order(self):
        mem = RegularMemory(_layout(n_regs=1))
        mem.write(1, 0, "b")
        mem.write(0, 0, "a")
        assert mem.read_choices(0) == (BOTTOM, "a", "b")

    def test_duplicate_pending_value_deduped(self):
        mem = RegularMemory(_layout(n_regs=1))
        mem.on_activate(0)
        mem.write(0, 0, "v")
        mem.on_activate(0)  # commit "v"
        mem.write(0, 0, "v")  # rewrite the same value
        # Regular registers cannot distinguish old from identical new.
        assert mem.read_choices(0) == ("v",)

    def test_halted_writer_stays_pending_forever(self):
        mem = RegularMemory(_layout(n_regs=1))
        mem.write(0, 0, "last")
        for _ in range(5):
            mem.on_activate(1)
        assert mem.read_choices(0) == (BOTTOM, "last")

    def test_snapshot_restore_round_trip(self):
        mem = RegularMemory(_layout())
        assert mem.snapshot() is None  # quiescent
        mem.write(0, 1, "p")
        snap = mem.snapshot()
        assert snap == ((0, 1, "p"),)
        other = RegularMemory(_layout())
        other.restore(tuple(mem.values), snap)
        assert other.read_choices(1) == (BOTTOM, "p")
        other.restore((1, 2), None)
        assert other.snapshot() is None
        assert other.values == [1, 2]


class TestSafeModel:
    def test_contended_read_may_return_initial_garbage(self):
        mem = SafeMemory(_layout(n_regs=1))
        mem.write(0, 0, "a")
        mem.on_activate(0)
        assert mem.read_choices(0) == ("a",)  # quiescent: like regular
        mem.write(0, 0, "b")
        assert mem.read_choices(0) == ("a", "b", BOTTOM)

    def test_rewriting_same_value_reexposes_garbage(self):
        """The genuine regular/safe divergence: a rewrite of the same
        value is invisible to a regular register but re-opens the
        garbage window of a safe one."""
        mem_reg = RegularMemory(_layout(n_regs=1))
        mem_safe = SafeMemory(_layout(n_regs=1))
        for mem in (mem_reg, mem_safe):
            mem.write(0, 0, "v")
            mem.on_activate(0)
            mem.write(0, 0, "v")
        assert mem_reg.read_choices(0) == ("v",)
        assert mem_safe.read_choices(0) == ("v", BOTTOM)


class TestMemorySpec:
    def test_names_and_normalizer(self):
        assert MEMORY_NAMES == ("atomic", "regular", "safe")
        assert memory_spec(None) is ATOMIC
        assert memory_spec("regular") == MemorySpec("regular")
        assert memory_spec(MemorySpec("safe")).name == "safe"
        with pytest.raises(ValueError):
            MemorySpec("linearizable")
        with pytest.raises(TypeError):
            memory_spec(42)

    def test_atomic_flag_and_build(self):
        layout = _layout()
        assert MemorySpec("atomic").atomic
        assert not MemorySpec("regular").atomic
        assert isinstance(MemorySpec("safe").build(layout), SafeMemory)
        # SafeMemory subclasses RegularMemory; the spec must still
        # distinguish them.
        assert type(MemorySpec("regular").build(layout)) is RegularMemory

    def test_spec_pickles(self):
        for name in MEMORY_NAMES:
            spec = MemorySpec(name)
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec and clone.atomic == spec.atomic


# ----------------------------------------------------------------------
# Kernel resolution vocabulary
# ----------------------------------------------------------------------


class WRProtocol(Automaton):
    """Deterministic scripted protocol: P0 writes 1,2,3; P1 reads 3x.

    Every step is a single unit-probability branch, so runs consume no
    coins and the read-value choices are the *only* nondeterminism —
    ideal for pinning down the resolution rules.
    """

    name = "wr"
    n_processes = 2

    def registers(self):
        return [RegisterSpec(name="r", writers=(0,), readers=(0, 1),
                             initial=BOTTOM)]

    def initial_state(self, pid, input_value):
        return ("w", 0) if pid == 0 else ("r", ())

    def branches(self, pid, state):
        if pid == 0:
            return (Branch(1.0, WriteOp("r", state[1] + 1)),)
        return (Branch(1.0, ReadOp("r")),)

    def observe(self, pid, state, op, result):
        if pid == 0:
            k = state[1] + 1
            return ("w", k) if k < 3 else ("done", k)
        seen = state[1] + (result,)
        return ("r", seen) if len(seen) < 3 else ("done", seen)

    def output(self, pid, state):
        return state[1] if state[0] == "done" else None


class ScriptedScheduler(Scheduler):
    """Plays back a fixed action list (ints or Activate objects)."""

    def __init__(self, actions):
        self._actions = list(actions)
        self._i = 0

    def choose(self, view):
        action = self._actions[self._i]
        self._i += 1
        return action


class RecordingResolver(Scheduler):
    """Round-robin activation; resolve_read records and picks newest."""

    def __init__(self):
        self._inner = FixedScheduler([0, 1, 0, 1, 0, 1])
        self.calls = []

    def choose(self, view):
        return self._inner.choose(view)

    def resolve_read(self, view, pid, register, choices):
        self.calls.append((pid, register, choices))
        return choices[-1]


def _run_wr(scheduler, memory, engine="fast", sinks=()):
    sim = Simulation(WRProtocol(), ("i0", "i1"), scheduler,
                     ReplayableRng(0).child("kernel"), engine=engine,
                     sinks=sinks, memory=memory)
    return sim.run(100)


class TestKernelResolution:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_default_resolution_is_committed_value(self, engine):
        # Alternating P0/P1: every P1 read races P0's in-flight write
        # and, with no resolver, sees the committed (old) value.
        result = _run_wr(FixedScheduler([0, 1, 0, 1, 0, 1]), "regular",
                         engine=engine)
        assert result.decisions[1] == (BOTTOM, 1, 2)
        assert result.memory == "regular"
        assert result.read_resolutions == 3

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_resolve_read_hook_sees_legal_sets(self, engine):
        sched = RecordingResolver()
        result = _run_wr(sched, "regular", engine=engine)
        assert sched.calls == [
            (1, "r", (BOTTOM, 1)),
            (1, "r", (1, 2)),
            (1, "r", (2, 3)),
        ]
        assert result.decisions[1] == (1, 2, 3)
        assert result.read_resolutions == 3

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_safe_adds_garbage_choice(self, engine):
        sched = RecordingResolver()
        result = _run_wr(sched, "safe", engine=engine)
        # choices[-1] under safe contention is the initial value ⊥.
        assert sched.calls == [
            (1, "r", (BOTTOM, 1)),
            (1, "r", (1, 2, BOTTOM)),
            (1, "r", (2, 3, BOTTOM)),
        ]
        assert result.decisions[1] == (1, BOTTOM, BOTTOM)
        assert result.memory == "safe"

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_activate_read_value_precommits(self, engine):
        sched = ScriptedScheduler([
            Activate(0), Activate(1, read_value=1),
            Activate(0), Activate(1, read_value=1),
            Activate(0), Activate(1, read_value=3),
        ])
        result = _run_wr(sched, "regular", engine=engine)
        assert result.decisions[1] == (1, 1, 3)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_illegal_read_value_rejected(self, engine):
        sched = ScriptedScheduler([Activate(0), Activate(1, read_value=9)])
        with pytest.raises(SimulationError):
            _run_wr(sched, "regular", engine=engine)

    @pytest.mark.parametrize("memory", ["atomic", "regular"])
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_read_value_on_write_step_rejected(self, memory, engine):
        sched = ScriptedScheduler([Activate(0, read_value=1)])
        with pytest.raises(SimulationError):
            _run_wr(sched, memory, engine=engine)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_atomic_precommit_must_match(self, engine):
        ok = ScriptedScheduler([
            Activate(0), Activate(1, read_value=1),
            Activate(0), Activate(1, read_value=2),
            Activate(0), Activate(1, read_value=3),
        ])
        result = _run_wr(ok, "atomic", engine=engine)
        assert result.decisions[1] == (1, 2, 3)
        assert result.read_resolutions == 0
        bad = ScriptedScheduler([Activate(0),
                                 Activate(1, read_value=BOTTOM)])
        with pytest.raises(SimulationError):
            _run_wr(bad, "atomic", engine=engine)

    def test_atomic_default_counts_no_resolutions(self):
        result = solve(TwoProcessProtocol(), ("a", "b"), seed=5)
        # solve returns an outcome; go through Simulation for the raw
        # RunResult fields instead.
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RandomScheduler(ReplayableRng(5).child("sched")),
                         ReplayableRng(5).child("kernel"))
        res = sim.run(10_000)
        assert res.memory == "atomic"
        assert res.read_resolutions == 0
        assert result.consistent


# ----------------------------------------------------------------------
# Differential matrix: fast vs reference under every semantics
# ----------------------------------------------------------------------


def _run_pair_results(protocol_factory, inputs, scheduler_factory, seed,
                      memory, sinks_factory=None):
    out = []
    for engine in ("fast", "reference"):
        rng = ReplayableRng(seed)
        sinks = sinks_factory() if sinks_factory else ()
        sim = Simulation(protocol_factory(), inputs,
                         scheduler_factory(rng.child("sched")),
                         rng.child("kernel"), engine=engine, sinks=sinks,
                         memory=memory)
        result = sim.run(3_000)
        draws = tuple(r.draws for r in sim._proc_rngs)
        out.append((result, draws, sinks))
    return out


def _assert_same(res_a, res_b):
    assert res_a.decisions == res_b.decisions
    assert res_a.activations == res_b.activations
    assert res_a.coin_flips == res_b.coin_flips
    assert res_a.total_steps == res_b.total_steps
    assert res_a.completed == res_b.completed
    assert res_a.sched_consults == res_b.sched_consults
    assert res_a.read_resolutions == res_b.read_resolutions
    assert res_a.memory == res_b.memory
    assert res_a.final_configuration == res_b.final_configuration


WEAK_SCHEDULERS = {
    "commit": lambda rng: ReadValueAdversary(RandomScheduler(rng),
                                             policy="commit"),
    "adversarial": lambda rng: ReadValueAdversary(RandomScheduler(rng),
                                                  policy="adversarial"),
    "random": lambda rng: ReadValueAdversary(
        RandomScheduler(rng), policy="random", rng=rng.child("rv")),
}


class TestWeakDifferential:
    @pytest.mark.parametrize("memory", ["regular", "safe"])
    @pytest.mark.parametrize("policy", sorted(WEAK_SCHEDULERS))
    def test_fast_equals_reference(self, memory, policy):
        for seed in (1, 7, 42):
            (res_f, draws_f, _), (res_r, draws_r, _) = _run_pair_results(
                lambda: TwoProcessProtocol(), ("a", "b"),
                WEAK_SCHEDULERS[policy], seed, memory)
            _assert_same(res_f, res_r)
            assert draws_f == draws_r

    @pytest.mark.parametrize("memory", ["regular", "safe"])
    def test_three_bounded_fast_equals_reference(self, memory):
        for seed in (3, 11):
            (res_f, draws_f, _), (res_r, draws_r, _) = _run_pair_results(
                lambda: ThreeBoundedProtocol(), ("a", "b", "b"),
                WEAK_SCHEDULERS["adversarial"], seed, memory)
            _assert_same(res_f, res_r)
            assert draws_f == draws_r

    def test_journal_bytes_identical_under_regular(self, tmp_path):
        payloads = {}
        for engine in ("fast", "reference"):
            path = tmp_path / f"j_{engine}.jsonl"
            journal = JsonlJournal(str(path), memory="regular")
            rng = ReplayableRng(13)
            sim = Simulation(
                TwoProcessProtocol(), ("a", "b"),
                WEAK_SCHEDULERS["adversarial"](rng.child("sched")),
                rng.child("kernel"), engine=engine, sinks=(journal,),
                memory="regular")
            sim.run(3_000)
            journal.close()
            payloads[engine] = path.read_bytes()
        assert payloads["fast"] == payloads["reference"]


class TestAtomicZeroCostIdentity:
    """memory='atomic' and memory=None must be the same engine."""

    def test_explicit_atomic_matches_default(self, tmp_path):
        payloads = {}
        for tag, memory in (("default", None), ("explicit", "atomic")):
            path = tmp_path / f"j_{tag}.jsonl"
            journal = JsonlJournal(str(path))
            rng = ReplayableRng(11)
            sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                             RandomScheduler(rng.child("sched")),
                             rng.child("kernel"), sinks=(journal,),
                             memory=memory)
            result = sim.run(3_000)
            journal.close()
            payloads[tag] = (result, tuple(r.draws for r in sim._proc_rngs),
                             path.read_bytes())
        res_d, draws_d, bytes_d = payloads["default"]
        res_e, draws_e, bytes_e = payloads["explicit"]
        _assert_same(res_d, res_e)
        assert draws_d == draws_e
        assert bytes_d == bytes_e

    def test_fast_buffer_is_the_model_storage(self):
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RandomScheduler(ReplayableRng(0).child("sched")),
                         ReplayableRng(0).child("kernel"))
        assert sim._registers is sim._memory.values


# ----------------------------------------------------------------------
# MemorySpec threading: solve, runner, parallel shards
# ----------------------------------------------------------------------


class TestThreading:
    def test_solve_regular_consistent_under_adversary(self):
        for seed in range(25):
            rng = ReplayableRng(seed)
            scheduler = ReadValueAdversary(
                RandomScheduler(rng.child("sched")), policy="adversarial")
            outcome = solve(TwoProcessProtocol(), ("a", "b"),
                            scheduler=scheduler, seed=seed,
                            memory="regular")
            assert outcome.completed
            assert outcome.consistent and outcome.nontrivial

    def test_parallel_batch_matches_serial(self, tmp_path):
        snapshots = {}
        for workers in (1, 2):
            metrics = MetricsRegistry()
            runner = ExperimentRunner(
                protocol_factory=ProtocolSpec("two", 2),
                scheduler_factory=SchedulerSpec("read-adversary"),
                inputs_factory=ConstantInputs(("a", "b")),
                seed=9,
                sinks=(metrics,),
                memory="regular",
            )
            journal = tmp_path / f"batch_{workers}.jsonl"
            stats = runner.run_many(24, max_steps=2_000, workers=workers,
                                    journal_path=str(journal))
            assert stats.n_consistency_violations == 0
            snapshots[workers] = (metrics.to_dict(), stats.runs,
                                  journal.read_bytes())
        assert snapshots[1][0] == snapshots[2][0]
        assert snapshots[1][1] == snapshots[2][1]
        assert snapshots[1][2] == snapshots[2][2]
        # The batch genuinely exercised weak memory.
        assert snapshots[1][0]["counters"].get("read_choice_points", 0) > 0


# ----------------------------------------------------------------------
# Journal schema v2
# ----------------------------------------------------------------------


class TestJournalV2:
    def _journaled_run(self, path, memory, seed=13):
        journal = JsonlJournal(str(path), memory=memory)
        metrics = MetricsRegistry()
        rng = ReplayableRng(seed)
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         WEAK_SCHEDULERS["adversarial"](rng.child("sched")),
                         rng.child("kernel"), sinks=(journal, metrics),
                         memory=memory)
        sim.run(3_000)
        journal.close()
        return metrics

    def test_header_and_alts(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._journaled_run(path, "regular")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"t": "journal", "v": 3, "mem": "regular"}
        alts = [l for l in lines if l.get("alts")]
        assert alts, "an adversarial regular run must hit contended reads"
        assert all(l["op"] == "read" and l["alts"] >= 2 for l in alts)

    def test_replay_reproduces_weak_memory_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        live = self._journaled_run(path, "safe")
        replayed = replay_journal(str(path))
        assert replayed.to_dict() == live.to_dict()
        assert replayed.counters["read_choice_points"].value > 0

    def test_v1_journal_still_readable(self, tmp_path):
        assert SUPPORTED_VERSIONS == (1, 2, 3)
        path = tmp_path / "v1.jsonl"
        lines = [
            {"t": "journal", "v": 1},
            {"t": "run_start", "protocol": "wr", "n": 2,
             "inputs": ["a", "b"]},
            {"t": "step", "i": 0, "pid": 0, "op": "write", "reg": "r",
             "value": 1},
            {"t": "step", "i": 1, "pid": 1, "op": "read", "reg": "r",
             "result": 1},
            {"t": "run_end", "completed": True, "steps": 2,
             "consults": 2, "crashed": []},
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        metrics = replay_journal(str(path))
        assert metrics.counters["reads"].value == 1
        assert metrics.counters["writes"].value == 1
        assert "read_choice_points" not in metrics.counters

    def test_concatenate_rejects_mixed_semantics(self, tmp_path):
        paths = []
        for i, mem in enumerate(("regular", "safe")):
            p = tmp_path / f"shard{i}.jsonl"
            JsonlJournal(str(p), memory=mem).close()
            paths.append(str(p))
        with pytest.raises(ValueError):
            concatenate_journals(paths, str(tmp_path / "out.jsonl"))
        # Identical headers concatenate fine.
        p2 = tmp_path / "shard2.jsonl"
        JsonlJournal(str(p2), memory="regular").close()
        out = tmp_path / "ok.jsonl"
        n = concatenate_journals([paths[0], str(p2)], str(out))
        assert n == 1  # one fused header, no events
        assert json.loads(out.read_text())["mem"] == "regular"


# ----------------------------------------------------------------------
# Checker: the HHT-style machine-checked claims
# ----------------------------------------------------------------------


class TestWeakMemoryChecker:
    def test_two_process_consistent_under_regular(self):
        report = verify_safety(TwoProcessProtocol(), ("a", "b"),
                               memory="regular")
        assert report.ok

    def test_no_regular_anomaly_on_two_process(self):
        assert find_memory_anomaly(TwoProcessProtocol(), ("a", "b"),
                                   memory="regular") is None

    def test_safe_garbage_read_witness_found_and_replayable(self):
        witness = find_memory_anomaly(TwoProcessProtocol(), ("a", "b"),
                                      memory="safe")
        assert witness is not None
        assert witness.kind == "garbage-read"
        assert witness.memory == "safe"
        assert witness.steps
        # The witness replays step for step through the explorer.
        final = replay_witness(TwoProcessProtocol(), ("a", "b"), "safe",
                               witness.steps)
        assert final is not None
        text = witness.describe()
        assert "garbage-read" in text and "safe" in text

    def test_atomic_checker_unchanged(self):
        report = verify_safety(TwoProcessProtocol(), ("a", "b"))
        assert report.ok

"""Tests for the simulation kernel: stepping, decisions, crashes, errors."""

from __future__ import annotations

import pytest

from repro.core.two_process import TwoProcessProtocol
from repro.core.naive import NaiveProtocol
from repro.errors import AccessViolation, SimulationError
from repro.sched.simple import FixedScheduler, RoundRobinScheduler
from repro.sim.kernel import Activate, Crash, Simulation
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.rng import ReplayableRng

from conftest import run_protocol


def make_sim(protocol=None, inputs=("a", "b"), scheduler=None, seed=0,
             record_trace=False):
    protocol = protocol or TwoProcessProtocol()
    scheduler = scheduler or RoundRobinScheduler()
    return Simulation(protocol, inputs, scheduler, ReplayableRng(seed),
                      record_trace=record_trace)


class TestStepping:
    def test_first_steps_are_initial_writes(self):
        sim = make_sim()
        rec0 = sim.step()
        rec1 = sim.step()
        assert isinstance(rec0.op, WriteOp) and rec0.op.register == "r0"
        assert isinstance(rec1.op, WriteOp) and rec1.op.register == "r1"
        assert rec0.op.value == "a" and rec1.op.value == "b"

    def test_read_returns_register_content(self):
        sim = make_sim()
        sim.step()  # P0 writes a
        sim.step()  # P1 writes b
        rec = sim.step()  # P0 reads r1
        assert isinstance(rec.op, ReadOp)
        assert rec.result == "b"

    def test_read_of_unwritten_register_returns_bottom(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step()
        rec = sim.step()
        assert rec.result is BOTTOM

    def test_decision_recorded_with_activation_count(self):
        # P0 writes, then reads ⊥ (P1 never moved) and decides "a".
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step()
        rec = sim.step()
        assert rec.decided == "a"
        assert sim.decisions[0] == "a"
        assert sim.decision_activation[0] == 2

    def test_decided_processor_not_enabled(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step(), sim.step()
        assert 0 not in sim.enabled
        with pytest.raises(SimulationError):
            sim.step_processor(0)

    def test_activations_counted_per_processor(self):
        sim = make_sim()
        for _ in range(4):
            sim.step()
        assert sim.activations == {0: 2, 1: 2}

    def test_run_completes_and_is_consistent(self):
        result = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=7)
        assert result.completed
        assert result.all_decided
        assert result.consistent and result.nontrivial

    def test_finished_simulation_refuses_steps(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0, 1, 1]))
        while not sim.finished:
            sim.step()
        with pytest.raises(SimulationError):
            sim.step()

    def test_result_snapshot_midway(self):
        sim = make_sim()
        sim.step()
        result = sim.result()
        assert result.total_steps == 1
        assert not result.completed


class TestCrashes:
    def test_crash_removes_processor(self):
        sim = make_sim()
        sim.crash(1)
        assert sim.alive == (0,)
        assert 1 in sim.crashed

    def test_crashed_processor_cannot_step(self):
        sim = make_sim()
        sim.crash(0)
        with pytest.raises(SimulationError):
            sim.step_processor(0)

    def test_double_crash_rejected(self):
        sim = make_sim()
        sim.crash(0)
        with pytest.raises(SimulationError):
            sim.crash(0)

    def test_scheduler_injected_crash(self):
        class CrashOnce:
            def __init__(self):
                self.fired = False

            def choose(self, view):
                if not self.fired:
                    self.fired = True
                    return Crash(1)
                return Activate(view.enabled[0])

        sim = make_sim(scheduler=CrashOnce())
        sim.step()
        assert 1 in sim.crashed

    def test_survivor_decides_alone(self):
        # Crash P1 before it ever runs; P0 must still decide (wait-freedom).
        sim = make_sim(scheduler=FixedScheduler([0, 0, 0, 0]))
        sim.crash(1)
        result = sim.run(100)
        assert result.decisions == {0: "a"}
        assert result.completed


class TestValidation:
    def test_invalid_pid_rejected(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.step_processor(5)

    def test_access_control_enforced(self):
        # Craft a protocol step that writes someone else's register.
        protocol = TwoProcessProtocol()
        sim = make_sim(protocol)
        layout = sim.layout
        with pytest.raises(AccessViolation):
            layout.check_write(0, "r1")
        with pytest.raises(AccessViolation):
            layout.check_read(0, "r0")  # P0 may not read its own register

    def test_unknown_register_rejected(self):
        sim = make_sim()
        with pytest.raises(AccessViolation):
            sim.layout.index_of("nope")

    def test_wrong_input_arity_rejected(self):
        with pytest.raises(ValueError):
            make_sim(inputs=("a",))


class TestPartiallyDecidedAccounting:
    def test_steps_to_decide_on_partially_decided_run(self):
        # Only P0 moves: it decides, P1 never does.
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step(), sim.step()
        result = sim.result()
        assert result.decisions == {0: "a"}
        assert result.steps_to_decide(0) == 2
        assert result.steps_to_decide(1) is None
        assert result.max_steps_to_decide() == 2
        assert not result.all_decided

    def test_max_steps_to_decide_none_when_nobody_decided(self):
        sim = make_sim()
        sim.step()
        result = sim.result()
        assert result.decision_activation == {}
        assert result.max_steps_to_decide() is None
        assert result.steps_to_decide(0) is None

    def test_crashed_processor_excluded_from_all_decided(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0, 0, 0]))
        sim.crash(1)
        result = sim.run(100)
        assert result.all_decided
        assert result.steps_to_decide(1) is None
        assert result.max_steps_to_decide() == result.steps_to_decide(0)


class TestDeterminismOfRuns:
    def test_same_seed_reproduces_run(self):
        r1 = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=3,
                          record_trace=True)
        r2 = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=3,
                          record_trace=True)
        assert r1.decisions == r2.decisions
        assert r1.trace.schedule() == r2.trace.schedule()
        assert [s.op for s in r1.trace] == [s.op for s in r2.trace]

    def test_coin_flip_counting(self):
        result = run_protocol(NaiveProtocol(3), ("a", "b", "a"), seed=1)
        # Every completed naive run with mixed inputs flips at least once.
        assert sum(result.coin_flips.values()) >= 1


class TestSchedulerActionNormalization:
    """The scheduler contract: ``choose`` may return Activate, Crash,
    or a bare processor id (int) as shorthand for Activate."""

    def test_bare_int_activates(self):
        class BareInt:
            def choose(self, view):
                return view.enabled[0]

        sim = make_sim(scheduler=BareInt())
        rec = sim.step()
        assert rec.pid == 0
        assert sim.activations[0] == 1

    def test_bare_int_run_matches_activate_run(self):
        class BareIntRR:
            def __init__(self):
                self._inner = RoundRobinScheduler()

            def choose(self, view):
                return self._inner.choose(view).pid

        r_int = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=5,
                             scheduler=BareIntRR())
        r_act = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=5,
                             scheduler=RoundRobinScheduler())
        assert r_int.decisions == r_act.decisions
        assert r_int.total_steps == r_act.total_steps

    @pytest.mark.parametrize("bogus", [True, False, "p0", 1.0, None, (0,)])
    def test_non_action_rejected(self, bogus):
        class Bogus:
            def choose(self, view):
                return bogus

        sim = make_sim(scheduler=Bogus())
        with pytest.raises(SimulationError, match="scheduler returned"):
            sim.step()

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_out_of_range_int_rejected(self, engine):
        class OutOfRange:
            def choose(self, view):
                return 99

        protocol = TwoProcessProtocol()
        sim = Simulation(protocol, ("a", "b"), OutOfRange(),
                         ReplayableRng(0), engine=engine)
        with pytest.raises(SimulationError, match="invalid processor id"):
            sim.run(10)


class TestIncrementalViews:
    """alive/enabled are maintained incrementally (crash/decide events),
    not rebuilt per access; they must stay consistent with the run."""

    def test_views_are_cheap_tuples(self):
        sim = make_sim()
        assert sim.alive == (0, 1)
        assert sim.enabled == (0, 1)
        assert sim.alive is sim.alive  # stable object between events

    def test_crash_updates_both_views(self):
        sim = make_sim(protocol=NaiveProtocol(3), inputs=("a", "b", "a"))
        sim.crash(1)
        assert sim.alive == (0, 2)
        assert sim.enabled == (0, 2)

    def test_decide_leaves_alive_but_not_enabled(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step(), sim.step()  # P0 writes, reads bottom, decides
        assert sim.alive == (0, 1)
        assert sim.enabled == (1,)
        assert not sim.finished

    def test_finished_reflects_empty_enabled(self):
        sim = make_sim(scheduler=FixedScheduler([0, 0]))
        sim.step(), sim.step()
        sim.crash(1)
        assert sim.enabled == ()
        assert sim.finished

    def test_view_object_matches_kernel_views(self):
        captured = {}

        class Spy:
            def __init__(self):
                self._inner = RoundRobinScheduler()

            def choose(self, view):
                captured["enabled"] = view.enabled
                captured["alive"] = view.alive
                return self._inner.choose(view)

        sim = make_sim(scheduler=Spy())
        sim.run(100)
        assert captured["alive"] == (0, 1)
        assert captured["enabled"] in ((0,), (1,), (0, 1))

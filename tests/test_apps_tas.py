"""Tests for the one-shot test-and-set application."""

from __future__ import annotations

import pytest

from repro.apps.test_and_set import OneShotTestAndSet
from repro.errors import VerificationError
from repro.sched.adversary import SplitVoteAdversary


class TestOneShotTAS:
    def test_exactly_one_winner(self):
        for seed in range(20):
            tas = OneShotTestAndSet(5, seed=seed)
            outcome = tas.race([0, 1, 2, 3, 4])
            assert outcome.exactly_one_winner
            assert outcome.returns[outcome.winner] == 0
            assert all(
                v == 1 for pid, v in outcome.returns.items()
                if pid != outcome.winner
            )

    def test_winner_is_a_caller(self):
        for seed in range(20):
            tas = OneShotTestAndSet(6, seed=seed)
            outcome = tas.race([1, 3, 5])
            assert outcome.winner in (1, 3, 5)
            assert set(outcome.returns) == {1, 3, 5}

    def test_solo_caller_wins_free(self):
        tas = OneShotTestAndSet(3, seed=0)
        outcome = tas.race([2])
        assert outcome.winner == 2
        assert outcome.returns == {2: 0}
        assert outcome.steps == 0

    def test_one_shot_semantics(self):
        tas = OneShotTestAndSet(3, seed=1)
        tas.race([0, 1])
        assert tas.consumed
        with pytest.raises(VerificationError):
            tas.race([0, 2])

    def test_under_adversary(self):
        for seed in range(10):
            tas = OneShotTestAndSet(
                4, seed=seed,
                scheduler_factory=lambda rng: SplitVoteAdversary(),
            )
            outcome = tas.race([0, 1, 2, 3])
            assert outcome.exactly_one_winner

    def test_reproducible(self):
        a = OneShotTestAndSet(4, seed=9).race([0, 1, 2, 3])
        b = OneShotTestAndSet(4, seed=9).race([0, 1, 2, 3])
        assert a.winner == b.winner and a.steps == b.steps

    def test_validates_callers(self):
        tas = OneShotTestAndSet(3, seed=0)
        with pytest.raises(ValueError):
            tas.race([0, 9])
        with pytest.raises(ValueError):
            tas.race([])
        with pytest.raises(ValueError):
            OneShotTestAndSet(0)

    def test_winners_distribute_across_seeds(self):
        winners = {
            OneShotTestAndSet(3, seed=s).race([0, 1, 2]).winner
            for s in range(30)
        }
        assert len(winners) >= 2  # no hard-wired favourite

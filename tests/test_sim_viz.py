"""Tests for the space-time trace renderer."""

from __future__ import annotations

from repro.core.two_process import TwoProcessProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import FixedScheduler, RoundRobinScheduler
from repro.sim.viz import (
    render_decision_summary,
    render_register_timeline,
    render_space_time,
)

from conftest import run_protocol


def traced(protocol=None, inputs=("a", "b"), scheduler=None, seed=0):
    return run_protocol(protocol or TwoProcessProtocol(), inputs,
                        seed=seed, scheduler=scheduler, record_trace=True)


class TestSpaceTime:
    def test_columns_and_rows(self):
        result = traced(scheduler=FixedScheduler([0, 1, 0, 1]))
        out = render_space_time(result.trace, 2)
        lines = out.splitlines()
        assert lines[0].startswith("step")
        assert "P0" in lines[0] and "P1" in lines[0]
        # First two steps: P0 writes (own column), P1 column idle.
        assert "w r0←'a'" in lines[2]
        assert lines[2].rstrip().endswith(".") or "." in lines[2]

    def test_decision_marker(self):
        result = traced(scheduler=FixedScheduler([0, 0]))
        out = render_space_time(result.trace, 2)
        assert "✓'a'" in out

    def test_coin_marking(self):
        result = traced(seed=5)
        # Mark every write step as a coin step: capitalized markers
        # appear wherever writes happened.
        writes = [s.index for s in result.trace
                  if s.op.kind == "write"]
        out = render_space_time(result.trace, 2, coin_steps=writes)
        assert "W r" in out

    def test_truncation(self):
        result = traced(protocol=ThreeUnboundedProtocol(),
                        inputs=("a", "b", "a"), seed=3)
        out = render_space_time(result.trace, 3, limit=5)
        assert "more steps" in out

    def test_crash_rendering(self):
        plan = CrashPlan(after_activations={1: 1})
        result = traced(scheduler=CrashingScheduler(RoundRobinScheduler(),
                                                    plan))
        out = render_space_time(result.trace, 2)
        assert "✗ crashed" in out


class TestRegisterTimeline:
    def test_lists_writes_in_order(self):
        result = traced(scheduler=FixedScheduler([0, 1, 0, 1]))
        out = render_register_timeline(result.trace, "r0")
        assert "P0 wrote 'a'" in out

    def test_never_written(self):
        from repro.sim.kernel import Simulation
        from repro.sim.rng import ReplayableRng

        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         FixedScheduler([0, 0]), ReplayableRng(0),
                         record_trace=True)
        sim.step(), sim.step()  # P0 writes + decides; P1 never moves
        out = render_register_timeline(sim.trace, "r1")
        assert "never written" in out


class TestDecisionSummary:
    def test_consistent_run(self):
        result = traced(seed=2)
        out = render_decision_summary(result.trace)
        assert "consistent" in out
        assert out.count("decided") == 2

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert "no decisions" in render_decision_summary(Trace())

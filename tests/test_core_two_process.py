"""Tests for the two-processor protocol (Figure 1, Section 4)."""

from __future__ import annotations

import pytest

from repro.analysis.theory import two_process_expected_steps_bound
from repro.checker import classify, explore, verify_safety
from repro.checker.valency import Valency
from repro.core.two_process import TPState, TwoProcessProtocol
from repro.errors import ProtocolError
from repro.sched.adversary import DisagreementAdversary, SplitVoteAdversary
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


class TestTransitions:
    """Unit tests tracking Figure 1 line by line."""

    def setup_method(self):
        self.p = TwoProcessProtocol(values=("a", "b"))

    def test_initial_state_is_initial_write(self):
        s = self.p.initial_state(0, "a")
        assert s.pc == "init" and s.pref == "a"
        (branch,) = self.p.branches(0, s)
        assert branch.op == WriteOp("r0", "a")

    def test_register_wiring_is_srsw(self):
        specs = {spec.name: spec for spec in self.p.registers()}
        assert specs["r0"].writers == (0,) and specs["r0"].readers == (1,)
        assert specs["r1"].writers == (1,) and specs["r1"].readers == (0,)

    def test_after_init_reads_other_register(self):
        s = self.p.initial_state(1, "b")
        s = self.p.observe(1, s, WriteOp("r1", "b"), None)
        assert s.pc == "read"
        (branch,) = self.p.branches(1, s)
        assert branch.op == ReadOp("r0")

    def test_decides_on_equal_read(self):
        s = TPState(pc="read", pref="a")
        s2 = self.p.observe(0, s, ReadOp("r1"), "a")
        assert s2.pc == "done" and self.p.output(0, s2) == "a"

    def test_decides_on_bottom_read(self):
        s = TPState(pc="read", pref="b")
        s2 = self.p.observe(0, s, ReadOp("r1"), BOTTOM)
        assert self.p.output(0, s2) == "b"

    def test_disagreement_goes_to_coin_write(self):
        s = TPState(pc="read", pref="a")
        s2 = self.p.observe(0, s, ReadOp("r1"), "b")
        assert s2.pc == "write" and s2.last_read == "b"
        heads, tails = self.p.branches(0, s2)
        assert heads.op == WriteOp("r0", "a")   # rewrite own
        assert tails.op == WriteOp("r0", "b")   # adopt other's
        assert heads.probability == tails.probability == 0.5

    def test_write_updates_preference(self):
        s = TPState(pc="write", pref="a", last_read="b")
        s2 = self.p.observe(0, s, WriteOp("r0", "b"), None)
        assert s2.pc == "read" and s2.pref == "b"

    def test_terminal_state_has_no_branches(self):
        s = TPState(pc="done", pref="a", output="a")
        with pytest.raises(ProtocolError):
            self.p.branches(0, s)

    def test_rejects_bottom_input(self):
        with pytest.raises(ValueError):
            self.p.initial_state(0, BOTTOM)

    def test_rejects_out_of_domain_input(self):
        with pytest.raises(ValueError):
            self.p.initial_state(0, "z")

    def test_rejects_degenerate_coin(self):
        with pytest.raises(ValueError):
            TwoProcessProtocol(p_heads=1.5)


class TestSoloSchedules:
    """The paper's Lemma 2 solo runs: a processor running alone decides
    its own input after write + read-of-⊥."""

    @pytest.mark.parametrize("pid,value", [(0, "a"), (1, "b")])
    def test_solo_decides_own_input_in_two_steps(self, pid, value):
        result = run_protocol(
            TwoProcessProtocol(), ("a", "b"),
            scheduler=FixedScheduler([pid] * 10),
        )
        assert result.decisions[pid] == value
        assert result.decision_activation[pid] == 2


class TestCorrectness:
    def test_consistency_theorem6_monte_carlo(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=17,
        )
        stats = runner.run_many(500, max_steps=2000)
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0
        assert stats.completion_rate == 1.0

    @pytest.mark.parametrize("inputs", [("a", "a"), ("a", "b"),
                                        ("b", "a"), ("b", "b")])
    def test_exhaustive_safety_full_space(self, inputs):
        # The reachable configuration space is finite: full verification.
        report = verify_safety(TwoProcessProtocol(), inputs)
        assert report.ok and report.complete

    def test_no_nullvalent_configuration(self):
        # Probability-1 termination evidence: from every reachable
        # configuration some decision remains reachable.
        graph = explore(TwoProcessProtocol(), ("a", "b"))
        assert graph.complete
        vmap = classify(graph)
        assert vmap.count(Valency.NULLVALENT) == 0

    def test_initial_mixed_configuration_is_bivalent(self):
        # Lemma 2's phenomenon, here for the randomized protocol: the
        # adversary cannot know the outcome of I_ab in advance.
        graph = explore(TwoProcessProtocol(), ("a", "b"))
        vmap = classify(graph)
        assert vmap.valency(graph.roots[0]) is Valency.BIVALENT

    def test_unanimous_inputs_are_univalent(self):
        graph = explore(TwoProcessProtocol(), ("a", "a"))
        vmap = classify(graph)
        assert vmap.valency(graph.roots[0]) is Valency.UNIVALENT
        assert vmap.value(graph.roots[0]) == "a"


class TestTermination:
    @pytest.mark.parametrize("adversary_factory", [
        lambda rng: RandomScheduler(rng),
        lambda rng: DisagreementAdversary(),
        lambda rng: SplitVoteAdversary(),
    ])
    def test_expected_steps_within_theorem7_bound(self, adversary_factory):
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=adversary_factory,
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=23,
        )
        stats = runner.run_many(400, max_steps=2000)
        assert stats.completion_rate == 1.0
        assert stats.mean_steps_to_decide() <= two_process_expected_steps_bound()

    def test_unanimous_inputs_decide_fast(self):
        # With equal inputs every read decides immediately: exactly
        # 2 steps per processor under any schedule.
        for seed in range(20):
            result = run_protocol(TwoProcessProtocol(), ("a", "a"), seed=seed)
            assert all(k == 2 for k in result.decision_activation.values())


class TestSkipRewriteVariant:
    def test_footnote2_variant_correct(self):
        for seed in range(50):
            result = run_protocol(
                TwoProcessProtocol(skip_redundant_rewrite=True),
                ("a", "b"), seed=seed,
            )
            assert result.completed and result.consistent

    def test_variant_exhaustive_safety(self):
        report = verify_safety(
            TwoProcessProtocol(skip_redundant_rewrite=True), ("a", "b")
        )
        assert report.ok and report.complete

    def test_variant_saves_steps(self):
        def mean_for(protocol_factory):
            runner = ExperimentRunner(
                protocol_factory=protocol_factory,
                scheduler_factory=lambda rng: RandomScheduler(rng),
                inputs_factory=lambda i, rng: ("a", "b"),
                seed=31,
            )
            return runner.run_many(300, 2000).mean_steps_to_decide()

        baseline = mean_for(lambda: TwoProcessProtocol())
        optimized = mean_for(
            lambda: TwoProcessProtocol(skip_redundant_rewrite=True)
        )
        assert optimized <= baseline

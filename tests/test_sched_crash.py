"""Tests for fail-stop crash injection."""

from __future__ import annotations

from repro.core.n_process import NProcessProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import RoundRobinScheduler

from conftest import run_protocol


class TestCrashPlan:
    def test_after_activations(self):
        plan = CrashPlan(after_activations={1: 1})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=scheduler)
        assert 1 in result.crashed
        assert result.decisions.get(0) is not None

    def test_at_step(self):
        plan = CrashPlan(at_step={2: 1})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=scheduler, record_trace=True)
        assert 1 in result.crashed
        crash = result.trace.crashes[0]
        assert crash.index == 2

    def test_adaptive_rule(self):
        fired = []

        def rule(view):
            if view.step_index == 3 and not fired:
                fired.append(True)
                return 1
            return None

        plan = CrashPlan(rule=rule)
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=scheduler)
        assert 1 in result.crashed

    def test_kill_all_but_survivor(self):
        n = 5
        plan = CrashPlan.kill_all_but(survivor=3, n=n)
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(
            NProcessProtocol(n), tuple("ababa"), scheduler=scheduler,
            max_steps=100_000,
        )
        assert result.crashed == frozenset({0, 1, 2, 4})
        # The lone survivor still decides: wait-freedom with t = n-1.
        assert 3 in result.decisions
        assert result.consistent and result.nontrivial

    def test_never_kills_last_processor(self):
        # Plan tries to kill everyone; the wrapper must keep one alive.
        plan = CrashPlan(after_activations={0: 1, 1: 1})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=scheduler)
        assert len(result.crashed) <= 1
        assert result.decisions  # someone decided

    def test_directives_fire_once(self):
        plan = CrashPlan(after_activations={1: 1})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(
            NProcessProtocol(3), ("a", "b", "a"), scheduler=scheduler,
        )
        assert result.crashed == frozenset({1})

    def test_crash_of_decided_processor_is_retired(self):
        # Crash P0 only after it has taken 50 activations — it will have
        # decided long before, so the directive must retire harmlessly.
        plan = CrashPlan(after_activations={0: 50})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=scheduler)
        assert result.completed
        assert not result.crashed

"""Tests for the adaptive adversaries."""

from __future__ import annotations

import pytest

from repro.core.naive import NaiveProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.adversary import (
    AdaptiveAdversary,
    DisagreementAdversary,
    LaggardFreezer,
    NaiveKillerAdversary,
    SplitVoteAdversary,
)
from repro.sched.simple import FixedScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng

from conftest import run_protocol


class TestAdaptiveAdversary:
    def test_strategy_is_consulted(self):
        seen = []

        def strategy(view):
            seen.append(view.step_index)
            return view.enabled[-1]

        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         AdaptiveAdversary(strategy), ReplayableRng(0))
        rec = sim.step()
        assert rec.pid == 1
        assert seen == [0]

    def test_none_falls_back_to_enabled(self):
        adversary = AdaptiveAdversary(lambda view: None, label="lazy")
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=adversary)
        assert result.completed
        assert "lazy" in adversary.name

    def test_invalid_choice_falls_back(self):
        adversary = AdaptiveAdversary(lambda view: 99)
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=adversary)
        assert result.completed


class TestDisagreementAdversary:
    def test_cannot_prevent_termination(self):
        for seed in range(30):
            result = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=seed,
                                  scheduler=DisagreementAdversary())
            assert result.completed and result.consistent

    def test_prefers_reader_under_disagreement(self):
        # Drive both processors past their initial writes so registers
        # disagree and both are about to read.
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         FixedScheduler([0, 1]), ReplayableRng(0))
        sim.step(), sim.step()
        adversary = DisagreementAdversary()
        sim.scheduler = adversary
        rec = sim.step()
        # Both are readers; the adversary must pick one of them (P0 by
        # its deterministic tie-break), and the step is a read.
        assert rec.op.kind == "read"


class TestNaiveKiller:
    def test_starves_naive_victim_forever(self):
        result = run_protocol(
            NaiveProtocol(3), ("a", "a", "a"), seed=7,
            scheduler=NaiveKillerAdversary(), max_steps=3000,
        )
        # The victim is activated unboundedly but never decides; the
        # frozen pair never decides either (they are simply starved).
        assert not result.completed
        assert 2 not in result.decisions
        assert result.activations[2] > 1000

    def test_harmless_against_real_protocol(self):
        result = run_protocol(
            ThreeUnboundedProtocol(), ("a", "a", "a"), seed=7,
            scheduler=NaiveKillerAdversary(), max_steps=3000,
        )
        # The Figure 2 victim out-races the frozen pair by two and
        # decides alone — the paper's contrast (benchmark E4).
        assert 2 in result.decisions

    def test_requires_distinct_roles(self):
        with pytest.raises(ValueError):
            NaiveKillerAdversary(a=0, b=0, victim=1)


class TestLaggardFreezer:
    def test_starves_minimum_progress_processor(self):
        result = run_protocol(
            ThreeUnboundedProtocol(), ("a", "b", "b"), seed=3,
            scheduler=LaggardFreezer(), max_steps=5000,
        )
        # The two leaders must decide; wait-freedom means the run
        # completes once the laggard is the only one left (it finally
        # gets scheduled when the others halt).
        assert result.consistent
        assert len(result.decisions) >= 2

    def test_custom_progress_measure(self):
        calls = []

        def progress(view, pid):
            calls.append(pid)
            return -pid  # freeze the highest pid

        result = run_protocol(
            ThreeUnboundedProtocol(), ("a", "b", "b"), seed=3,
            scheduler=LaggardFreezer(progress_of=progress), max_steps=5000,
        )
        assert calls  # measure consulted
        assert result.consistent


class TestSplitVote:
    def test_cannot_prevent_termination(self):
        for seed in range(10):
            result = run_protocol(
                ThreeUnboundedProtocol(), ("a", "b", "a"), seed=seed,
                scheduler=SplitVoteAdversary(), max_steps=20000,
            )
            assert result.completed and result.consistent

    def test_works_on_two_process(self):
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=SplitVoteAdversary())
        assert result.completed and result.consistent

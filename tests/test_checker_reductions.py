"""Symmetry and partial-order reduction: verdicts, sets, and honesty.

Two families of guarantees (docs/CHECKER.md §3-§4):

* **Symmetry** is *verified, never assumed*: a processor permutation
  joins the canonicalization group only with a machine-checked
  automorphism certificate against the closed tables.  two_process
  admits the swap (order 2); the n ≥ 3 paper protocols — which read
  their peers in sorted-pid order — refute every candidate, and the
  report says so rather than silently exploring an unsound quotient.
* **POR (sleep sets)** prunes edges only, so the visited-state set is
  *identical* with the reduction on or off — asserted literally below,
  not just verdict equality.  The combinations where the argument
  breaks (weak memory, depth budgets, symmetry quotients) are
  auto-disabled with a note.
"""

from __future__ import annotations

import pytest

from repro.checker import explore, explore_fast, verify_safety
from repro.core.naive import NaiveProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol


class TestSymmetry:
    def test_two_process_swap_is_verified_order_two(self):
        base = explore_fast(TwoProcessProtocol(), ("a", "b"),
                            keep_fingerprints=True)
        sym = explore_fast(TwoProcessProtocol(), ("a", "b"),
                           symmetry=True, keep_fingerprints=True)
        assert sym.symmetry_order == 2
        assert sym.exhausted and sym.ok
        # The quotient is a strict compression of the full space...
        assert sym.visited < base.visited
        # ...and canonicalizing the objects BFS's configurations lands
        # exactly on the quotient's fingerprint set.  The orbit must be
        # closed over the input assignment, so the union of both input
        # orders maps onto the one symmetric exploration.
        mapped = set()
        for inputs in (("a", "b"), ("b", "a")):
            graph = explore(TwoProcessProtocol(), inputs)
            mapped |= {sym.fingerprint_of(c) for c in graph.depth_of}
        assert mapped == sym.fingerprints

    def test_symmetric_inputs_verdict_equality(self):
        base = verify_safety(TwoProcessProtocol(), ("a", "a"),
                             engine="fingerprints")
        sym = verify_safety(TwoProcessProtocol(), ("a", "a"),
                            engine="fingerprints", symmetry=True)
        assert base.ok == sym.ok
        assert base.complete and sym.complete
        assert sym.states_explored < base.states_explored

    def test_sorted_pid_reads_refute_all_candidates(self):
        # The naive three-processor protocol reads its peers in
        # sorted-pid order: no nontrivial automorphism exists, and the
        # checker discovers that (refuting all 5 candidates) rather
        # than trusting a symmetry annotation.  Its two-processor
        # sibling is genuinely symmetric, so the refutation is about
        # the step relation, not an artifact of the machinery.
        report = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                              symmetry=True)
        assert report.symmetry_order == 1
        assert report.symmetry_note is not None
        assert "refuted" in report.symmetry_note
        assert explore_fast(NaiveProtocol(2), ("a", "b"),
                            symmetry=True).symmetry_order == 2

    def test_interning_budget_overflow_disables_symmetry_with_note(self):
        # three_bounded is finite but its closed automaton exceeds the
        # compiler's interning budget; symmetry verification needs the
        # closed tables, so it is reported off, never silently wrong.
        report = explore_fast(ThreeBoundedProtocol(), ("a", "b", "a"),
                              max_depth=5, symmetry=True)
        assert report.symmetry_order == 1
        assert "closed compilation refused" in report.symmetry_note

    def test_unbounded_protocol_disables_symmetry_with_note(self):
        # Verification needs the closed tables; an unbounded state
        # space refuses closed compilation, so symmetry is reported
        # off, never silently wrong.
        report = explore_fast(ThreeUnboundedProtocol(), ("a", "b", "a"),
                              max_depth=4, symmetry=True)
        assert report.symmetry_order == 1
        assert "closed compilation refused" in report.symmetry_note

    def test_symmetry_candidates_hook_narrows_search(self):
        class NoHint(TwoProcessProtocol):
            def symmetry_candidates(self):
                return None  # default enumeration

        class Disabled(TwoProcessProtocol):
            def symmetry_candidates(self):
                return []  # protocol vouches for asymmetry: skip search

        class Narrowed(TwoProcessProtocol):
            def symmetry_candidates(self):
                return [(1, 0)]  # still verified, not trusted

        assert explore_fast(NoHint(), ("a", "b"),
                            symmetry=True).symmetry_order == 2
        assert explore_fast(Disabled(), ("a", "b"),
                            symmetry=True).symmetry_order == 1
        assert explore_fast(Narrowed(), ("a", "b"),
                            symmetry=True).symmetry_order == 2


class TestPartialOrder:
    @pytest.mark.parametrize("factory,inputs", [
        (TwoProcessProtocol, ("a", "b")),
        (lambda: NaiveProtocol(3), ("a", "b", "a")),
    ], ids=["two", "naive3"])
    def test_visited_set_identical_with_reduction(self, factory, inputs):
        base = explore_fast(factory(), inputs, keep_fingerprints=True)
        red = explore_fast(factory(), inputs, por=True,
                           keep_fingerprints=True)
        assert red.por and red.por_note is None
        # Edges are pruned, configurations are not: the sleep-set
        # variant guarantees set identity, not merely verdict identity.
        assert red.fingerprints == base.fingerprints
        assert red.visited == base.visited
        assert red.pruned > 0
        # (No edge arithmetic across runs: a sleep-mask shrink
        # re-enqueues an item, so expanded+pruned can exceed the
        # unreduced edge count.)
        assert red.exhausted and red.ok == base.ok

    def test_por_disabled_under_weak_memory(self):
        report = explore_fast(TwoProcessProtocol(), ("a", "b"),
                              memory="regular", por=True)
        assert not report.por
        assert "weak memory" in report.por_note
        assert report.pruned == 0

    def test_por_disabled_under_depth_budget(self):
        report = explore_fast(TwoProcessProtocol(), ("a", "b"),
                              max_depth=6, por=True)
        assert not report.por
        assert "depth budget" in report.por_note
        assert report.pruned == 0

    def test_por_disabled_when_combined_with_symmetry(self):
        report = explore_fast(TwoProcessProtocol(), ("a", "b"),
                              symmetry=True, por=True)
        assert not report.por
        assert "symmetry" in report.por_note
        assert report.symmetry_order == 2  # symmetry itself survives


class TestVerifySafetyPlumbing:
    def test_reduction_kwargs_require_fingerprints_engine(self):
        for kwargs in ({"symmetry": True}, {"por": True},
                       {"workers": 2}, {"exact": True}):
            with pytest.raises(ValueError, match="fingerprints"):
                verify_safety(TwoProcessProtocol(), ("a", "b"),
                              engine="objects", **kwargs)
            with pytest.raises(ValueError, match="fingerprints"):
                verify_safety(TwoProcessProtocol(), ("a", "b"), **kwargs)

    def test_fingerprints_engine_with_reductions_verdict(self):
        plain = verify_safety(TwoProcessProtocol(), ("a", "b"))
        fast = verify_safety(TwoProcessProtocol(), ("a", "b"),
                             engine="fingerprints", por=True)
        assert fast.ok == plain.ok
        assert fast.complete == plain.complete
        assert fast.states_explored == plain.states_explored

"""Tests for JSON experiment records."""

from __future__ import annotations

import json

from repro.analysis.reporting import (
    batch_metrics,
    dump_records,
    environment_stamp,
    load_records,
    record_batch,
)
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


def make_stats(n_runs=40):
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=7,
    )
    return runner.run_many(n_runs, max_steps=1000)


class TestReporting:
    def test_batch_metrics_fields(self):
        metrics = batch_metrics(make_stats())
        assert metrics["completion_rate"] == 1.0
        assert metrics["consistency_violations"] == 0
        assert metrics["mean_steps"] > 0
        assert metrics["p99_steps"] >= metrics["p50_steps"]
        assert "mean_coin_flips" in metrics

    def test_record_roundtrip(self, tmp_path):
        record = record_batch(
            experiment="E2", protocol="TwoProcessProtocol",
            scheduler="random", inputs="a,b", seed=7,
            stats=make_stats(),
        )
        path = str(tmp_path / "records.json")
        text = dump_records([record], path=path)
        # Valid JSON with environment stamp.
        doc = json.loads(text)
        assert "environment" in doc and "records" in doc
        assert doc["environment"]["library_version"]
        # Round-trips through the loader.
        loaded = load_records(path)
        assert len(loaded) == 1
        assert loaded[0].experiment == "E2"
        assert loaded[0].metrics["n_runs"] == 40

    def test_environment_stamp(self):
        stamp = environment_stamp()
        assert set(stamp) == {"library_version", "python", "platform"}

    def test_records_are_deterministic(self):
        a = record_batch("E2", "p", "s", "a,b", 7, make_stats())
        b = record_batch("E2", "p", "s", "a,b", 7, make_stats())
        assert a.to_dict() == b.to_dict()

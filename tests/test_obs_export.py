"""Exporter round-trips: Prometheus text, OTLP JSON, folded stacks.

Every emitter is checked against its own strict parser — an export
format is only trustworthy if independent re-parsing reconstructs the
data — and the Prometheus/folded parsers are themselves tested against
malformed input, so a regression in either side trips something.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.two_process import TwoProcessProtocol
from repro.obs.export import (
    folded_stacks,
    otlp_json,
    otlp_json_text,
    parse_folded,
    parse_prometheus,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import TimeAttributionProfiler
from repro.obs.tracing import Tracer
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


def batch_registry(n_runs=12, seed=5):
    """A registry populated by a real seeded batch."""
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
        sinks=(registry,),
    )
    runner.run_many(n_runs, max_steps=4000)
    return registry


def traced_run(seed=11):
    tracer = Tracer()
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
        sinks=(tracer,),
    )
    runner.run_one(0, max_steps=4000)
    return tracer.trace()


class TestPrometheus:
    def test_round_trips_through_strict_parser(self):
        registry = batch_registry()
        parsed = parse_prometheus(prometheus_text(registry))
        assert parsed["types"]  # non-empty export
        # Every native metric appears under its prefixed name.
        names = {name for name, _, _ in parsed["samples"]}
        for counter in registry.counters:
            assert f"repro_{counter}_total" in names
        for hist in registry.histograms:
            assert f"repro_{hist}_count" in names

    def test_counter_and_gauge_values_survive(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(7)
        registry.gauge("last_rate").set(2.5)
        parsed = parse_prometheus(prometheus_text(registry))
        samples = {name: value for name, _, value in parsed["samples"]}
        assert samples["repro_runs_total"] == 7
        assert samples["repro_last_rate"] == 2.5
        assert parsed["types"]["repro_runs_total"] == "counter"
        assert parsed["types"]["repro_last_rate"] == "gauge"

    def test_unset_gauge_exports_nan(self):
        registry = MetricsRegistry()
        registry.gauge("idle")
        parsed = parse_prometheus(prometheus_text(registry))
        (value,) = [v for n, _, v in parsed["samples"]
                    if n == "repro_idle"]
        assert math.isnan(value)

    def test_histogram_buckets_reconstruct_exact_counts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("steps")
        for x in (3, 3, 5, 9, 9, 9):
            hist.observe(x)
        parsed = parse_prometheus(prometheus_text(registry))
        buckets = [(labels["le"], value)
                   for name, labels, value in parsed["samples"]
                   if name == "repro_steps_bucket"]
        # Cumulative series over the distinct observed values + Inf.
        assert buckets == [("3", 2.0), ("5", 3.0), ("9", 6.0),
                           ("+Inf", 6.0)]
        samples = {name: value for name, _, value in parsed["samples"]}
        assert samples["repro_steps_sum"] == 3 + 3 + 5 + 9 + 9 + 9
        assert samples["repro_steps_count"] == 6

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with chars").inc()
        parsed = parse_prometheus(prometheus_text(registry))
        assert "repro_weird_name_with_chars_total" in parsed["types"]

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus("# TYPE too many words here now\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus("# TYPE x summary\n")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("not a metric line at all\n")
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus('x{le=unquoted} 1\n')

    def test_parser_enforces_histogram_invariants(self):
        non_cumulative = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 8\nh_count 5\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus(non_cumulative)
        inf_mismatch = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 3\nh_count 4\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(inf_mismatch)


class TestOtlp:
    def test_span_document_shape(self):
        spans = traced_run()
        doc = otlp_json(spans=spans)
        assert set(doc) == {"resourceSpans"}
        scope = doc["resourceSpans"][0]["scopeSpans"][0]
        assert scope["scope"]["name"] == "repro.obs"
        assert len(scope["spans"]) == len(spans)
        by_id = {s.span_id: s for s in spans}
        for entry in scope["spans"]:
            span = by_id[entry["spanId"]]
            assert entry["traceId"] == span.trace_id
            assert entry["name"] == span.name
            # Logical steps scaled into OTLP's nanosecond fields.
            assert entry["startTimeUnixNano"] == str(span.start * 1000)
            assert entry["endTimeUnixNano"] == str(span.end * 1000)
            if span.parent_id:
                assert entry["parentSpanId"] == span.parent_id
            else:
                assert "parentSpanId" not in entry

    def test_attribute_values_typed(self):
        spans = traced_run()
        doc = otlp_json(spans=spans, time_unit_ns=500)
        entries = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        run = [e for e in entries if e["name"] == "run"][0]
        attrs = {a["key"]: a["value"] for a in run["attributes"]}
        # ints become stringified intValue, strings stringValue.
        assert "intValue" in attrs["root_seed"]
        assert "stringValue" in attrs["protocol"]
        assert run["startTimeUnixNano"] == "0"

    def test_metrics_document_shape(self):
        registry = batch_registry(n_runs=6)
        doc = otlp_json(registry=registry)
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        by_name = {m["name"]: m for m in metrics}
        runs = by_name["runs"]["sum"]
        assert runs["isMonotonic"] is True
        assert runs["dataPoints"][0]["asInt"] == "6"
        steps = by_name["run_steps"]["histogram"]["dataPoints"][0]
        assert int(steps["count"]) == 6
        assert len(steps["explicitBounds"]) == len(steps["bucketCounts"])
        counts = [int(c) for c in steps["bucketCounts"]]
        assert counts == sorted(counts)
        assert counts[-1] == 6

    def test_text_serialization_is_stable_json(self):
        spans = traced_run()
        registry = batch_registry(n_runs=3)
        text = otlp_json_text(registry=registry, spans=spans)
        assert json.loads(text) == otlp_json(registry=registry,
                                             spans=spans)
        # Stable output: same inputs, same bytes.
        assert text == otlp_json_text(registry=registry, spans=spans)


class TestFolded:
    def test_round_trips_through_strict_parser(self):
        stacks = [
            (("two", "random", "atomic", "scheduler"), 0.0042),
            (("two", "random", "atomic", "kernel"), 0.001),
            (("three", "fixed", "safe", "memory"), 2e-6),
        ]
        parsed = parse_folded(folded_stacks(stacks))
        assert parsed == [
            (("two", "random", "atomic", "scheduler"), 4200),
            (("two", "random", "atomic", "kernel"), 1000),
            (("three", "fixed", "safe", "memory"), 2),
        ]

    def test_zero_microsecond_stacks_dropped(self):
        text = folded_stacks([(("a", "b"), 0.0), (("a", "c"), 4e-7)])
        assert text == ""
        assert parse_folded(text) == []

    def test_delimiter_frames_rejected(self):
        with pytest.raises(ValueError, match="delimiter"):
            folded_stacks([(("a;b",), 1.0)])
        with pytest.raises(ValueError, match="delimiter"):
            folded_stacks([(("a b",), 1.0)])

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_folded("a;b 1.5\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_folded("loneframe\n")
        with pytest.raises(ValueError, match="empty frame"):
            parse_folded("a;;b 3\n")

    def test_profiler_stacks_feed_folded_export(self):
        profiler = TimeAttributionProfiler(("two", "random", "atomic"))
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=3,
            sinks=(profiler,),
        )
        runner.run_many(5, max_steps=4000)
        parsed = parse_folded(folded_stacks(profiler.stacks()))
        assert parsed, "a profiled batch must attribute some time"
        for frames, us in parsed:
            assert frames[:3] == ("two", "random", "atomic")
            assert us > 0

"""Tests for the exact game-solving adversary.

The headline: the two-processor protocol's worst-case expected decision
cost, over *all* adaptive adversaries, is exactly 10 — the paper's
corollary bound 2 + 4·2 is tight, and value iteration proves it
numerically (finding F4 in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.two_process import TwoProcessProtocol
from repro.errors import ExplorationLimitError
from repro.sched.optimal import GameSolution, OptimalAdversary, solve_game
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


class TestGameSolving:
    def test_per_processor_value_is_exactly_ten(self):
        for victim in (0, 1):
            sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                             cost_model=f"processor:{victim}")
            assert sol.value == pytest.approx(10.0, abs=1e-9)

    def test_total_steps_value(self):
        sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="total")
        # Exact worst-case expected steps until both decide.
        assert sol.value == pytest.approx(16.0, abs=1e-9)

    def test_unanimous_inputs_trivial_game(self):
        sol = solve_game(TwoProcessProtocol(), ("a", "a"),
                         cost_model="processor:0")
        # Write + deciding read: the adversary can force nothing more.
        assert sol.value == pytest.approx(2.0, abs=1e-9)

    def test_skip_rewrite_variant_is_cheaper_even_at_worst_case(self):
        base = solve_game(TwoProcessProtocol(), ("a", "b"),
                          cost_model="processor:0")
        skip = solve_game(TwoProcessProtocol(skip_redundant_rewrite=True),
                          ("a", "b"), cost_model="processor:0")
        assert skip.value < base.value

    def test_biased_coin_worsens_worst_case(self):
        fair = solve_game(TwoProcessProtocol(), ("a", "b"),
                          cost_model="processor:0")
        biased = solve_game(TwoProcessProtocol(p_heads=0.9), ("a", "b"),
                            cost_model="processor:0")
        assert biased.value > fair.value

    def test_policy_covers_nonterminal_configs(self):
        sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="total")
        assert sol.policy and all(pid in (0, 1) for pid in sol.policy.values())

    def test_rejects_unknown_cost_model(self):
        with pytest.raises(ValueError):
            solve_game(TwoProcessProtocol(), ("a", "b"),
                       cost_model="vibes")

    def test_rejects_infinite_state_protocols(self):
        from repro.core.three_unbounded import ThreeUnboundedProtocol

        with pytest.raises(ExplorationLimitError):
            solve_game(ThreeUnboundedProtocol(), ("a", "b", "a"),
                       max_states=2_000)


class TestPolicyEvaluation:
    def test_uniform_random_matches_monte_carlo(self):
        from repro.sched.optimal import evaluate_policy
        from repro.sched.simple import RandomScheduler

        exact = evaluate_policy(TwoProcessProtocol(), ("a", "b"),
                                lambda c, enabled: None)
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=8,
        )
        stats = runner.run_many(4000, 4000)
        measured = sum(
            r.steps_to_decide[0] for r in stats.runs
        ) / len(stats.runs)
        # 4000 samples should land within ~5% of the exact expectation.
        assert measured == pytest.approx(exact.value, rel=0.05)

    def test_min_id_policy_is_the_solo_run(self):
        from repro.sched.optimal import evaluate_policy

        exact = evaluate_policy(TwoProcessProtocol(), ("a", "b"),
                                lambda c, enabled: enabled[0])
        # P0 runs first and alone: initial write + deciding ⊥-read.
        assert exact.value == pytest.approx(2.0, abs=1e-9)

    def test_fixed_policies_never_exceed_the_game_value(self):
        from repro.sched.optimal import evaluate_policy

        opt = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="processor:0")
        for policy in (lambda c, e: None, lambda c, e: e[0],
                       lambda c, e: e[-1]):
            exact = evaluate_policy(TwoProcessProtocol(), ("a", "b"),
                                    policy)
            assert exact.value <= opt.value + 1e-9

    def test_bad_policy_rejected(self):
        from repro.sched.optimal import evaluate_policy

        with pytest.raises(ValueError):
            evaluate_policy(TwoProcessProtocol(), ("a", "b"),
                            lambda c, enabled: 99)


class TestOptimalAdversaryScheduler:
    def test_monte_carlo_approaches_game_value(self):
        sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="processor:0")
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: OptimalAdversary(sol),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=5,
        )
        stats = runner.run_many(3000, 4000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        costs = [r.steps_to_decide[0] for r in stats.runs]
        mean = sum(costs) / len(costs)
        # Within sampling error of the exact value 10.
        assert 9.0 <= mean <= 11.0

    def test_optimal_beats_heuristic_adversaries(self):
        from repro.sched.adversary import DisagreementAdversary

        sol = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="processor:0")

        def mean_for(factory):
            runner = ExperimentRunner(
                protocol_factory=lambda: TwoProcessProtocol(),
                scheduler_factory=factory,
                inputs_factory=lambda i, rng: ("a", "b"),
                seed=6,
            )
            stats = runner.run_many(1500, 4000)
            return sum(
                r.steps_to_decide[0] for r in stats.runs
            ) / len(stats.runs)

        assert (mean_for(lambda rng: OptimalAdversary(sol))
                > mean_for(lambda rng: DisagreementAdversary()) + 2.0)

    def test_policy_fallback_is_safe(self):
        # Use a policy solved for different inputs: the scheduler must
        # still drive runs to completion via its fallback.
        sol = solve_game(TwoProcessProtocol(), ("a", "a"),
                         cost_model="total")
        result = run_protocol(TwoProcessProtocol(), ("a", "b"),
                              scheduler=OptimalAdversary(sol))
        assert result.completed and result.consistent

"""Time-attribution profiler tests: tiling, merging, matrix sweeps."""

from __future__ import annotations

import pytest

from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.obs.profiling import (
    COMPONENTS,
    TimeAttributionProfiler,
    matrix_stacks,
    profile_matrix,
)
from repro.sched.simple import RandomScheduler, RoundRobinScheduler
from repro.sim.runner import ExperimentRunner


def profiled_batch(frames=("two", "random", "atomic"), memory=None,
                   n_runs=5, seed=13):
    profiler = TimeAttributionProfiler(frames)
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
        memory=memory,
        sinks=(profiler,),
    )
    runner.run_many(n_runs, max_steps=4000)
    return profiler


class TestAttribution:
    def test_components_tile_the_run(self):
        profiler = profiled_batch()
        comps = profiler.components()
        assert set(comps) == set(COMPONENTS)
        assert all(v >= 0.0 for v in comps.values())
        # sched and step were measured directly; both must show up.
        assert comps["scheduler"] > 0
        assert comps["transition"] > 0
        # The five components tile measured wall time: the two derived
        # ones are residuals of the measured phases, so the sum equals
        # run_seconds up to clamp jitter at clock granularity.
        assert sum(comps.values()) == pytest.approx(
            profiler.run_seconds, rel=1e-3, abs=1e-4)

    def test_memory_component_zero_under_atomic(self):
        assert profiled_batch().components()["memory"] == 0.0

    def test_memory_component_positive_under_weak_semantics(self):
        profiler = profiled_batch(
            frames=("two", "random", "safe"), memory="safe")
        assert profiler.components()["memory"] > 0.0
        assert profiler.phase_counts["memory"] > 0

    def test_stacks_prefix_frames_and_drop_zeros(self):
        profiler = profiled_batch()
        rows = profiler.stacks()
        assert rows
        names = set()
        for frames, seconds in rows:
            assert frames[:3] == ("two", "random", "atomic")
            assert seconds > 0.0
            names.add(frames[3])
        assert "memory" not in names  # atomic: zero rows filtered

    def test_run_and_phase_counting(self):
        profiler = profiled_batch(n_runs=4)
        assert profiler.n_runs == 4
        assert profiler.phase_counts["sched"] > 0
        assert profiler.phase_counts["step"] == \
            profiler.phase_counts["transition"]
        d = profiler.to_dict()
        assert d["runs"] == 4
        assert d["frames"] == ["two", "random", "atomic"]

    def test_render_mentions_every_component(self):
        text = profiled_batch().render()
        assert text.startswith("two;random;atomic: 5 runs")
        for name in COMPONENTS:
            assert name in text


class TestMerge:
    def test_merge_adds_durations_and_counts(self):
        a = profiled_batch(seed=1)
        b = profiled_batch(seed=2)
        total_runs = a.n_runs + b.n_runs
        expected_sched = a.phase_seconds["sched"] + \
            b.phase_seconds["sched"]
        a.merge(b)
        assert a.n_runs == total_runs
        assert a.phase_seconds["sched"] == pytest.approx(expected_sched)

    def test_merge_rejects_mismatched_frames(self):
        a = TimeAttributionProfiler(("two", "random", "atomic"))
        b = TimeAttributionProfiler(("three", "fixed", "safe"))
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)


class TestMatrix:
    def test_profile_matrix_names_cells_automatically(self):
        def random_sched(rng):
            return RandomScheduler(rng)

        profilers = profile_matrix(
            [
                {
                    "protocol_factory": lambda: TwoProcessProtocol(),
                    "scheduler_factory": random_sched,
                    "inputs_factory": lambda i, rng: ("a", "b"),
                },
                {
                    "protocol_factory": lambda: ThreeBoundedProtocol(),
                    "scheduler_factory": random_sched,
                    "inputs_factory": lambda i, rng: ("a", "b", "a"),
                    "memory": "safe",
                    "frames": ("cell2", "named"),
                },
            ],
            runs=3, max_steps=2000,
        )
        assert len(profilers) == 2
        assert profilers[0].frames[1] == "random_sched"
        assert profilers[0].frames[2] == "atomic"
        assert profilers[1].frames == ("cell2", "named")
        assert all(p.n_runs == 3 for p in profilers)

    def test_matrix_stacks_concatenates_cells(self):
        a = profiled_batch(frames=("a",), seed=1, n_runs=2)
        b = profiled_batch(frames=("b",), seed=2, n_runs=2)
        rows = matrix_stacks([a, b])
        heads = {frames[0] for frames, _ in rows}
        assert heads == {"a", "b"}
        assert len(rows) == len(a.stacks()) + len(b.stacks())

"""Tests for the hook protocol, the fast/observed path split, the phase
timer, and the scheduler-consultation accounting fix."""

from __future__ import annotations

import pytest

from repro.core.two_process import TwoProcessProtocol
from repro.errors import SimulationError
from repro.obs import BaseSink, MetricsRegistry, ObsHub, PhaseTimer
from repro.obs.hooks import make_hub
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.kernel import Activate, Crash, Simulation
from repro.sim.rng import ReplayableRng


def make_sim(scheduler=None, seed=0, sinks=None, record_trace=False):
    rng = ReplayableRng(seed)
    scheduler = scheduler or RandomScheduler(rng.child("sched"))
    return Simulation(TwoProcessProtocol(), ("a", "b"), scheduler,
                      rng.child("kernel"), record_trace=record_trace,
                      sinks=sinks)


class RecordingSink(BaseSink):
    """Appends (event, payload) tuples for assertion."""

    def __init__(self):
        self.events = []

    def on_run_start(self, protocol_name, n_processes, inputs):
        self.events.append(("run_start", protocol_name))

    def on_sched(self, consults):
        self.events.append(("sched", consults))

    def on_coin_flip(self, pid, n_branches):
        self.events.append(("coin_flip", pid))

    def on_read(self, pid, register, value):
        self.events.append(("read", register))

    def on_write(self, pid, register, value):
        self.events.append(("write", register))

    def on_decision(self, pid, value, activation):
        self.events.append(("decision", pid))

    def on_crash(self, pid, index):
        self.events.append(("crash", pid))

    def on_step(self, index, pid, op, result, decided):
        self.events.append(("step", index))

    def on_run_end(self, result):
        self.events.append(("run_end", result.completed))


class TestHub:
    def test_no_sinks_means_no_hub(self):
        assert make_hub(None) is None
        assert make_hub(()) is None
        sim = make_sim()
        assert sim._obs is None

    def test_hub_fans_out_to_all_sinks(self):
        a, b = RecordingSink(), RecordingSink()
        hub = ObsHub((a, b))
        hub.step(0, 1, None, None, None)
        assert a.events == b.events == [("step", 0)]

    def test_timing_flag_from_sinks(self):
        assert not ObsHub((RecordingSink(),)).timing
        assert ObsHub((RecordingSink(), PhaseTimer())).timing

    def test_attach_sink_after_construction(self):
        sim = make_sim()
        sink = RecordingSink()
        sim.attach_sink(sink)
        sim.step()
        assert ("step", 0) in sink.events

    def test_event_order_within_a_step(self):
        sink = RecordingSink()
        sim = make_sim(scheduler=FixedScheduler([0, 1, 0]), sinks=(sink,))
        for _ in range(3):
            sim.step()
        kinds = [k for k, _ in sink.events]
        # Each step: sched consult, then op event(s), then the step.
        assert kinds[0:3] == ["sched", "write", "step"]
        # A decision is emitted immediately before its step event
        # (the journal replay contract relies on this order).
        if "decision" in kinds:
            assert kinds[kinds.index("decision") + 1] == "step"


class TestNonPerturbation:
    def test_observed_run_identical_to_bare_run(self):
        bare = make_sim(seed=21, record_trace=True).run(4000)
        observed = make_sim(seed=21, record_trace=True,
                            sinks=(RecordingSink(), MetricsRegistry(),
                                   PhaseTimer())).run(4000)
        assert observed.decisions == bare.decisions
        assert observed.total_steps == bare.total_steps
        assert observed.coin_flips == bare.coin_flips
        assert observed.sched_consults == bare.sched_consults
        assert observed.trace.schedule() == bare.trace.schedule()
        assert [s.op for s in observed.trace] == [s.op for s in bare.trace]

    @pytest.mark.parametrize("seed", range(8))
    def test_paths_agree_across_seeds(self, seed):
        bare = make_sim(seed=seed).run(4000)
        observed = make_sim(seed=seed, sinks=(BaseSink(),)).run(4000)
        assert observed.decisions == bare.decisions
        assert observed.total_steps == bare.total_steps


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        result = make_sim(seed=2, sinks=(timer,)).run(4000)
        assert timer.n_runs == 1
        assert timer.run_seconds > 0
        for phase in ("sched", "step", "transition"):
            assert timer.phases[phase].count > 0
            assert timer.phases[phase].seconds > 0
        assert timer.phases["step"].count == result.total_steps
        # The transition is a sub-span of the step.
        assert (timer.phases["transition"].seconds
                <= timer.phases["step"].seconds)
        d = timer.to_dict()
        assert d["phases"]["step"]["mean_us"] > 0
        assert "step" in timer.render()

    def test_no_timing_without_timer_sink(self):
        class TimingSpy(RecordingSink):
            def on_phase_time(self, phase, seconds):
                self.events.append(("phase_time", phase))

        spy = TimingSpy()  # wants_timing stays False
        make_sim(seed=2, sinks=(spy,)).run(4000)
        assert not any(k == "phase_time" for k, _ in spy.events)


class TestSchedulerConsultAccounting:
    def test_consults_counted_per_activation(self):
        sim = make_sim(scheduler=FixedScheduler([0, 1, 0, 1]))
        sim.step()
        sim.step()
        assert sim.sched_consults == 2
        assert sim.result().sched_consults == 2

    def test_crash_actions_consume_consults_not_steps(self):
        class CrashThenRun:
            def __init__(self):
                self.fired = False

            def choose(self, view):
                if not self.fired:
                    self.fired = True
                    return Crash(1)
                return Activate(0)

        sim = make_sim(scheduler=CrashThenRun())
        result = sim.run(100)
        assert result.completed
        assert result.total_steps < result.sched_consults

    def test_default_consult_budget_never_cuts_a_sane_run(self):
        result = make_sim(seed=3).run(4000)
        assert result.completed
        assert result.sched_consults == result.total_steps

    def test_consult_budget_stops_the_run(self):
        # No two-processor run can finish in 3 steps, so a 3-consult
        # budget must stop the run early instead of letting scheduler
        # work run unbounded relative to max_steps.
        result = make_sim(seed=1).run(4000, max_consults=3)
        assert not result.completed
        assert result.sched_consults == 3
        assert result.total_steps == 3

    def test_view_exposes_consults(self):
        sim = make_sim(scheduler=FixedScheduler([0, 1]))
        sim.step()
        assert sim._view.sched_consults == 1

    def test_metrics_expose_consults(self):
        reg = MetricsRegistry()
        result = make_sim(seed=5, sinks=(reg,)).run(4000)
        assert reg.counters["sched_consults"].value == result.sched_consults
        assert (reg.histograms["run_sched_consults"].p50
                == result.sched_consults)

"""Differential tests: the fast kernel path vs the reference path.

The kernel's fast path (``Simulation(..., engine="fast")``, the
default) must be *observably identical* to the reference path
(``engine="reference"``, the seed kernel verbatim): same decisions,
same activation counts, same
coin-flip counts (per processor — the RNG draw sequences themselves
must match, not just totals), same scheduler-consultation count, same
final configuration, same trace, same journal bytes, same metrics.

These tests enforce that bit-for-bit across every core protocol, every
scheduler family (benign, oblivious, crashing, adaptive adversaries),
multiple seeds, and — via Hypothesis — randomly generated table-driven
automata whose branch structure, register wiring and transition tables
are arbitrary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.n_process import NProcessProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.checker.explorer import explore, successors
from repro.errors import SimulationError
from repro.obs import JsonlJournal, MetricsRegistry
from repro.sched.adversary import DisagreementAdversary, SplitVoteAdversary
from repro.sched.crash import CrashingScheduler, CrashPlan
from repro.sched.simple import (
    BlockScheduler,
    FixedScheduler,
    ObliviousScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.kernel import Simulation
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.process import Automaton, Branch, RegisterSpec
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_one(protocol_factory, inputs, scheduler_factory, seed, *,
            engine, max_steps=3_000, record_trace=False, cache=None,
            sinks=None):
    """One run with the full seed-derivation discipline of the runner."""
    rng = ReplayableRng(seed)
    scheduler = scheduler_factory(rng.child("sched"))
    sim = Simulation(
        protocol_factory(), inputs, scheduler, rng.child("kernel"),
        record_trace=record_trace, engine=engine, cache=cache,
        sinks=sinks,
    )
    result = sim.run(max_steps)
    draws = tuple(r.draws for r in sim._proc_rngs)
    return result, draws


def assert_identical(res_fast, res_ref):
    """Every observable field of two RunResults must match exactly."""
    assert res_fast.protocol_name == res_ref.protocol_name
    assert res_fast.inputs == res_ref.inputs
    assert res_fast.decisions == res_ref.decisions
    assert res_fast.activations == res_ref.activations
    assert res_fast.decision_activation == res_ref.decision_activation
    assert res_fast.coin_flips == res_ref.coin_flips
    assert res_fast.total_steps == res_ref.total_steps
    assert res_fast.crashed == res_ref.crashed
    assert res_fast.completed == res_ref.completed
    assert res_fast.sched_consults == res_ref.sched_consults
    assert res_fast.final_configuration == res_ref.final_configuration


def run_pair(protocol_factory, inputs, scheduler_factory, seed, **kw):
    res_fast, draws_fast = run_one(
        protocol_factory, inputs, scheduler_factory, seed,
        engine="fast", **kw)
    res_ref, draws_ref = run_one(
        protocol_factory, inputs, scheduler_factory, seed,
        engine="reference", **kw)
    assert_identical(res_fast, res_ref)
    # The per-processor RNG streams must have consumed the exact same
    # number of draws — a stronger property than equal coin_flips
    # counters (it pins the drawing *order*, because all streams are
    # derived from one seed and interleave through the scheduler).
    assert draws_fast == draws_ref
    return res_fast


PROTOCOLS = {
    "two_process": (lambda: TwoProcessProtocol(values=("a", "b")),
                    ("a", "b")),
    "three_unbounded": (lambda: ThreeUnboundedProtocol(), ("a", "b", "a")),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b")),
    "n_process_4": (lambda: NProcessProtocol(4), ("a", "b", "b", "a")),
}

SCHEDULERS = {
    "random": lambda rng: RandomScheduler(rng),
    "round_robin": lambda rng: RoundRobinScheduler(),
    "fixed": lambda rng: FixedScheduler([0, 0, 1, 0, 1, 1, 0]),
    "oblivious": lambda rng: ObliviousScheduler(rng),
    "block": lambda rng: BlockScheduler(3),
    "crashing": lambda rng: CrashingScheduler(
        RandomScheduler(rng), CrashPlan(at_step={3: (1,)})),
    "disagreement": lambda rng: DisagreementAdversary(),
    "split_vote": lambda rng: SplitVoteAdversary(),
}

SEEDS = (1, 7, 42)


@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_fast_path_bit_identical(protocol_name, scheduler_name):
    protocol_factory, inputs = PROTOCOLS[protocol_name]
    scheduler_factory = SCHEDULERS[scheduler_name]
    for seed in SEEDS:
        run_pair(protocol_factory, inputs, scheduler_factory, seed)


def test_traces_identical_when_recorded():
    protocol_factory, inputs = PROTOCOLS["three_bounded"]
    for seed in SEEDS:
        res_fast, _ = run_one(protocol_factory, inputs,
                              SCHEDULERS["random"], seed,
                              engine="fast", record_trace=True)
        res_ref, _ = run_one(protocol_factory, inputs,
                             SCHEDULERS["random"], seed,
                             engine="reference", record_trace=True)
        assert_identical(res_fast, res_ref)
        assert len(res_fast.trace) == len(res_ref.trace)
        for a, b in zip(res_fast.trace, res_ref.trace):
            assert (a.index, a.pid, a.op, a.result, a.decided) \
                == (b.index, b.pid, b.op, b.result, b.decided)


# ----------------------------------------------------------------------
# Observability parity: journal bytes and metrics must not change
# ----------------------------------------------------------------------

def test_journal_bytes_identical(tmp_path):
    protocol_factory, inputs = PROTOCOLS["two_process"]
    paths = {}
    for engine in ("fast", "reference"):
        path = tmp_path / f"journal_{engine}.jsonl"
        journal = JsonlJournal(str(path))
        run_one(protocol_factory, inputs, SCHEDULERS["random"], 11,
                engine=engine, sinks=(journal,))
        journal.close()
        paths[engine] = path.read_bytes()
    assert paths["fast"] == paths["reference"]


def test_metrics_identical():
    protocol_factory, inputs = PROTOCOLS["three_bounded"]
    registries = {}
    for engine in ("fast", "reference"):
        reg = MetricsRegistry()
        run_one(protocol_factory, inputs, SCHEDULERS["random"], 23,
                engine=engine, sinks=(reg,))
        registries[engine] = reg.to_dict()
    assert registries["fast"] == registries["reference"]


# ----------------------------------------------------------------------
# Engine selection and cache plumbing
# ----------------------------------------------------------------------

class TestEngineSelection:
    def test_fast_is_the_default(self):
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RoundRobinScheduler(), ReplayableRng(0))
        assert sim._fast and sim._cache is not None

    def test_reference_escape_hatch(self):
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RoundRobinScheduler(), ReplayableRng(0),
                         engine="reference")
        assert not sim._fast and sim._cache is None
        result = sim.run(1_000)
        assert result.completed and result.consistent

    def test_cache_with_reference_path_rejected(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol)
        with pytest.raises(SimulationError):
            Simulation(protocol, ("a", "b"), RoundRobinScheduler(),
                       ReplayableRng(0), engine="reference", cache=cache)

    def test_shared_cache_matches_private_caches(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol)
        for seed in SEEDS:
            shared, _ = run_one(lambda: protocol, ("a", "b"),
                                SCHEDULERS["random"], seed,
                                engine="fast", cache=cache)
            private, _ = run_one(lambda: protocol, ("a", "b"),
                                 SCHEDULERS["random"], seed,
                                 engine="fast")
            assert_identical(shared, private)
        assert len(cache) > 0

    def test_shared_cache_reuses_layout(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol)
        sims = [
            Simulation(protocol, ("a", "b"), RoundRobinScheduler(),
                       ReplayableRng(s), cache=cache)
            for s in (0, 1)
        ]
        assert sims[0].layout is cache.layout
        assert sims[1].layout is cache.layout


class TestTransitionCache:
    def test_entries_memoized(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol)
        state = protocol.initial_state(0, "a")
        e1 = cache.entry(0, state)
        e2 = cache.entry(0, state)
        assert e1 is e2
        assert len(cache) == 1

    def test_max_entries_overflow_still_computes(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol, max_entries=0)
        state = protocol.initial_state(0, "a")
        e1 = cache.entry(0, state)
        e2 = cache.entry(0, state)
        assert e1 is not e2  # not stored...
        assert e1.execs == e2.execs  # ...but equivalent
        assert len(cache) == 0

    def test_outcome_chains_next_entry(self):
        protocol = TwoProcessProtocol()
        cache = TransitionCache(protocol)
        state = protocol.initial_state(0, "a")
        entry = cache.entry(0, state)
        # The initial move is a deterministic write of the input value.
        new_state, decided, next_entry = cache.outcome(0, state, entry, 0,
                                                       None)
        assert decided is None
        assert next_entry is cache.entry(0, new_state)

    def test_strict_cache_validates_distributions(self):
        class BadProtocol(TwoProcessProtocol):
            def branches(self, pid, state):
                branches = super().branches(pid, state)
                if len(branches) > 1:
                    return (Branch(0.9, branches[0].op),
                            Branch(0.9, branches[1].op))
                return branches

        from repro.errors import ProtocolError
        protocol = BadProtocol()
        cache = TransitionCache(protocol, strict=True)
        sim = Simulation(protocol, ("a", "b"), RoundRobinScheduler(),
                         ReplayableRng(3), cache=cache)
        with pytest.raises(ProtocolError):
            sim.run(1_000)


# ----------------------------------------------------------------------
# Explorer: the cached successor expansion must match the uncached one
# ----------------------------------------------------------------------

class TestExplorerCache:
    @pytest.mark.parametrize("protocol_name",
                             ["two_process", "three_bounded"])
    def test_successors_with_and_without_cache(self, protocol_name):
        protocol_factory, inputs = PROTOCOLS[protocol_name]
        protocol = protocol_factory()
        layout = RegisterLayout.for_protocol(protocol)
        cache = TransitionCache(protocol, layout=layout, strict=False)
        config = Configuration.initial(protocol, layout, inputs)
        seen = {config}
        frontier = [config]
        for _ in range(4):  # four BFS levels is plenty of coverage
            nxt = []
            for c in frontier:
                plain = list(successors(protocol, layout, c))
                cached = list(successors(protocol, layout, c, cache))
                assert plain == cached
                for s in plain:
                    if s.config not in seen:
                        seen.add(s.config)
                        nxt.append(s.config)
            frontier = nxt

    def test_explore_still_exhausts_two_process(self):
        graph = explore(TwoProcessProtocol(), ("a", "b"))
        assert graph.complete
        assert graph.n_states > 1


# ----------------------------------------------------------------------
# Hypothesis: random table-driven automata
# ----------------------------------------------------------------------

class TableAutomaton(Automaton):
    """An automaton whose entire behavior is a drawn lookup table.

    States are small ints; every register is readable and writable by
    every processor; ``observe`` maps ``(pid, state, op, result)``
    through index arithmetic into a drawn transition list.  Everything
    is pure and transition-stable, but the branch structure, weights,
    register wiring, and state graph are arbitrary — exactly the space
    the TransitionCache contract quantifies over.
    """

    name = "table"
    _WRITE_VALUES = (0, 1, 2)
    _RESULT_INDEX = {BOTTOM: 0, 0: 1, 1: 2, 2: 3, None: 4}

    def __init__(self, spec):
        self.n_processes = spec["n"]
        self._n_states = spec["n_states"]
        self._n_regs = spec["n_regs"]
        self._decide = spec["decide_states"]
        self._init = spec["init"]
        self._trans = spec["trans"]
        # Op space: every read, then every (register, value) write.
        ops = [ReadOp(f"r{i}") for i in range(self._n_regs)]
        ops += [WriteOp(f"r{i}", v) for i in range(self._n_regs)
                for v in self._WRITE_VALUES]
        self._op_code = {
            (op.kind, op.register, getattr(op, "value", None)): code
            for code, op in enumerate(ops)
        }
        self._branches = {}
        for (pid, state), (op_idxs, weights) in spec["branch_table"].items():
            total = sum(weights)
            self._branches[(pid, state)] = tuple(
                Branch(w / total, ops[i]) for i, w in zip(op_idxs, weights)
            )

    def registers(self):
        everyone = tuple(range(self.n_processes))
        return [RegisterSpec(name=f"r{i}", writers=everyone,
                             readers=everyone, initial=BOTTOM)
                for i in range(self._n_regs)]

    def initial_state(self, pid, input_value):
        return self._init[pid * 2 + input_value]

    def branches(self, pid, state):
        return self._branches[(pid, state)]

    def observe(self, pid, state, op, result):
        code = self._op_code[(op.kind, op.register,
                              getattr(op, "value", None))]
        ridx = self._RESULT_INDEX[result]
        trans = self._trans
        return trans[(pid * 7 + state * 13 + code * 3 + ridx * 5)
                     % len(trans)]

    def output(self, pid, state):
        return state % 2 if state in self._decide else None


@st.composite
def automaton_specs(draw):
    n = draw(st.integers(2, 3))
    n_states = draw(st.integers(3, 6))
    n_regs = draw(st.integers(1, 3))
    n_ops = n_regs * (1 + len(TableAutomaton._WRITE_VALUES))
    decide_states = draw(st.sets(st.integers(0, n_states - 1),
                                 max_size=n_states - 1))
    branch_table = {}
    for pid in range(n):
        for state in range(n_states):
            if state in decide_states:
                continue
            k = draw(st.integers(1, 3))
            op_idxs = draw(st.lists(st.integers(0, n_ops - 1),
                                    min_size=k, max_size=k))
            weights = draw(st.lists(st.integers(1, 5),
                                    min_size=k, max_size=k))
            branch_table[(pid, state)] = (tuple(op_idxs), tuple(weights))
    non_decided = [s for s in range(n_states) if s not in decide_states]
    init = draw(st.lists(st.sampled_from(non_decided + list(decide_states)),
                         min_size=n * 2, max_size=n * 2))
    trans = draw(st.lists(st.integers(0, n_states - 1),
                          min_size=4, max_size=16))
    return {
        "n": n, "n_states": n_states, "n_regs": n_regs,
        "decide_states": frozenset(decide_states),
        "branch_table": branch_table, "init": init, "trans": trans,
    }


@settings(max_examples=60, deadline=None)
@given(spec=automaton_specs(), seed=st.integers(0, 2 ** 32),
       inputs_bits=st.lists(st.integers(0, 1), min_size=3, max_size=3))
def test_random_automata_fast_equals_reference(spec, seed, inputs_bits):
    protocol = TableAutomaton(spec)
    inputs = tuple(inputs_bits[: protocol.n_processes])
    results = {}
    draws = {}
    for engine in ("fast", "reference"):
        rng = ReplayableRng(seed)
        sim = Simulation(protocol, inputs,
                         RandomScheduler(rng.child("sched")),
                         rng.child("kernel"), engine=engine)
        results[engine] = sim.run(300)
        draws[engine] = tuple(r.draws for r in sim._proc_rngs)
    assert_identical(results["fast"], results["reference"])
    assert draws["fast"] == draws["reference"]
    assert results["fast"].coin_flips == results["reference"].coin_flips

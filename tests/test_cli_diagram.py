"""Tests for the CLI's space-time diagram flag."""

from __future__ import annotations

from repro.cli import main


class TestDiagramFlag:
    def test_diagram_renders_columns(self, capsys):
        assert main(["solve", "--inputs", "a,b", "--trace", "--diagram",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "step  P0" in out
        assert "w r0←'a'" in out or "w r1←'b'" in out

    def test_diagram_respects_limit(self, capsys):
        assert main(["solve", "--protocol", "three-unbounded",
                     "--inputs", "a,b,a", "--trace", "--diagram",
                     "--trace-limit", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "more steps" in out

    def test_plain_trace_unchanged(self, capsys):
        assert main(["solve", "--inputs", "a,b", "--trace",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "step  P0" not in out  # flat rendering, not columns
        assert "write(" in out

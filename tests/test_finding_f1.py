"""Regression tests for reproduction finding F1.

F1: the extended abstract's Figure 2 decision rule, read literally,
lets a *trailing* processor decide for observed two-ahead leaders.
Because a phase's two reads are not an atomic snapshot, the trailing
processor's view of the third register can be arbitrarily stale, and
the third processor can meanwhile race to an opposite-preference
two-lead of its own — two different decisions in one run.

These tests pin both sides of the finding:

* the literal rule produces an actual consistency violation (we keep a
  concrete seeded run *and* assert the Monte-Carlo harness still finds
  violations when searching),
* the corrected rule (decider must itself lead — as in the journal
  version of the protocol) passes the identical searches.
"""

from __future__ import annotations

import pytest

from repro.core.rules import PrefNum, decision, decision_literal_figure2
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


def search_for_violation(decision_rule: str, n_runs: int = 500):
    """Return the consistency-violating runs found in a seeded search."""
    runner = ExperimentRunner(
        protocol_factory=lambda: ThreeUnboundedProtocol(
            decision_rule=decision_rule
        ),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: rng.choice(
            [("a", "b", "a"), ("a", "b", "b"), ("b", "a", "a")]
        ),
        seed=29,  # the seed under which the bug was originally caught
    )
    stats = runner.run_many(n_runs, max_steps=20_000)
    return [r for r in stats.runs if not r.consistent]


class TestLiteralRuleIsBroken:
    def test_rule_level_difference(self):
        own = PrefNum("b", 2)
        leaders = [PrefNum("a", 5), PrefNum("a", 5)]
        assert decision_literal_figure2(own, leaders) == "a"
        assert decision(own, leaders) is None

    def test_monte_carlo_finds_violation(self):
        violations = search_for_violation("literal")
        assert violations, (
            "expected the seeded search to exhibit F1's consistency "
            "violation against the literal Figure 2 rule"
        )

    def test_violating_run_replays_deterministically(self):
        violations = search_for_violation("literal")
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(
                decision_rule="literal"
            ),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: rng.choice(
                [("a", "b", "a"), ("a", "b", "b"), ("b", "a", "a")]
            ),
            seed=29,
        )
        result = runner.run_one(violations[0].run_index, 20_000,
                                record_trace=True)
        assert len(result.decided_values) > 1
        # The violation's anatomy: some processor decided while not
        # holding the maximal num it observed (a from-behind decision).
        assert result.trace is not None


class TestCorrectedRuleIsClean:
    def test_same_search_finds_nothing(self):
        assert search_for_violation("own-leader") == []

    def test_rejects_unknown_rule(self):
        with pytest.raises(ValueError):
            ThreeUnboundedProtocol(decision_rule="wishful")

    def test_default_is_corrected(self):
        assert ThreeUnboundedProtocol().decision_rule == "own-leader"

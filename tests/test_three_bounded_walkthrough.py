"""Walkthrough tests: the bounded protocol's checkpoint machinery.

These drive hand-built schedules through whole scenarios — leaders
parking at a checkpoint, the embedded two-processor protocol between
them, the laggard catching up, guarded crossings — asserting the
register states at each stage.  They are regression armour for the
trickiest code in the repository (and for finding F3's two inferred
rules specifically).
"""

from __future__ import annotations

import pytest

from repro.core.three_bounded import (
    BReg,
    MIXED,
    ThreeBoundedProtocol,
    ahead,
)
from repro.sched.simple import FixedScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


def drive(schedule, inputs=("a", "a", "b"), seed=0, p_heads=0.5):
    """Run a fixed schedule; return the simulation for inspection."""
    sim = Simulation(
        ThreeBoundedProtocol(p_heads=p_heads), inputs,
        FixedScheduler(schedule), ReplayableRng(seed),
        record_trace=True,
    )
    for _ in range(len(schedule)):
        if sim.finished:
            break
        sim.step()
    return sim


def reg_of(sim, pid) -> BReg:
    return sim.configuration.registers[pid]


def drive_until(sim, pid, predicate, max_steps=500):
    """Step only ``pid`` until its register satisfies ``predicate``."""
    while not predicate(reg_of(sim, pid)):
        if pid in sim.decisions or sim.step_index > max_steps:
            break
        sim.step_processor(pid)
    return reg_of(sim, pid)


class TestSoloClimb:
    def test_solo_processor_walks_one_two_three_and_decides(self):
        # P0 alone: write [1,b], phases advance 1 -> 2 -> 3; at 3 both
        # others (unwritten, position 1) are two behind: T2 decides.
        sim = drive([0] * 120, inputs=("b", "a", "a"), seed=1)
        assert sim.decisions.get(0) == "b"
        final = reg_of(sim, 0)
        assert final.mode == "dec" and final.val == "b"
        # It never advanced past the first checkpoint.
        positions = [
            s.op.value.pos for s in sim.trace
            if s.pid == 0 and s.op.kind == "write"
            and s.op.value.mode == "run"
        ]
        assert max(positions) <= 3

    def test_decision_was_written_before_halting(self):
        sim = drive([0] * 120, inputs=("b", "a", "a"), seed=1)
        last_write = [s for s in sim.trace if s.op.kind == "write"][-1]
        assert last_write.op.value.mode == "dec"


class TestCheckpointWait:
    def make_leaders_at_checkpoint(self, seed=3):
        """Drive P0 and P1 to the checkpoint while P2 never moves."""
        sim = Simulation(
            ThreeBoundedProtocol(), ("a", "b", "b"),
            FixedScheduler([]), ReplayableRng(seed),
        )
        # Interleave P0/P1 phases until both sit at position 3.
        for _ in range(400):
            for pid in (0, 1):
                if pid in sim.decisions:
                    continue
                sim.step_processor(pid)
            r0, r1 = reg_of(sim, 0), reg_of(sim, 1)
            if (r0.mode == "wait" or r0.pos == 3) and \
               (r1.mode == "wait" or r1.pos == 3):
                break
        return sim

    def test_leaders_park_in_wait_mode(self):
        sim = self.make_leaders_at_checkpoint()
        # Keep stepping the pair: they must enter wait states at 3 (or
        # decide) — never cross to 4 while P2 sits two behind at 1.
        for _ in range(200):
            for pid in (0, 1):
                if pid not in sim.decisions:
                    sim.step_processor(pid)
            for pid in (0, 1):
                r = reg_of(sim, pid)
                if r.mode == "run":
                    assert ahead(r.pos, 1) <= 2, (
                        f"P{pid} crossed the checkpoint past a laggard "
                        f"two behind: {r!r}"
                    )
            if all(pid in sim.decisions for pid in (0, 1)):
                break
        # The embedded two-processor protocol terminates the pair.
        assert 0 in sim.decisions and 1 in sim.decisions
        assert sim.decisions[0] == sim.decisions[1]

    def test_laggard_adopts_waiters_value_when_catching_up(self):
        sim = self.make_leaders_at_checkpoint()
        # Run the pair until at least one is parked in wait mode.
        for _ in range(100):
            if any(reg_of(sim, p).mode == "wait" for p in (0, 1)):
                break
            for pid in (0, 1):
                if pid not in sim.decisions:
                    sim.step_processor(pid)
        waiters = [p for p in (0, 1) if reg_of(sim, p).mode == "wait"]
        if not waiters:
            pytest.skip("pair agreed before parking under this seed")
        # Now wake the laggard and let only it run.  It must climb to
        # the checkpoint and, per the guarded-crossing rule, only leave
        # position 3 carrying a value the others unanimously show.
        for _ in range(300):
            if 2 in sim.decisions:
                break
            sim.step_processor(2)
            r2 = reg_of(sim, 2)
            if r2.mode == "run" and ahead(r2.pos, 3) >= 1:
                shown = {reg_of(sim, 0).val, reg_of(sim, 1).val}
                assert r2.val in shown, (
                    "laggard crossed carrying a value nobody showed"
                )
        # Whatever happened, safety held.
        decided = set(sim.decisions.values())
        assert len(decided) <= 1


class TestSeenField:
    def test_seen_updates_on_section_exit(self):
        # Three processors marching together with the same value cross
        # checkpoint 3 and acquire seen='a'.
        sim = Simulation(
            ThreeBoundedProtocol(), ("a", "a", "a"),
            FixedScheduler([]), ReplayableRng(7),
        )
        for _ in range(400):
            for pid in range(3):
                if pid not in sim.decisions:
                    sim.step_processor(pid)
            if sim.finished:
                break
        assert sim.finished
        assert set(sim.decisions.values()) == {"a"}
        # Some register carried a clean third field at some point, or
        # the T2/A2 path decided first — either way no MIXED appears in
        # a unanimous run.
        for s in sim.trace or ():
            pass  # trace not recorded here; field check below
        # Re-run traced to inspect writes.
        sim2 = Simulation(
            ThreeBoundedProtocol(), ("a", "a", "a"),
            FixedScheduler([]), ReplayableRng(7), record_trace=True,
        )
        for _ in range(400):
            for pid in range(3):
                if pid not in sim2.decisions:
                    sim2.step_processor(pid)
            if sim2.finished:
                break
        for s in sim2.trace:
            if s.op.kind == "write" and s.op.value.mode != "dec":
                assert s.op.value.seen in (None, "a"), (
                    f"unanimous run produced seen={s.op.value.seen!r}"
                )

    def test_mixed_run_can_produce_mixed_seen(self):
        # Over many seeds with mixed inputs, at least one write carries
        # the MIXED third field (the value genuinely flipped within a
        # section) — exercising the summary logic end to end.
        found = False
        for seed in range(60):
            sim = Simulation(
                ThreeBoundedProtocol(), ("a", "b", "a"),
                FixedScheduler([]), ReplayableRng(seed),
                record_trace=True,
            )
            for _ in range(600):
                for pid in range(3):
                    if pid not in sim.decisions:
                        sim.step_processor(pid)
                if sim.finished:
                    break
            for s in sim.trace:
                if (s.op.kind == "write" and s.op.value.mode != "dec"
                        and s.op.value.seen is MIXED):
                    found = True
            if found:
                break
        assert found, "no run ever exercised the MIXED third field"

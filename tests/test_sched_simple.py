"""Tests for the benign schedulers."""

from __future__ import annotations

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import (
    BlockScheduler,
    FixedScheduler,
    ObliviousScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng

from conftest import run_protocol


def schedule_of(protocol, inputs, scheduler, steps):
    sim = Simulation(protocol, inputs, scheduler, ReplayableRng(0),
                     record_trace=True)
    for _ in range(steps):
        if sim.finished:
            break
        sim.step()
    return sim.trace.schedule()


class TestRoundRobin:
    def test_cycles_in_order(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            RoundRobinScheduler(), 6)
        assert sched == [0, 1, 2, 0, 1, 2]

    def test_custom_start(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            RoundRobinScheduler(start=2), 3)
        assert sched == [2, 0, 1]

    def test_skips_decided_processors(self):
        # Run a two-process instance to P0's decision, then the round
        # robin must only schedule P1.
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         FixedScheduler([0, 0]), ReplayableRng(0))
        sim.step(), sim.step()
        assert sim.decisions == {0: "a"}
        rr = RoundRobinScheduler()
        sim.scheduler = rr
        rec = sim.step()
        assert rec.pid == 1


class TestFixedScheduler:
    def test_follows_sequence_then_round_robin(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            FixedScheduler([2, 2, 1]), 5)
        assert sched[:3] == [2, 2, 1]
        # Fallback keeps making progress.
        assert len(sched) == 5

    def test_skips_halted_entries(self):
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         FixedScheduler([0, 0, 0, 0, 1]), ReplayableRng(0),
                         record_trace=True)
        sim.run(10)
        # P0 decided after two steps; the remaining 0-entries are skipped.
        assert sim.trace.schedule()[:3] == [0, 0, 1]


class TestRandomScheduler:
    def test_all_processors_get_scheduled(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            RandomScheduler(ReplayableRng(5)), 30)
        assert set(sched) == {0, 1, 2}

    def test_seeded_reproducibility(self):
        a = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                        RandomScheduler(ReplayableRng(5)), 20)
        b = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                        RandomScheduler(ReplayableRng(5)), 20)
        assert a == b


class TestBlockScheduler:
    def test_blocks_of_k(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            BlockScheduler(3), 9)
        assert sched == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_custom_order(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            BlockScheduler(2, order=[2, 0, 1]), 6)
        assert sched == [2, 2, 0, 0, 1, 1]

    def test_block_one_is_round_robin(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            BlockScheduler(1), 6)
        assert sched == [0, 1, 2, 0, 1, 2]

    def test_rejects_bad_block(self):
        import pytest

        with pytest.raises(ValueError):
            BlockScheduler(0)


class TestObliviousScheduler:
    def test_produces_valid_runs(self):
        result = run_protocol(
            ThreeUnboundedProtocol(), ("a", "b", "b"),
            scheduler=ObliviousScheduler(ReplayableRng(9)),
        )
        assert result.completed and result.consistent

    def test_bursty_pattern(self):
        sched = schedule_of(ThreeUnboundedProtocol(), ("a", "b", "a"),
                            ObliviousScheduler(ReplayableRng(1), burst_max=5),
                            40)
        # Bursts imply consecutive repeats somewhere in 40 steps.
        assert any(a == b for a, b in zip(sched, sched[1:]))

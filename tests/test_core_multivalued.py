"""Tests for the Theorem 5 multivalued reduction."""

from __future__ import annotations

import pytest

from repro.analysis.theory import multivalued_instance_count
from repro.core.multivalued import MultiValuedProtocol, bit_width
from repro.core.n_process import NProcessProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


def two_proc_mv(values):
    return MultiValuedProtocol(
        base_factory=lambda: TwoProcessProtocol(values=(0, 1)),
        values=values,
    )


def n_proc_mv(n, values):
    return MultiValuedProtocol(
        base_factory=lambda: NProcessProtocol(n, values=(0, 1)),
        values=values,
    )


class TestBitWidth:
    @pytest.mark.parametrize("k,w", [(2, 1), (3, 2), (4, 2), (5, 3),
                                     (8, 3), (9, 4), (16, 4), (1000, 10)])
    def test_matches_ceiling_log(self, k, w):
        assert bit_width(k) == w
        assert multivalued_instance_count(k) == w

    def test_rejects_trivial_domain(self):
        with pytest.raises(ValueError):
            bit_width(1)


class TestConstruction:
    def test_rejects_nonbinary_base(self):
        with pytest.raises(ValueError):
            MultiValuedProtocol(
                base_factory=lambda: TwoProcessProtocol(values=("x", "y")),
                values=("p", "q", "r"),
            )

    def test_width_property(self):
        assert two_proc_mv("pqrs").width == 2

    def test_registers_namespaced_per_instance(self):
        p = two_proc_mv("pqrs")
        names = {spec.name for spec in p.registers()}
        assert "bin0.r0" in names and "bin1.r1" in names
        assert "val0" in names and "val1" in names

    def test_inherits_processor_count(self):
        assert n_proc_mv(5, "pqr").n_processes == 5


class TestEndToEnd:
    @pytest.mark.parametrize("k", [2, 3, 4, 8, 16])
    def test_two_processors_k_values(self, k):
        values = tuple(f"v{i}" for i in range(k))
        for seed in range(10):
            result = run_protocol(two_proc_mv(values), (values[0], values[-1]),
                                  seed=seed, max_steps=100_000)
            assert result.completed
            assert result.consistent and result.nontrivial
            assert result.decided_values.issubset({values[0], values[-1]})

    def test_three_processors_five_values(self):
        values = ("p", "q", "r", "s", "t")
        runner = ExperimentRunner(
            protocol_factory=lambda: n_proc_mv(3, values),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: tuple(
                rng.choice(values) for _ in range(3)
            ),
            seed=51,
        )
        stats = runner.run_many(100, max_steps=200_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0

    def test_nontriviality_decided_value_is_an_input(self):
        # The classic mixed-bits hazard: inputs with indices 1 (01) and
        # 2 (10) must never produce 0 (00) or 3 (11).
        values = ("w0", "w1", "w2", "w3")
        for seed in range(40):
            result = run_protocol(two_proc_mv(values), ("w1", "w2"),
                                  seed=seed, max_steps=100_000)
            assert result.completed
            assert result.decided_values.issubset({"w1", "w2"}), (
                f"seed {seed}: mixed-bit output {result.decided_values}"
            )

    def test_unanimous_inputs_fast_path(self):
        values = ("p", "q", "r", "s")
        result = run_protocol(two_proc_mv(values), ("r", "r"), seed=1)
        assert result.decided_values == {"r"}

    def test_solo_processor_decides(self):
        values = ("p", "q", "r", "s")
        result = run_protocol(two_proc_mv(values), ("q", "s"),
                              scheduler=FixedScheduler([0] * 200))
        assert result.decisions[0] == "q"

    def test_cost_scales_with_log_k(self):
        def mean_steps(k):
            values = tuple(range(k))
            runner = ExperimentRunner(
                protocol_factory=lambda: two_proc_mv(values),
                scheduler_factory=lambda rng: RandomScheduler(rng),
                inputs_factory=lambda i, rng: (
                    rng.choice(values), rng.choice(values)
                ),
                seed=61,
            )
            return runner.run_many(60, 100_000).mean_steps_to_decide()

        m2, m16 = mean_steps(2), mean_steps(16)
        # 16 values = 4 instances vs 1: cost should grow by roughly the
        # instance ratio (with announce/scan overhead), far below 20x.
        assert m16 > m2
        assert m16 < m2 * 20

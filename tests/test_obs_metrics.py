"""Tests for the streaming metrics instruments and the registry sink."""

from __future__ import annotations

import pytest

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner


def run_with_registry(protocol, inputs, seed=0, max_steps=50_000):
    reg = MetricsRegistry()
    rng = ReplayableRng(seed)
    sim = Simulation(protocol, inputs, RandomScheduler(rng.child("sched")),
                     rng.child("kernel"), sinks=(reg,))
    return sim.run(max_steps), reg


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        other = Counter()
        other.inc(7)
        c.merge(other)
        assert c.value == 12

    def test_gauge_tracks_extremes(self):
        g = Gauge()
        for x in (3, 7, 1):
            g.set(x)
        assert g.value == 1 and g.minimum == 1 and g.maximum == 7

    def test_gauge_merge(self):
        a, b = Gauge(), Gauge()
        a.set(5)
        b.set(2)
        b.set(9)
        a.merge(b)
        assert a.minimum == 2 and a.maximum == 9

    def test_histogram_percentiles_interpolate(self):
        # Linear interpolation between order statistics: the fractional
        # rank h = (n-1)q sits between x[floor(h)] and x[ceil(h)].
        h = Histogram()
        data = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]
        for x in data:
            h.observe(x)
        assert h.p50 == 6.5          # between x[4]=5 and x[5]=8
        assert h.p90 == pytest.approx(36.1)    # 34 + 0.1 * (55 - 34)
        assert h.p99 == pytest.approx(53.11)   # 34 + 0.91 * (55 - 34)
        assert h.mean == pytest.approx(sum(data) / len(data))
        assert h.minimum == 1 and h.maximum == 55

    def test_histogram_percentile_small_n_pins(self):
        # Regression pins for the small-N behavior: every percentile is
        # defined and deterministic down to a single sample.
        h1 = Histogram()
        h1.observe(5)
        assert (h1.p50, h1.p90, h1.p99) == (5, 5, 5)

        h2 = Histogram()
        for x in (1, 3):
            h2.observe(x)
        assert h2.p50 == 2
        assert h2.p90 == pytest.approx(2.8)
        assert h2.p99 == pytest.approx(2.98)

        h3 = Histogram()
        for x in (10, 1, 2):  # insertion order must not matter
            h3.observe(x)
        assert h3.p50 == 2
        assert h3.p90 == pytest.approx(8.4)
        assert h3.p99 == pytest.approx(9.84)

    def test_histogram_percentile_edges_and_int_collapse(self):
        h = Histogram()
        for x in (1, 2, 3, 4, 5):
            h.observe(x)
        # q clamps into [0, 1]; extremes hit min/max exactly.
        assert h.percentile(0.0) == 1 and h.percentile(1.0) == 5
        assert h.percentile(-1.0) == 1 and h.percentile(2.0) == 5
        # Exact ranks collapse to plain ints (p50 of odd N is x[(n-1)/2]).
        assert h.p50 == 3 and isinstance(h.p50, int)
        # Interpolation landing on an integer also collapses.
        assert h.percentile(0.625) == 3.5  # h=2.5 between 3 and 4
        h2 = Histogram()
        for x in (2, 4):
            h2.observe(x)
        assert h2.p50 == 3 and isinstance(h2.p50, int)

    def test_histogram_percentiles_match_nearest_rank_on_exact_ranks(self):
        # The two conventions in the repo (Histogram interpolation,
        # analysis.stats nearest-rank) agree wherever (n-1)q is an
        # integer rank — e.g. every decile of 101 samples.
        from repro.analysis.stats import percentile

        h = Histogram()
        data = list(range(1, 102))
        for x in data:
            h.observe(x)
        for q in (0.0, 0.1, 0.25, 0.5, 0.9, 1.0):
            assert h.percentile(q) == percentile(data, q)

    def test_histogram_empty(self):
        h = Histogram()
        assert h.p50 is None and h.mean is None and h.total == 0
        assert h.tail_probability(3) is None

    def test_histogram_tail_probability(self):
        h = Histogram()
        for x in (1, 2, 3, 4):
            h.observe(x)
        assert h.tail_probability(2) == 0.5
        assert h.tail_probability(0) == 1.0
        assert h.tail_probability(4) == 0.0

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1, 3)
        b.observe(1)
        b.observe(2)
        a.merge(b)
        assert a.counts == {1: 4, 2: 1}
        assert a.total == 5


class TestRegistryOnRuns:
    def test_counters_match_run_result(self):
        result, reg = run_with_registry(TwoProcessProtocol(), ("a", "b"))
        assert reg.counters["steps"].value == result.total_steps
        assert reg.counters["coin_flips"].value == sum(
            result.coin_flips.values())
        assert reg.counters["decisions"].value == len(result.decisions)
        assert reg.counters["runs"].value == 1
        assert reg.counters["runs_completed"].value == 1
        assert reg.counters["sched_consults"].value == result.sched_consults
        assert (reg.counters["reads"].value + reg.counters["writes"].value
                == result.total_steps)

    def test_steps_to_decide_histogram_matches(self):
        result, reg = run_with_registry(TwoProcessProtocol(), ("a", "b"),
                                        seed=5)
        hist = reg.histograms["steps_to_decide"]
        assert hist.total == len(result.decision_activation)
        assert sorted(
            v for v, c in hist.counts.items() for _ in range(c)
        ) == sorted(result.decision_activation.values())

    def test_num_depth_observed_for_three_processor(self):
        result, reg = run_with_registry(ThreeUnboundedProtocol(),
                                        ("a", "b", "a"), seed=3)
        assert result.completed
        assert reg.gauges["max_num_depth"].maximum >= 1
        assert reg.histograms["num_depth"].total == \
            reg.counters["writes"].value

    def test_no_num_depth_for_two_processor(self):
        _, reg = run_with_registry(TwoProcessProtocol(), ("a", "b"))
        assert "num_depth" not in reg.histograms
        assert "max_num_depth" not in reg.gauges

    def test_register_contention_counts_unread_overwrites(self):
        # P0 writes its register twice in a row: the first value was
        # never read by anyone, so the second write is contention.
        reg = MetricsRegistry()
        reg.on_run_start("t", 2, ("a", "b"))
        reg.on_write(0, "r0", "x")
        reg.on_write(0, "r0", "y")
        assert reg.counters["register_contention"].value == 1
        reg.on_read(1, "r0", "y")
        reg.on_write(0, "r0", "z")
        assert reg.counters["register_contention"].value == 1

    def test_batch_aggregation_across_runs(self):
        reg = MetricsRegistry()
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=11,
            sinks=(reg,),
        )
        stats = runner.run_many(25, max_steps=4000)
        assert stats.metrics is reg
        assert reg.counters["runs"].value == 25
        assert reg.counters["runs_completed"].value == 25
        assert reg.histograms["steps_to_decide"].total == 50
        assert reg.counters["steps"].value == sum(
            r.total_steps for r in stats.runs)
        assert stats.metrics_dict()["counters"]["runs"] == 25

    def test_registry_merge_equals_single_batch(self):
        def batch(reg, lo, hi):
            runner = ExperimentRunner(
                protocol_factory=lambda: TwoProcessProtocol(),
                scheduler_factory=lambda rng: RandomScheduler(rng),
                inputs_factory=lambda i, rng: ("a", "b"),
                seed=9,
                sinks=(reg,),
            )
            for i in range(lo, hi):
                runner.run_one(i, max_steps=4000)

        whole = MetricsRegistry()
        batch(whole, 0, 20)
        left, right = MetricsRegistry(), MetricsRegistry()
        batch(left, 0, 10)
        batch(right, 10, 20)
        left.merge(right)
        assert left.to_dict() == whole.to_dict()

    def test_render_mentions_percentiles(self):
        _, reg = run_with_registry(TwoProcessProtocol(), ("a", "b"))
        text = reg.render()
        assert "p50" in text and "p99" in text
        assert "steps_to_decide" in text

    def test_custom_instruments(self):
        reg = MetricsRegistry()
        reg.counter("mine").inc(3)
        assert reg.counter("mine").value == 3
        reg.histogram("h").observe(4)
        assert reg.histogram("h").p50 == 4
        d = reg.to_dict()
        assert d["counters"]["mine"] == 3
        assert d["histograms"]["h"]["count"] == 1


class TestMergeEdgeCases:
    """Shard-merge semantics the parallel engine relies on."""

    @staticmethod
    def copy(reg: MetricsRegistry) -> MetricsRegistry:
        import pickle

        return pickle.loads(pickle.dumps(reg))

    def test_merge_empty_into_populated_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(2, 4)
        before = reg.to_dict()
        reg.merge(MetricsRegistry())
        assert reg.to_dict() == before

    def test_merge_populated_into_empty_copies_aggregates(self):
        src = MetricsRegistry()
        src.counter("c").inc(3)
        src.gauge("g").set(5)
        src.gauge("g").set(1)
        src.histogram("h").observe(2, 4)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.to_dict() == src.to_dict()

    def test_merge_disjoint_histogram_keys(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("steps").observe(1, 10)
        b.histogram("steps").observe(100, 2)
        b.histogram("only_b").observe(7)
        a.merge(b)
        assert a.histograms["steps"].counts == {1: 10, 100: 2}
        assert a.histograms["steps"].total == 12
        assert a.histograms["steps"].mean == pytest.approx(210 / 12)
        assert a.histograms["only_b"].counts == {7: 1}

    def test_gauge_conflicts_take_last_writer_in_shard_order(self):
        # Shard 0 leaves value=3, shard 1 leaves value=9: merged in
        # shard order the batch-final value is shard 1's, exactly what
        # a serial pass over runs 0..N-1 would have left.
        shard0, shard1 = MetricsRegistry(), MetricsRegistry()
        shard0.gauge("depth").set(7)
        shard0.gauge("depth").set(3)
        shard1.gauge("depth").set(9)
        merged = MetricsRegistry()
        merged.merge(shard0)
        merged.merge(shard1)
        g = merged.gauges["depth"]
        assert g.value == 9
        assert g.minimum == 3 and g.maximum == 9

    def test_gauge_conflict_with_silent_last_shard(self):
        # The last shard never touched the gauge: serial would keep the
        # earlier shard's value, and so must the merge (None is not a
        # write).
        shard0, shard1 = MetricsRegistry(), MetricsRegistry()
        shard0.gauge("depth").set(4)
        shard1.counter("steps").inc()
        merged = MetricsRegistry()
        merged.merge(shard0)
        merged.merge(shard1)
        assert merged.gauges["depth"].value == 4

    def test_merge_is_associative(self):
        shards = []
        for spec in ((("c", 2), ("g", 5), ("h", 1)),
                     (("c", 7), ("g", 1), ("h", 9)),
                     (("c", 1), ("other", 3), ("h", 1))):
            reg = MetricsRegistry()
            (cname, cn), (gname, gv), (hname, hv) = spec
            reg.counter(cname).inc(cn)
            reg.gauge(gname).set(gv)
            reg.histogram(hname).observe(hv)
            shards.append(reg)
        a, b, c = shards

        left = self.copy(a)
        left.merge(b)
        left.merge(c)

        bc = self.copy(b)
        bc.merge(c)
        right = self.copy(a)
        right.merge(bc)

        assert left.to_dict() == right.to_dict()

    def test_merge_does_not_mutate_source(self):
        src = MetricsRegistry()
        src.counter("c").inc(2)
        src.histogram("h").observe(1)
        snapshot = src.to_dict()
        dst = MetricsRegistry()
        dst.counter("c").inc(1)
        dst.merge(src)
        assert src.to_dict() == snapshot


class TestReportingIntegration:
    def test_batch_metrics_carries_observability_block(self):
        from repro.analysis.reporting import batch_metrics, record_batch

        reg = MetricsRegistry()
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=2,
            sinks=(reg,),
        )
        stats = runner.run_many(10, max_steps=4000)
        metrics = batch_metrics(stats)
        assert metrics["observability"]["counters"]["runs"] == 10
        record = record_batch("exp", "two", "random", "a,b", 2, stats)
        assert "observability" in record.metrics

    def test_plain_batch_has_no_observability_block(self):
        from repro.analysis.reporting import batch_metrics

        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=2,
        )
        stats = runner.run_many(5, max_steps=4000)
        assert "observability" not in batch_metrics(stats)

"""Tests for the error hierarchy, public API surface, and repo hygiene."""

from __future__ import annotations

import pathlib

import pytest

import repro
from repro.errors import (
    AccessViolation,
    ExplorationLimitError,
    ProtocolError,
    RegisterSemanticsError,
    ReproError,
    SimulationError,
    VerificationError,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (ProtocolError, AccessViolation, SimulationError,
                    VerificationError, ExplorationLimitError,
                    RegisterSemanticsError):
            assert issubclass(exc, ReproError)

    def test_one_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise AccessViolation("nope")

    def test_exploration_limit_carries_partial_progress(self):
        err = ExplorationLimitError("budget", states_explored=123)
        assert err.states_explored == 123


class TestPublicApi:
    def test_dunder_all_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_headline_quickstart_from_docstring(self):
        # The module docstring's example must keep working verbatim.
        from repro import TwoProcessProtocol, solve

        outcome = solve(TwoProcessProtocol(), ["a", "b"], seed=1)
        assert outcome.consistent and outcome.value in ("a", "b")

    def test_subpackages_importable(self):
        import repro.apps
        import repro.analysis
        import repro.checker
        import repro.core
        import repro.msgpass
        import repro.registers
        import repro.sched
        import repro.sim  # noqa: F401


class TestRepositoryHygiene:
    """Documentation claims that can rot are tested like code."""

    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "LICENSE", "docs/MODEL.md", "docs/PROTOCOLS.md",
                     "docs/VERIFICATION.md"):
            assert (ROOT / name).is_file(), name

    def test_design_names_existing_bench_files(self):
        text = (ROOT / "DESIGN.md").read_text()
        import re

        for match in re.finditer(r"benchmarks/([a-z_0-9]+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).is_file(), (
                match.group(0)
            )

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        import re

        for match in re.finditer(r"examples/([a-z_0-9]+\.py)", text):
            assert (ROOT / "examples" / match.group(1)).is_file(), (
                match.group(0)
            )

    def test_findings_cross_referenced(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for finding in ("F1", "F2", "F3", "F4", "F5"):
            assert f"### {finding}" in experiments, finding

    def test_every_source_module_has_a_docstring(self):
        import ast

        for path in (ROOT / "src").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a docstring"

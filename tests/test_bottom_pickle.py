"""Regression tests: the ⊥ singleton survives serialization boundaries.

Weak-memory legal-value sets carry ⊥ (the initial register value) and
flow through ``parallel/`` spawn workers, journal payloads, and model
snapshots.  Code all over the tree compares against ``BOTTOM`` with
``is``, so ⊥ must round-trip pickling as the *same object*, not a
lookalike — that is what ``_Bottom.__reduce__`` guarantees.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle

import pytest

from repro.sim.ops import BOTTOM, _Bottom


def _worker_checks_identity(payload):
    """Spawn-worker body: is the shipped object *the* local singleton?

    Module-level so the spawn pickler can ship it by reference.
    """
    from repro.sim.ops import BOTTOM as worker_bottom

    obj, nested = payload
    return obj is worker_bottom and nested[1][0] is worker_bottom


class TestBottomIdentity:
    @pytest.mark.parametrize("protocol",
                             range(pickle.HIGHEST_PROTOCOL + 1))
    def test_pickle_round_trip_is_identity(self, protocol):
        clone = pickle.loads(pickle.dumps(BOTTOM, protocol=protocol))
        assert clone is BOTTOM

    def test_pickle_inside_containers(self):
        choices = (BOTTOM, "a", ("nested", BOTTOM))
        clone = pickle.loads(pickle.dumps(choices))
        assert clone[0] is BOTTOM
        assert clone[2][1] is BOTTOM

    def test_copy_and_deepcopy_are_identity(self):
        assert copy.copy(BOTTOM) is BOTTOM
        assert copy.deepcopy(BOTTOM) is BOTTOM
        assert copy.deepcopy({"k": [BOTTOM]})["k"][0] is BOTTOM

    def test_reduce_names_the_module_global(self):
        # Pickle-by-reference: __reduce__ returns the global's name, so
        # every unpickle resolves to repro.sim.ops.BOTTOM itself.
        assert BOTTOM.__reduce__() == "BOTTOM"

    def test_constructor_is_also_the_singleton(self):
        # Belt and braces: __new__ enforces the singleton too, so even
        # code that bypasses the global cannot mint a second ⊥.
        assert _Bottom() is BOTTOM

    def test_spawn_worker_receives_the_same_instance(self):
        ctx = multiprocessing.get_context("spawn")
        payload = (BOTTOM, ("x", (BOTTOM, "y")))
        with ctx.Pool(1) as pool:
            assert pool.apply(_worker_checks_identity, (payload,))

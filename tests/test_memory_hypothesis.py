"""Hypothesis properties for the memory-semantics layer.

The refactor's no-behavior-change invariant, checked independently of
the fast-vs-reference differential suite: under :class:`AtomicMemory`
the legal-read-value set is *always* a singleton equal to the last
written value — first as a direct property of the model driven by
arbitrary operation sequences, then end-to-end through the kernel on
randomly generated table-driven automata.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from test_kernel_fastpath import TableAutomaton, automaton_specs

from repro.obs.hooks import BaseSink
from repro.sched.simple import RandomScheduler
from repro.sim.config import RegisterLayout
from repro.sim.kernel import Simulation
from repro.sim.memory import AtomicMemory, RegularMemory
from repro.sim.ops import BOTTOM
from repro.sim.process import RegisterSpec
from repro.sim.rng import ReplayableRng

N_PIDS = 3


@st.composite
def memory_scripts(draw):
    """A register layout plus an arbitrary activate/write/read script."""
    n_regs = draw(st.integers(1, 4))
    values = st.sampled_from(["a", "b", 0, 1, BOTTOM])
    events = draw(st.lists(
        st.one_of(
            st.tuples(st.just("activate"), st.integers(0, N_PIDS - 1)),
            st.tuples(st.just("write"), st.integers(0, N_PIDS - 1),
                      st.integers(0, n_regs - 1), values),
            st.tuples(st.just("read"), st.integers(0, n_regs - 1)),
        ),
        max_size=60,
    ))
    return n_regs, events


def _build_layout(n_regs):
    everyone = tuple(range(N_PIDS))
    return RegisterLayout([
        RegisterSpec(name=f"r{i}", writers=everyone, readers=everyone,
                     initial=BOTTOM)
        for i in range(n_regs)
    ])


@settings(max_examples=100, deadline=None)
@given(script=memory_scripts())
def test_atomic_choices_are_singleton_last_write(script):
    n_regs, events = script
    mem = AtomicMemory(_build_layout(n_regs))
    shadow = [BOTTOM] * n_regs
    for event in events:
        if event[0] == "activate":
            mem.on_activate(event[1])
        elif event[0] == "write":
            _, pid, slot, value = event
            mem.write(pid, slot, value)
            shadow[slot] = value
        else:
            slot = event[1]
            assert mem.read_choices(slot) == (shadow[slot],)
    assert mem.values == shadow


@settings(max_examples=100, deadline=None)
@given(script=memory_scripts())
def test_regular_choices_contain_committed_first(script):
    """Sanity counterpart: weak sets lead with the committed value and
    only ever extend it with currently-pending writes on that slot."""
    n_regs, events = script
    mem = RegularMemory(_build_layout(n_regs))
    pending = {}  # writer pid -> (slot, value), mirror bookkeeping
    committed = [BOTTOM] * n_regs
    for event in events:
        if event[0] == "activate":
            pid = event[1]
            if pid in pending:
                slot, value = pending.pop(pid)
                committed[slot] = value
            mem.on_activate(pid)
        elif event[0] == "write":
            _, pid, slot, value = event
            # The kernel always activates before writing; mirror that
            # so the model's one-pending-per-writer invariant holds.
            if pid in pending:
                s, v = pending.pop(pid)
                committed[s] = v
            mem.on_activate(pid)
            mem.write(pid, slot, value)
            pending[pid] = (slot, value)
        else:
            slot = event[1]
            choices = mem.read_choices(slot)
            assert choices[0] == committed[slot]
            legal = {committed[slot]} | {
                v for (s, v) in pending.values() if s == slot
            }
            assert set(choices) == legal


class _ShadowSink(BaseSink):
    """Tracks last-written values and checks every read against them."""

    def __init__(self):
        self.shadow = {}
        self.mismatches = []

    def on_write(self, pid, register, value):
        self.shadow[register] = value

    def on_read(self, pid, register, value):
        expected = self.shadow.get(register, BOTTOM)
        if value != expected:
            self.mismatches.append((register, value, expected))


@settings(max_examples=60, deadline=None)
@given(spec=automaton_specs(), seed=st.integers(0, 2 ** 32))
def test_random_automata_atomic_reads_return_last_write(spec, seed):
    protocol = TableAutomaton(spec)
    inputs = tuple(i % 2 for i in range(protocol.n_processes))
    sink = _ShadowSink()
    rng = ReplayableRng(seed)
    sim = Simulation(protocol, inputs,
                     RandomScheduler(rng.child("sched")),
                     rng.child("kernel"), sinks=(sink,), memory="atomic")
    result = sim.run(300)
    assert sink.mismatches == []
    assert result.read_resolutions == 0
    assert result.memory == "atomic"

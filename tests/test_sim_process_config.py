"""Tests for the automaton interface helpers and configurations."""

from __future__ import annotations

import pytest

from repro.core.two_process import TwoProcessProtocol
from repro.errors import ProtocolError
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.process import (
    Branch,
    RegisterSpec,
    biased_coin,
    deterministic,
    fair_coin,
)


class TestOps:
    def test_bottom_is_singleton(self):
        from repro.sim.ops import _Bottom

        assert _Bottom() is BOTTOM
        assert repr(BOTTOM) == "⊥"

    def test_ops_are_hashable_and_frozen(self):
        r = ReadOp("r0")
        w = WriteOp("r0", "a")
        assert hash(r) != hash(w) or r != w
        with pytest.raises(Exception):
            r.register = "r1"

    def test_op_kinds(self):
        assert ReadOp("x").kind == "read"
        assert WriteOp("x", 1).kind == "write"


class TestBranchHelpers:
    def test_deterministic_single_branch(self):
        (b,) = deterministic(ReadOp("r"))
        assert b.probability == 1.0

    def test_fair_coin_probabilities(self):
        h, t = fair_coin(WriteOp("r", 1), WriteOp("r", 0))
        assert h.probability == t.probability == 0.5

    def test_biased_coin(self):
        h, t = biased_coin(0.25, WriteOp("r", 1), WriteOp("r", 0))
        assert h.probability == 0.25 and t.probability == 0.75

    def test_biased_coin_rejects_degenerate(self):
        with pytest.raises(ValueError):
            biased_coin(0.0, ReadOp("r"), ReadOp("r"))
        with pytest.raises(ValueError):
            biased_coin(1.0, ReadOp("r"), ReadOp("r"))

    def test_validate_branches_rejects_bad_sums(self):
        protocol = TwoProcessProtocol()
        with pytest.raises(ProtocolError):
            protocol.validate_branches(
                (Branch(0.5, ReadOp("r")), Branch(0.3, ReadOp("r")))
            )
        with pytest.raises(ProtocolError):
            protocol.validate_branches(())


class TestRegisterSpec:
    def test_requires_readers_and_writers(self):
        with pytest.raises(ValueError):
            RegisterSpec(name="r", writers=(), readers=(1,), initial=None)
        with pytest.raises(ValueError):
            RegisterSpec(name="r", writers=(0,), readers=(), initial=None)


class TestRegisterLayout:
    def make_layout(self):
        return RegisterLayout([
            RegisterSpec("x", writers=(0,), readers=(1,), initial=BOTTOM),
            RegisterSpec("y", writers=(1,), readers=(0, 2), initial=7),
        ])

    def test_initial_values(self):
        layout = self.make_layout()
        assert layout.initial_values() == (BOTTOM, 7)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RegisterLayout([
                RegisterSpec("x", writers=(0,), readers=(1,), initial=None),
                RegisterSpec("x", writers=(1,), readers=(0,), initial=None),
            ])

    def test_spec_lookup(self):
        layout = self.make_layout()
        assert layout.spec_of("y").initial == 7
        assert layout.index_of("x") == 0


class TestConfiguration:
    def test_initial_configuration(self):
        protocol = TwoProcessProtocol()
        layout = RegisterLayout.for_protocol(protocol)
        config = Configuration.initial(protocol, layout, ("a", "b"))
        assert config.registers == (BOTTOM, BOTTOM)
        assert config.states[0].pref == "a"
        assert config.decisions(protocol) == {}

    def test_with_state_and_register_are_persistent(self):
        protocol = TwoProcessProtocol()
        layout = RegisterLayout.for_protocol(protocol)
        c0 = Configuration.initial(protocol, layout, ("a", "b"))
        c1 = c0.with_register(0, "a")
        assert c0.registers[0] is BOTTOM  # original untouched
        assert c1.registers[0] == "a"
        c2 = c1.with_state(1, c1.states[0])
        assert c2.states[1] == c1.states[0]
        assert c1.states[1] != c2.states[1]

    def test_hashable_and_equal_by_value(self):
        protocol = TwoProcessProtocol()
        layout = RegisterLayout.for_protocol(protocol)
        c0 = Configuration.initial(protocol, layout, ("a", "b"))
        c1 = Configuration.initial(protocol, layout, ("a", "b"))
        assert c0 == c1 and hash(c0) == hash(c1)
        assert len({c0, c1}) == 1

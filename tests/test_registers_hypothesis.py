"""Property-based tests (hypothesis) for the register substrate."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.registers.conditions import (
    check_atomic,
    check_atomic_bruteforce,
    check_regular,
    check_safe,
)
from repro.registers.history import History, Interval
from repro.registers.workload import run_register_workload


# ----------------------------------------------------------------------
# Random single-writer histories: checker lattice + oracle agreement
# ----------------------------------------------------------------------

@st.composite
def single_writer_histories(draw):
    """A random single-writer history with distinct written values."""
    n_writes = draw(st.integers(min_value=1, max_value=4))
    history = History(initial=0)
    t = 1
    writes = []
    for i in range(1, n_writes + 1):
        start = t + draw(st.integers(0, 2))
        end = start + draw(st.integers(1, 4))
        history.record(Interval(kind="write", value=i, thread="W",
                                invoke=start, respond=end))
        writes.append(i)
        t = end + 1 + draw(st.integers(0, 2))
    horizon = t + 5
    for r in range(draw(st.integers(1, 4))):
        start = draw(st.integers(1, horizon))
        end = start + draw(st.integers(1, 5))
        value = draw(st.sampled_from([0] + writes))
        history.record(Interval(kind="read", value=value,
                                thread=f"R{r % 2}",
                                invoke=start, respond=end))
    return history


@settings(max_examples=150, deadline=None)
@given(single_writer_histories())
def test_checker_lattice(history):
    """atomic ⊆ regular ⊆ safe on single-writer histories."""
    atomic = check_atomic(history).ok
    regular = check_regular(history).ok
    safe = check_safe(history).ok
    if atomic:
        assert regular
    if regular:
        assert safe


@settings(max_examples=150, deadline=None)
@given(single_writer_histories())
def test_fast_checker_agrees_with_bruteforce(history):
    fast = check_atomic(history).ok
    brute = check_atomic_bruteforce(history).ok
    assert fast == brute, history.render()


# ----------------------------------------------------------------------
# Constructions under randomized workload shapes
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2 ** 32),
    n_writes=st.integers(2, 10),
    n_reads=st.integers(2, 10),
)
def test_srsw_atomic_construction_any_workload(seed, n_writes, n_reads):
    report = run_register_workload("srsw-atomic", seed=seed,
                                   n_writes=n_writes, n_readers=1,
                                   n_reads=n_reads)
    assert report.atomic.ok, report.atomic.render()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2 ** 32),
    n_readers=st.integers(2, 4),
)
def test_mrsw_atomic_construction_any_readers(seed, n_readers):
    report = run_register_workload("mrsw-atomic", seed=seed,
                                   n_readers=n_readers, n_reads=4)
    assert report.atomic.ok, report.atomic.render()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 32), n_writes=st.integers(2, 12))
def test_unary_regular_construction_any_workload(seed, n_writes):
    report = run_register_workload("unary-regular", seed=seed,
                                   n_writes=n_writes)
    assert report.regular.ok, report.regular.render()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 32))
def test_regular_from_safe_any_workload(seed):
    report = run_register_workload("regular-from-safe", seed=seed)
    assert report.regular.ok, report.regular.render()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 32))
def test_histories_are_well_formed(seed):
    report = run_register_workload("atomic-cell", seed=seed)
    history = report.history
    assert history.writes_are_sequential()
    assert history.writes_are_unique()
    for op in history:
        assert op.invoke < op.respond

"""Live telemetry tests: emitter cadence, file transport, renderer.

The telemetry feed is observability, not science — so these tests pin
the *protocol* (when beats fire, what they carry, how partial files are
tolerated) with a fake clock, and separately check that real serial and
parallel sweeps produce a complete, readable feed.
"""

from __future__ import annotations

import json

from repro.core.two_process import TwoProcessProtocol
from repro.obs.telemetry import (
    Heartbeat,
    TelemetryEmitter,
    file_sink,
    latest_by_shard,
    read_telemetry,
    render_top,
)
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.25
        return self.t


def make_runner(seed=9):
    return ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
    )


class TestEmitter:
    def test_stride_and_final_beat(self):
        beats = []
        emitter = TelemetryEmitter(3, 20, beats.append, every=5,
                                   clock=FakeClock())
        for _ in range(20):
            emitter.record_run(total_steps=10)
        emitter.finish()
        # Beats at 5, 10, 15 — never at runs_total — plus the final.
        assert [b["runs_done"] for b in beats] == [5, 10, 15, 20]
        assert [b["done"] for b in beats] == [False, False, False, True]
        assert all(b["shard"] == 3 for b in beats)
        assert beats[-1]["steps"] == 200
        assert beats[-1]["eta_s"] is None
        assert all(b["eta_s"] > 0 for b in beats[:-1])

    def test_default_stride_is_one_percent(self):
        beats = []
        emitter = TelemetryEmitter(0, 500, beats.append,
                                   clock=FakeClock())
        for _ in range(500):
            emitter.record_run(total_steps=1)
        emitter.finish()
        assert emitter._every == 5
        assert len(beats) == 100  # 99 stride beats + the final one

    def test_tiny_shard_reports_exactly_once(self):
        beats = []
        emitter = TelemetryEmitter(0, 1, beats.append, clock=FakeClock())
        emitter.record_run(total_steps=7)
        emitter.finish()
        assert len(beats) == 1
        assert beats[0]["done"] is True
        assert beats[0]["runs_done"] == 1

    def test_tail_carries_percentiles_and_delta(self):
        beats = []
        emitter = TelemetryEmitter(0, 6, beats.append, every=3,
                                   clock=FakeClock())
        for steps in (10, 20, 30, 40, 50, 60):
            emitter.record_run(total_steps=steps)
        emitter.finish()
        first, last = beats[0]["tail"], beats[-1]["tail"]
        assert first["max"] == 30 and first["new"] == 3
        assert last["max"] == 60 and last["new"] == 3
        assert first["p50"] == 20
        assert set(last) == {"p50", "p90", "p99", "max", "new"}

    def test_heartbeat_json_round_trip(self):
        beats = []
        emitter = TelemetryEmitter(2, 4, beats.append, every=2,
                                   clock=FakeClock())
        for _ in range(4):
            emitter.record_run(total_steps=5)
        emitter.finish()
        for d in beats:
            beat = Heartbeat.from_dict(json.loads(json.dumps(d)))
            assert beat.to_dict() == d


class TestFileTransport:
    def test_file_sink_then_read_telemetry(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as fh:
            emitter = TelemetryEmitter(1, 10, file_sink(fh), every=4,
                                       clock=FakeClock())
            for _ in range(10):
                emitter.record_run(total_steps=3)
            emitter.finish()
        beats = read_telemetry(path)
        assert [b.runs_done for b in beats] == [4, 8, 10]
        assert beats[-1].done

    def test_partial_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = Heartbeat(shard=0, runs_done=5, runs_total=10, steps=50,
                         elapsed_s=1.0, steps_per_s=50.0, eta_s=1.0,
                         done=False, tail={}).to_dict()
        path.write_text(json.dumps(good) + "\n" + '{"shard": 1, "run')
        beats = read_telemetry(str(path))
        assert len(beats) == 1
        assert beats[0].runs_done == 5

    def test_latest_by_shard_keeps_file_order(self):
        def beat(shard, runs_done, done=False):
            return Heartbeat(shard=shard, runs_done=runs_done,
                             runs_total=10, steps=0, elapsed_s=1.0,
                             steps_per_s=0.0, eta_s=None, done=done,
                             tail={})
        latest = latest_by_shard(
            [beat(0, 2), beat(1, 3), beat(0, 7, done=True)])
        assert latest[0].runs_done == 7 and latest[0].done
        assert latest[1].runs_done == 3


class TestRenderTop:
    def test_empty_feed(self):
        assert render_top([]) == "(no heartbeats yet)"

    def test_rows_and_footer(self):
        beats = [
            Heartbeat(shard=0, runs_done=10, runs_total=10, steps=400,
                      elapsed_s=2.0, steps_per_s=200.0, eta_s=None,
                      done=True,
                      tail={"p50": 40, "p90": 44, "p99": 44.5,
                            "max": 50, "new": 2}),
            Heartbeat(shard=1, runs_done=5, runs_total=10, steps=150,
                      elapsed_s=2.0, steps_per_s=75.0, eta_s=90.0,
                      done=False,
                      tail={"p50": 30, "p90": 33, "p99": 33.9,
                            "max": 35, "new": 5}),
        ]
        text = render_top(beats)
        lines = text.splitlines()
        assert len(lines) == 4  # header, two shards, footer
        assert "done" in lines[1] and "running" in lines[2]
        assert "1.5m" in lines[2]  # formatted ETA
        assert "33.9" in lines[2]  # float p99 rendered tersely
        assert lines[3].lstrip().startswith("all")
        assert "15/20" in lines[3]
        assert "550 steps total" in lines[3]


class TestSweepIntegration:
    def test_serial_run_many_writes_complete_feed(self, tmp_path):
        path = str(tmp_path / "serial.jsonl")
        stats = make_runner().run_many(8, max_steps=4000,
                                       telemetry_path=path)
        beats = read_telemetry(path)
        assert beats and beats[-1].done
        assert beats[-1].shard == 0
        assert beats[-1].runs_done == 8
        assert beats[-1].steps == sum(r.total_steps for r in stats.runs)
        assert "done" in render_top(beats)

    def test_parallel_sweep_all_shards_report_done(self, tmp_path):
        from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                          SchedulerSpec)

        path = str(tmp_path / "par.jsonl")
        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=9,
        )
        runner.run_many(9, max_steps=4000, workers=2,
                        shard_size=3, telemetry_path=path,
                        mp_context="fork")
        latest = latest_by_shard(read_telemetry(path))
        assert sorted(latest) == [0, 1, 2]
        assert all(b.done for b in latest.values())
        assert sum(b.runs_done for b in latest.values()) == 9
        assert all(b.runs_total == 3 for b in latest.values())

    def test_telemetry_does_not_perturb_results(self, tmp_path):
        plain = make_runner().run_many(6, max_steps=4000)
        with_feed = make_runner().run_many(
            6, max_steps=4000,
            telemetry_path=str(tmp_path / "t.jsonl"))
        assert [r.decisions for r in plain.runs] == \
            [r.decisions for r in with_feed.runs]
        assert [r.total_steps for r in plain.runs] == \
            [r.total_steps for r in with_feed.runs]

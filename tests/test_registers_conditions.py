"""Tests for the register-history semantic checkers."""

from __future__ import annotations

import pytest

from repro.registers.conditions import (
    check_atomic,
    check_atomic_bruteforce,
    check_regular,
    check_safe,
)
from repro.registers.history import History, Interval


def h(initial=0):
    return History(initial=initial)


def W(value, invoke, respond, thread="W"):
    return Interval(kind="write", value=value, thread=thread,
                    invoke=invoke, respond=respond)


def R(value, invoke, respond, thread="R0"):
    return Interval(kind="read", value=value, thread=thread,
                    invoke=invoke, respond=respond)


class TestIntervalBasics:
    def test_must_take_time(self):
        with pytest.raises(ValueError):
            Interval(kind="read", value=0, thread="R", invoke=5, respond=5)

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Interval(kind="rmw", value=0, thread="R", invoke=1, respond=2)

    def test_precedes_and_overlaps(self):
        a, b = R(0, 1, 2), R(0, 3, 4)
        assert a.precedes(b) and not b.precedes(a)
        c = R(0, 2, 3)
        assert a.overlaps(c) and c.overlaps(b)


class TestSequentialHistories:
    def test_simple_correct_history_is_atomic(self):
        hist = h()
        hist.record(W(1, 1, 2))
        hist.record(R(1, 3, 4))
        hist.record(W(2, 5, 6))
        hist.record(R(2, 7, 8))
        assert check_safe(hist).ok
        assert check_regular(hist).ok
        assert check_atomic(hist).ok
        assert check_atomic_bruteforce(hist).ok

    def test_initial_value_readable(self):
        hist = h(initial=9)
        hist.record(R(9, 1, 2))
        assert check_atomic(hist).ok

    def test_wrong_quiescent_read_fails_safe(self):
        hist = h()
        hist.record(W(1, 1, 2))
        hist.record(R(0, 3, 4))  # stale: no overlap, must return 1
        assert not check_safe(hist).ok
        assert not check_regular(hist).ok

    def test_overlapping_writes_unchecked(self):
        hist = h()
        hist.record(W(1, 1, 5))
        hist.record(W(2, 2, 6))
        assert not check_regular(hist).ok
        assert "overlap" in check_regular(hist).violations[0]


class TestRegularity:
    def test_overlapping_read_may_return_old(self):
        hist = h()
        hist.record(W(1, 2, 6))
        hist.record(R(0, 3, 4))  # inside the write: old value OK
        assert check_regular(hist).ok

    def test_overlapping_read_may_return_new(self):
        hist = h()
        hist.record(W(1, 2, 6))
        hist.record(R(1, 3, 4))
        assert check_regular(hist).ok

    def test_overlapping_read_may_not_invent(self):
        hist = h()
        hist.record(W(1, 2, 6))
        hist.record(R(7, 3, 4))
        assert not check_regular(hist).ok

    def test_safe_allows_garbage_under_overlap(self):
        hist = h()
        hist.record(W(1, 2, 6))
        hist.record(R(7, 3, 4))  # garbage, but overlapping: safe is fine
        assert check_safe(hist).ok


class TestAtomicity:
    def new_old_inversion_history(self):
        # w1 then w2 overlapping two sequential reads: first read sees
        # the new value, second (later) read sees the old one.
        hist = h()
        hist.record(W(1, 1, 2))
        hist.record(W(2, 3, 10))
        hist.record(R(2, 4, 5))   # new
        hist.record(R(1, 6, 7))   # then old — inversion
        return hist

    def test_new_old_inversion_is_regular_but_not_atomic(self):
        hist = self.new_old_inversion_history()
        assert check_regular(hist).ok
        assert not check_atomic(hist).ok
        assert "inversion" in check_atomic(hist).violations[0]

    def test_bruteforce_agrees_on_inversion(self):
        hist = self.new_old_inversion_history()
        assert not check_atomic_bruteforce(hist).ok

    def test_concurrent_reads_may_disagree(self):
        # Two overlapping reads during a write may split old/new freely.
        hist = h()
        hist.record(W(1, 1, 2))
        hist.record(W(2, 3, 10))
        hist.record(R(2, 4, 6))
        hist.record(R(1, 5, 7))  # overlaps the other read: no inversion
        assert check_atomic(hist).ok
        assert check_atomic_bruteforce(hist).ok

    def test_atomicity_requires_unique_writes(self):
        hist = h()
        hist.record(W(1, 1, 2))
        hist.record(W(1, 3, 4))
        hist.record(R(1, 5, 6))
        result = check_atomic(hist)
        assert not result.ok and "distinct" in result.violations[0]

    def test_read_from_the_future_rejected(self):
        hist = h()
        hist.record(R(1, 1, 2))   # reads 1 before anyone wrote it
        hist.record(W(1, 3, 4))
        assert not check_regular(hist).ok
        assert not check_atomic_bruteforce(hist).ok

    def test_bruteforce_cap(self):
        hist = h()
        for i in range(1, 9):
            hist.record(W(i, 2 * i, 2 * i + 1))
        with pytest.raises(ValueError):
            check_atomic_bruteforce(hist, max_ops=4)


class TestCrossValidation:
    """The fast single-writer checker and the brute-force linearization
    search must agree on randomized small histories."""

    def test_random_histories_agree(self):
        import random

        rng = random.Random(7)
        agreements = 0
        for _trial in range(120):
            hist = h()
            t = 1
            writes = []
            for i in range(1, rng.randint(2, 4)):
                start = t + rng.randint(0, 2)
                end = start + rng.randint(1, 4)
                hist.record(W(i, start, end))
                writes.append(i)
                t = end + rng.randint(0, 2) + 1
            n_reads = rng.randint(1, 3)
            for _r in range(n_reads):
                start = rng.randint(1, t)
                end = start + rng.randint(1, 5)
                value = rng.choice([0] + writes)
                hist.record(
                    R(value, start, end, thread=f"R{rng.randint(0, 1)}")
                )
            if not hist.writes_are_sequential():
                continue
            fast = check_atomic(hist).ok
            brute = check_atomic_bruteforce(hist).ok
            assert fast == brute, f"disagree on:\n{hist.render()}"
            agreements += 1
        assert agreements >= 60  # enough checkable samples drawn

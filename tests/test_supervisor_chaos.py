"""Chaos suite for the fault-tolerant sweep supervisor.

The acceptance contract (docs/ROBUSTNESS.md): for every fault kind —
worker crash, raised exception, hang past the watchdog, corrupt
committed shard, fault-then-degrade — at multiple worker counts, a
supervised sweep completes and its deterministic artifacts (the
``RunStats`` list, the merged metrics snapshot, the journal bytes) are
**bit-identical** to the fault-free serial run.  That holds because
runs are pure functions of ``(root_seed, run_index)``; the supervisor
may only change *when and where* a shard executes, never what it
computes.

Quarantine is the one sanctioned deviation: the sweep still completes,
but ``runs`` omits the quarantined index ranges and the
:class:`FaultReport` names them exactly.

These tests prefer the ``fork`` start method where the platform offers
it (child startup is ~100x cheaper than ``spawn``, and the chaos
matrix launches many children); ``spawn`` coverage of the same code
path lives in tests/test_parallel.py and the crash-kill test.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.faults import FaultAction, FaultPlan
from repro.obs import MetricsRegistry
from repro.parallel import (BatchSpec, ConstantInputs, ProtocolSpec,
                            SchedulerSpec, SupervisorError,
                            SupervisorPolicy, run_supervised)
from repro.sim.runner import ExperimentRunner
from repro.store import RunStore

N_RUNS = 40
MAX_STEPS = 400
SEED = 321

MP = ("fork" if "fork" in multiprocessing.get_all_start_methods()
      else "spawn")

#: Fast, deterministic backoff for tests (the schedule, not the wait,
#: is what the suite verifies).
FAST = dict(backoff_base=0.001, backoff_cap=0.002)


def make_spec(seed=SEED):
    return BatchSpec(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=seed,
    )


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free serial truth: runs, metrics snapshot, journal bytes."""
    journal = str(tmp_path_factory.mktemp("base") / "journal.jsonl")
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        sinks=(registry,),
    )
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS,
                            journal_path=journal)
    with open(journal, "rb") as fh:
        journal_bytes = fh.read()
    return stats.runs, registry.to_dict(), journal_bytes


def assert_bit_identical(stats, registry, journal_path, baseline):
    base_runs, base_metrics, base_journal = baseline
    assert stats.runs == base_runs
    assert registry.to_dict() == base_metrics
    with open(journal_path, "rb") as fh:
        assert fh.read() == base_journal


def run_with(tmp_path, fault_plan=None, policy=None, workers=2,
             store=None, seed=SEED):
    registry = MetricsRegistry()
    journal = str(tmp_path / "journal.jsonl")
    stats = run_supervised(
        make_spec(seed), N_RUNS, MAX_STEPS, workers=workers,
        journal_path=journal, registry=registry, mp_context=MP,
        store=store, policy=policy, fault_plan=fault_plan,
    )
    return stats, registry, journal


# -- the chaos matrix: fault kind x worker count, all bit-identical ----

WORKER_COUNTS = (2, 4)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestChaosMatrix:
    def test_worker_crash(self, tmp_path, baseline, workers):
        plan = FaultPlan.build({(0, 0): FaultAction("crash")})
        stats, reg, journal = run_with(
            tmp_path, plan, SupervisorPolicy(**FAST), workers=workers)
        assert_bit_identical(stats, reg, journal, baseline)
        assert [e.kind for e in stats.faults.events] == ["crash"]
        assert stats.faults.n_retries == 1

    def test_raised_exception(self, tmp_path, baseline, workers):
        plan = FaultPlan.build({(1, 0): FaultAction("raise")})
        stats, reg, journal = run_with(
            tmp_path, plan, SupervisorPolicy(**FAST), workers=workers)
        assert_bit_identical(stats, reg, journal, baseline)
        assert [e.kind for e in stats.faults.events] == ["exception"]
        assert "InjectedFault" in stats.faults.events[0].detail

    def test_hang_past_shard_timeout(self, tmp_path, baseline, workers):
        plan = FaultPlan.build({(0, 0): FaultAction("hang", seconds=60)})
        policy = SupervisorPolicy(shard_timeout=1.5, **FAST)
        stats, reg, journal = run_with(tmp_path, plan, policy,
                                       workers=workers)
        assert_bit_identical(stats, reg, journal, baseline)
        assert [e.kind for e in stats.faults.events] == ["timeout"]

    def test_corrupt_committed_shard_heals_on_resume(
            self, tmp_path, baseline, workers):
        # Sweep 1 commits every shard, then an injected at-rest fault
        # damages one; sweep 2 (the resume) must detect, quarantine
        # the file, recompute the shard, and still match the baseline.
        store = RunStore(str(tmp_path / "store"))
        plan = FaultPlan.build({(0, 0): FaultAction("corrupt",
                                                    mode="bitflip")})
        first, _, _ = run_with(tmp_path, plan, SupervisorPolicy(**FAST),
                               workers=workers, store=store)
        assert [e.kind for e in first.faults.events] == ["corrupt"]
        assert any(not v.ok for v in store.verify())

        stats, reg, journal = run_with(tmp_path, workers=workers,
                                       store=store)
        assert_bit_identical(stats, reg, journal, baseline)
        assert [e.kind for e in stats.faults.events] == ["healed"]
        assert len(stats.faults.healed) == 1
        assert stats.store.hits == workers - 1
        assert stats.store.misses == 1
        assert all(v.ok for v in store.verify())

    def test_fault_then_degrade(self, tmp_path, baseline, workers):
        # Two consecutive faults walk the ladder fast -> reference;
        # the shard finally succeeds on the reference engine with
        # results identical to every other engine (they are
        # differentially verified).
        plan = FaultPlan.build({(0, 0): FaultAction("raise"),
                                (0, 1): FaultAction("crash")})
        policy = SupervisorPolicy(on_fault="degrade", max_retries=3,
                                  **FAST)
        stats, reg, journal = run_with(tmp_path, plan, policy,
                                       workers=workers)
        assert_bit_identical(stats, reg, journal, baseline)
        actions = [e.action for e in stats.faults.events]
        assert actions == ["retry@reference", "retry"]
        assert stats.faults.n_degradations == 1


# -- policy endpoints --------------------------------------------------

class TestPolicies:
    def test_fault_free_supervised_is_bit_identical(self, tmp_path,
                                                    baseline):
        stats, reg, journal = run_with(tmp_path)
        assert_bit_identical(stats, reg, journal, baseline)
        assert stats.faults is not None and stats.faults.ok
        assert stats.faults.n_faults == 0

    def test_quarantine_names_exact_ranges(self, tmp_path, baseline):
        # Shard 0 of a 2-worker sweep covers runs [0, 20); exhausting
        # its retries must quarantine exactly that range and nothing
        # else — the sweep completes with the other half intact.
        plan = FaultPlan.build(
            {(0, a): FaultAction("raise") for a in range(4)})
        policy = SupervisorPolicy(max_retries=2, **FAST)
        stats, reg, _ = run_with(tmp_path, plan, policy)
        base_runs, _, _ = baseline
        assert stats.faults.quarantined_ranges() == [(0, 20)]
        assert stats.faults.runs_missing == 20
        assert not stats.faults.ok
        assert stats.runs == base_runs[20:]
        assert [r.run_index for r in stats.runs] == list(range(20, 40))

    def test_on_fault_quarantine_gives_up_immediately(self, tmp_path):
        plan = FaultPlan.build({(1, 0): FaultAction("raise")})
        policy = SupervisorPolicy(on_fault="quarantine", **FAST)
        stats, _, _ = run_with(tmp_path, plan, policy)
        assert stats.faults.quarantined_ranges() == [(20, 40)]
        assert stats.faults.n_retries == 0

    def test_on_fault_fail_raises_with_diagnosis(self, tmp_path):
        plan = FaultPlan.build({(0, 0): FaultAction("crash")})
        policy = SupervisorPolicy(on_fault="fail")
        with pytest.raises(SupervisorError, match="shard 0.*crash"):
            run_with(tmp_path, plan, policy)

    def test_commit_fail_reexecutes_the_shard(self, tmp_path, baseline):
        # A failed durable write means work done, fact lost: the
        # supervisor discards the result and re-runs the shard; the
        # second commit lands and the merge is unaffected.
        store = RunStore(str(tmp_path / "store"))
        plan = FaultPlan.build({(1, 0): FaultAction("commit-fail")})
        stats, reg, journal = run_with(
            tmp_path, plan, SupervisorPolicy(**FAST), store=store)
        assert_bit_identical(stats, reg, journal, baseline)
        assert [(e.kind, e.action) for e in stats.faults.events] \
            == [("commit-fail", "retry")]
        assert all(v.ok for v in store.verify())
        assert len(store.verify()) == 2

    def test_scoped_plan_does_not_fire_on_other_sweeps(self, tmp_path,
                                                       baseline):
        plan = FaultPlan.build({(0, 0): FaultAction("raise")},
                               spec_hash="0" * 64)
        stats, reg, journal = run_with(tmp_path, plan,
                                       SupervisorPolicy(**FAST))
        assert_bit_identical(stats, reg, journal, baseline)
        assert stats.faults.n_faults == 0

    def test_backoff_is_deterministic_and_jitter_free(self):
        policy = SupervisorPolicy(backoff_base=0.05, backoff_cap=0.3)
        schedule = [policy.backoff(n) for n in range(1, 6)]
        assert schedule == [0.05, 0.1, 0.2, 0.3, 0.3]
        assert schedule == [policy.backoff(n) for n in range(1, 6)]
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff(0)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="on_fault"):
            SupervisorPolicy(on_fault="panic")
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="shard_timeout"):
            SupervisorPolicy(shard_timeout=0)


# -- run_many integration ----------------------------------------------

class TestRunManyIntegration:
    def test_supervise_flag_routes_and_reports(self, baseline):
        base_runs, base_metrics, _ = baseline
        registry = MetricsRegistry()
        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=SEED,
            sinks=(registry,),
        )
        stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS, workers=2,
                                mp_context=MP, supervise=True)
        assert stats.runs == base_runs
        assert registry.to_dict() == base_metrics
        assert stats.faults is not None and stats.faults.ok

    def test_fault_plan_alone_implies_supervision(self, baseline):
        base_runs, _, _ = baseline
        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=SEED,
        )
        plan = FaultPlan.build({(0, 0): FaultAction("raise")})
        stats = runner.run_many(
            N_RUNS, max_steps=MAX_STEPS, workers=2, mp_context=MP,
            fault_plan=plan,
            policy=SupervisorPolicy(**FAST))
        assert stats.runs == base_runs
        assert stats.faults.n_faults == 1

    def test_unsupervised_batches_have_no_fault_report(self):
        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=SEED,
        )
        stats = runner.run_many(10, max_steps=MAX_STEPS)
        assert stats.faults is None


# -- telemetry surface -------------------------------------------------

class TestFaultTelemetry:
    def test_fault_records_interleave_without_breaking_heartbeats(
            self, tmp_path):
        from repro.obs.telemetry import (read_fault_events,
                                         read_telemetry, render_top)

        telemetry = str(tmp_path / "top.jsonl")
        plan = FaultPlan.build({(0, 0): FaultAction("crash")})
        stats = run_supervised(
            make_spec(), N_RUNS, MAX_STEPS, workers=2,
            telemetry_path=telemetry, mp_context=MP,
            policy=SupervisorPolicy(**FAST), fault_plan=plan)
        assert stats.faults.n_faults == 1

        beats = read_telemetry(telemetry)
        assert beats, "heartbeats must survive interleaved fault records"
        events = read_fault_events(telemetry)
        assert [e["fault"] for e in events] == ["crash"]
        assert events[0]["shard"] == 0
        assert events[0]["action"] == "retry"

        table = render_top(beats, events)
        rows = table.splitlines()
        assert "faults" in rows[0]
        shard0 = next(r for r in rows if r.split()[0] == "0")
        shard1 = next(r for r in rows if r.split()[0] == "1")
        # The faults column sits right before the state column.
        assert shard0.split()[-2] == "1"
        assert shard1.split()[-2] == "0"

    def test_render_top_without_events_is_unchanged(self, tmp_path):
        from repro.obs.telemetry import read_telemetry, render_top

        telemetry = str(tmp_path / "top.jsonl")
        run_supervised(make_spec(), N_RUNS, MAX_STEPS, workers=2,
                       telemetry_path=telemetry, mp_context=MP)
        table = render_top(read_telemetry(telemetry))
        assert "faults" not in table.splitlines()[0]


# -- journal hygiene under quarantine ----------------------------------

class TestQuarantineHygiene:
    def test_quarantined_shard_leaves_no_journal_litter(self, tmp_path):
        plan = FaultPlan.build(
            {(0, a): FaultAction("raise") for a in range(3)})
        policy = SupervisorPolicy(max_retries=1, **FAST)
        journal = str(tmp_path / "journal.jsonl")
        stats = run_supervised(
            make_spec(), N_RUNS, MAX_STEPS, workers=2,
            journal_path=journal, mp_context=MP,
            policy=policy, fault_plan=plan)
        assert not stats.faults.ok
        leftovers = [n for n in os.listdir(tmp_path)
                     if ".shard" in n]
        assert leftovers == []
        # The stitched journal covers only the surviving shard.
        with open(journal) as fh:
            lines = fh.readlines()
        assert len(lines) == (stats.journal_events or 0)

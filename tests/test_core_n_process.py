"""Tests for the n-processor generalization."""

from __future__ import annotations

import pytest

from repro.checker import verify_safety
from repro.core.n_process import NProcessProtocol
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import FixedScheduler, RandomScheduler, RoundRobinScheduler
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


class TestConstruction:
    def test_rejects_tiny_systems(self):
        with pytest.raises(ValueError):
            NProcessProtocol(1)

    def test_register_layout_scales(self):
        p = NProcessProtocol(7)
        specs = p.registers()
        assert len(specs) == 7
        for i, spec in enumerate(specs):
            assert spec.writers == (i,)
            assert len(spec.readers) == 6

    def test_phase_reads_all_others(self, n_process):
        result = run_protocol(
            n_process,
            tuple("ab" * n_process.n_processes)[: n_process.n_processes],
            seed=2, record_trace=True,
        )
        assert result.completed
        n = n_process.n_processes
        # Between two consecutive writes by one processor there are
        # exactly n-1 reads (one full scan).
        pid0_steps = result.trace.steps_of(0)
        kinds = [s.op.kind for s in pid0_steps]
        first_write = kinds.index("write")
        scan = kinds[first_write + 1:first_write + n]
        assert scan == ["read"] * (n - 1) or len(kinds) <= first_write + 1


class TestCorrectness:
    def test_n2_reduces_to_two_process_shape(self):
        report = verify_safety(NProcessProtocol(2), ("a", "b"),
                               max_depth=16, max_states=200_000)
        assert report.ok

    @pytest.mark.parametrize("n", [3, 4])
    def test_exhaustive_safety_small_depth(self, n):
        inputs = tuple("ab"[(i % 2)] for i in range(n))
        report = verify_safety(NProcessProtocol(n), inputs,
                               max_depth=10, max_states=150_000)
        assert report.ok

    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
    def test_monte_carlo_all_sizes(self, n):
        runner = ExperimentRunner(
            protocol_factory=lambda: NProcessProtocol(n),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: tuple(
                rng.choice(["a", "b"]) for _ in range(n)
            ),
            seed=101 + n,
        )
        stats = runner.run_many(150, max_steps=100_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0

    def test_solo_processor_decides(self):
        n = 5
        result = run_protocol(
            NProcessProtocol(n), tuple("abbab"),
            scheduler=FixedScheduler([2] * 100),
        )
        assert result.decisions[2] == "b"

    def test_crash_tolerance_all_but_one(self):
        n = 6
        for survivor in range(n):
            plan = CrashPlan.kill_all_but(survivor, n)
            scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
            result = run_protocol(
                NProcessProtocol(n), tuple("ababab"),
                scheduler=scheduler, max_steps=200_000,
            )
            assert survivor in result.decisions
            assert result.consistent and result.nontrivial

    def test_multivalued_domain_native(self):
        # The pref/num family handles arbitrary domains directly.
        result = run_protocol(
            NProcessProtocol(4, values=(10, 20, 30, 40)),
            (10, 30, 30, 40), seed=5, max_steps=100_000,
        )
        assert result.completed
        assert result.decided_values.issubset({10, 30, 40})

    def test_steps_grow_polynomially(self):
        # Expected per-processor steps should grow roughly linearly in
        # n (each phase costs n reads); super-polynomial blowup would
        # show as an explosion between n=3 and n=8.
        means = {}
        for n in (3, 8):
            runner = ExperimentRunner(
                protocol_factory=lambda n=n: NProcessProtocol(n),
                scheduler_factory=lambda rng: RandomScheduler(rng),
                inputs_factory=lambda i, rng: tuple(
                    rng.choice(["a", "b"]) for _ in range(n)
                ),
                seed=303,
            )
            means[n] = runner.run_many(100, 200_000).mean_steps_to_decide()
        assert means[8] < means[3] * 30

"""Tests for the content-addressed run store (:mod:`repro.store`).

The contract under test is the determinism contract turned into
persistence: a committed shard is a *fact* keyed by ``(spec_hash,
root_seed, index_range)``, so

* a sweep killed between shard commits resumes from the last committed
  shard and merges to results **byte-identical** to an uninterrupted
  serial run (RunStats, metrics snapshot, and journal bytes alike);
* a second identical sweep executes **zero** kernel steps — every
  shard is answered from cache (``StoreStats.fully_cached``);
* commits are atomic (tmp + fsync + rename): a crash mid-write leaves
  only a ``.tmp`` orphan that loading ignores and ``gc`` sweeps.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.runner import ExperimentRunner
from repro.spec import ObsOptions, RunSpec
from repro.store import RunStore, ShardPayload, StoreError, StoreStats

N_RUNS = 40
SHARD = 10
MAX_STEPS = 2_000
SEED = 7


def make_runner(with_metrics=True, engine=None):
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        engine=engine,
        sinks=(MetricsRegistry(),) if with_metrics else (),
    )


def sweep(tmp_path, tag, store=None, workers=1, journal=True):
    """One full sweep; returns (stats, journal_bytes, metrics_dict)."""
    runner = make_runner()
    journal_path = str(tmp_path / f"{tag}.jsonl") if journal else None
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS, workers=workers,
                            shard_size=SHARD, journal_path=journal_path,
                            store=store)
    payload = (open(journal_path, "rb").read()
               if journal_path is not None else None)
    return stats, payload, runner.metrics.to_dict()


class Fault(Exception):
    """Injected between shard commits: the sweep dies mid-batch."""


@pytest.fixture()
def baseline(tmp_path):
    """The uninterrupted serial sweep every store path must reproduce."""
    return sweep(tmp_path, "serial")


class TestColdWarm:
    def test_cold_sweep_matches_serial_and_fills_store(self, tmp_path,
                                                       baseline):
        base_stats, base_journal, base_metrics = baseline
        store = RunStore(str(tmp_path / "store"))
        stats, journal, metrics = sweep(tmp_path, "cold", store=store)
        assert stats.store.misses == N_RUNS // SHARD
        assert stats.store.hits == 0
        assert not stats.store.fully_cached
        assert stats.runs == base_stats.runs
        assert journal == base_journal
        assert metrics == base_metrics
        entry, = store.ls()
        assert entry.spec_hash == stats.store.spec_hash
        assert entry.n_runs == N_RUNS
        assert entry.seeds == (SEED,)

    def test_second_identical_sweep_runs_zero_kernel_steps(
            self, tmp_path, baseline):
        base_stats, base_journal, base_metrics = baseline
        store = RunStore(str(tmp_path / "store"))
        sweep(tmp_path, "cold", store=store)
        stats, journal, metrics = sweep(tmp_path, "warm", store=store)
        assert stats.store.fully_cached
        assert stats.store.runs_executed == 0
        assert stats.store.hits == N_RUNS // SHARD
        assert stats.store.runs_from_cache == N_RUNS
        # ...and "served from cache" still means bit-identical.
        assert stats.runs == base_stats.runs
        assert journal == base_journal
        assert metrics == base_metrics

    def test_different_spec_is_a_different_address(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        sweep(tmp_path, "cold", store=store)
        other = make_runner(engine="reference")
        stats = other.run_many(N_RUNS, max_steps=MAX_STEPS,
                               shard_size=SHARD, store=store)
        assert stats.store.hits == 0  # engine is part of the address
        assert len(store.ls()) == 2


class TestResume:
    @pytest.mark.parametrize("kill_after", [1, 2, 3])
    def test_killed_sweep_resumes_bit_identical(self, tmp_path, baseline,
                                                kill_after):
        base_stats, base_journal, base_metrics = baseline
        store = RunStore(str(tmp_path / "store"))
        committed = []

        def fault(spec_hash, seed, start, stop, path):
            committed.append((start, stop))
            if len(committed) == kill_after:
                raise Fault

        store.on_commit = fault
        with pytest.raises(Fault):
            sweep(tmp_path, "killed", store=store)
        # Everything committed before the fault is durable...
        store.on_commit = None
        assert len(committed) == kill_after
        # ...and the re-run loads exactly those shards, executes the
        # rest, and merges to the uninterrupted serial result.
        stats, journal, metrics = sweep(tmp_path, "resumed", store=store)
        assert stats.store.hits == kill_after
        assert stats.store.misses == N_RUNS // SHARD - kill_after
        assert stats.store.runs_from_cache == kill_after * SHARD
        assert stats.runs == base_stats.runs
        assert journal == base_journal
        assert metrics == base_metrics

    def test_resumed_store_serves_parallel_sweeps(self, tmp_path,
                                                  baseline):
        # Worker count is not part of the address: a store filled at
        # workers=1 answers a workers=2 sweep of the same spec, and
        # vice versa, byte-identically.
        base_stats, base_journal, base_metrics = baseline
        store = RunStore(str(tmp_path / "store"))
        sweep(tmp_path, "fill", store=store, workers=1)
        stats, journal, metrics = sweep(tmp_path, "pool", store=store,
                                        workers=2)
        assert stats.store.fully_cached
        assert stats.runs == base_stats.runs
        assert journal == base_journal
        assert metrics == base_metrics

    def test_parallel_cold_sweep_commits(self, tmp_path, baseline):
        base_stats, base_journal, base_metrics = baseline
        store = RunStore(str(tmp_path / "store"))
        stats, journal, metrics = sweep(tmp_path, "pool-cold",
                                        store=store, workers=2)
        assert stats.store.misses == N_RUNS // SHARD
        assert journal == base_journal and metrics == base_metrics
        follow, _, _ = sweep(tmp_path, "pool-warm", store=store,
                             workers=2)
        assert follow.store.fully_cached


class TestCrashSafetyAndGc:
    def test_tmp_orphan_is_invisible_and_swept(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        stats, _, _ = sweep(tmp_path, "cold", store=store)
        h = stats.store.spec_hash
        # Simulate a writer that died before the atomic rename.
        orphan = store.shard_path(h, SEED, 999, 1009) + ".tmp"
        with open(orphan, "wb") as fh:
            fh.write(b"partial")
        assert store.load_shard(h, SEED, 999, 1009) is None
        removed = store.gc()
        assert removed == [orphan]
        assert not os.path.exists(orphan)
        # Committed shards were not touched.
        assert store.ls()[0].n_runs == N_RUNS

    def test_gc_keep_removes_unkept_specs_only(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        stats, _, _ = sweep(tmp_path, "cold", store=store)
        other = make_runner(engine="reference")
        other_stats = other.run_many(N_RUNS, max_steps=MAX_STEPS,
                                     shard_size=SHARD, store=store)
        keep, drop = stats.store.spec_hash, other_stats.store.spec_hash
        would = store.gc(keep=[keep[:12]], dry_run=True)
        assert len(store.ls()) == 2  # dry run touched nothing
        removed = store.gc(keep=[keep[:12]])
        assert would == removed
        entry, = store.ls()
        assert entry.spec_hash == keep
        assert drop not in {e.spec_hash for e in store.ls()}

    def test_damaged_shard_raises_not_reexecutes(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        stats, _, _ = sweep(tmp_path, "cold", store=store)
        path = store.shard_path(stats.store.spec_hash, SEED, 0, SHARD)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(StoreError, match="unreadable shard"):
            store.load_shard(stats.store.spec_hash, SEED, 0, SHARD)

    def test_mismatched_key_rejected(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        spec = RunSpec(protocol=ProtocolSpec("two", 2),
                       scheduler=SchedulerSpec("random"),
                       inputs=ConstantInputs(("a", "b")),
                       obs=ObsOptions(metrics=True, journal=True))
        store.commit_shard(spec, SEED,
                           ShardPayload(start=0, stop=10, runs=[]))
        good = store.shard_path(spec.spec_hash(), SEED, 0, 10)
        # File a copy under the wrong range name.
        bad = store.shard_path(spec.spec_hash(), SEED, 10, 20)
        with open(good, "rb") as src, open(bad, "wb") as dst:
            dst.write(src.read())
        with pytest.raises(StoreError, match="keyed"):
            store.load_shard(spec.spec_hash(), SEED, 10, 20)

    def test_format_marker_guards_the_root(self, tmp_path):
        root = tmp_path / "store"
        RunStore(str(root))
        import json

        with open(root / "store.json", "w") as fh:
            json.dump({"repro_store": 999}, fh)
        with pytest.raises(StoreError, match="format"):
            RunStore(str(root))

    def test_show_by_prefix(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        stats, _, _ = sweep(tmp_path, "cold", store=store)
        doc = store.show(stats.store.spec_hash[:10])
        assert doc["spec_hash"] == stats.store.spec_hash
        assert doc["seeds"][SEED] == [(i, i + SHARD)
                                      for i in range(0, N_RUNS, SHARD)]
        with pytest.raises(StoreError, match="no stored spec"):
            store.show("ffffffff")


class TestSelfHealing:
    """Format-2 checksums: damage is detected, quarantined, recomputed."""

    def _damaged(self, tmp_path, mode="bitflip"):
        from repro.faults import corrupt_file

        store = RunStore(str(tmp_path / "store"))
        stats, _, _ = sweep(tmp_path, "cold", store=store)
        path = store.shard_path(stats.store.spec_hash, SEED, 0, SHARD)
        corrupt_file(path, mode)
        return store, stats.store.spec_hash, path

    def test_checksum_catches_a_single_flipped_bit(self, tmp_path):
        store, h, _ = self._damaged(tmp_path, "bitflip")
        with pytest.raises(StoreError, match="checksum"):
            store.load_shard(h, SEED, 0, SHARD)

    def test_truncation_is_unreadable(self, tmp_path):
        store, h, _ = self._damaged(tmp_path, "truncate")
        with pytest.raises(StoreError, match="unreadable shard"):
            store.load_shard(h, SEED, 0, SHARD)

    def test_healing_load_quarantines_and_answers_none(self, tmp_path):
        store, h, path = self._damaged(tmp_path)
        assert store.load_shard(h, SEED, 0, SHARD, heal=True) is None
        assert store.healed == [path]
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # The quarantined file is gone from the address space: a
        # fresh load sees a plain miss, not damage.
        assert store.load_shard(h, SEED, 0, SHARD) is None

    def test_healing_resume_is_bit_identical(self, tmp_path, baseline):
        base_stats, base_journal, base_metrics = baseline
        store, _, path = self._damaged(tmp_path)
        stats, journal, metrics = sweep(tmp_path, "healed", store=store)
        assert stats.runs == base_stats.runs
        assert journal == base_journal
        assert metrics == base_metrics
        # Exactly the damaged shard re-executed; the rest came cached.
        assert stats.store.misses == 1
        assert stats.store.hits == N_RUNS // SHARD - 1
        assert os.path.exists(path)  # recommitted whole

    def test_verify_reports_damage_without_modifying(self, tmp_path):
        store, h, path = self._damaged(tmp_path)
        verdicts = store.verify()
        assert len(verdicts) == N_RUNS // SHARD
        bad = [v for v in verdicts if not v.ok]
        assert [v.path for v in bad] == [path]
        assert "checksum" in bad[0].detail
        assert all(v.spec_hash == h for v in verdicts)
        assert os.path.exists(path)  # verify never touches files
        # Prefix filtering mirrors `show`.
        assert store.verify(h[:10]) == verdicts
        with pytest.raises(StoreError, match="no stored spec"):
            store.verify("ffffffff")

    def test_verify_clean_store_is_all_ok(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        sweep(tmp_path, "cold", store=store)
        verdicts = store.verify()
        assert len(verdicts) == N_RUNS // SHARD
        assert all(v.ok for v in verdicts)
        assert all("runs" in v.detail for v in verdicts)

    def test_gc_sweeps_quarantined_corpses(self, tmp_path):
        store, h, path = self._damaged(tmp_path)
        store.load_shard(h, SEED, 0, SHARD, heal=True)
        removed = store.gc()
        assert removed == [path + ".corrupt"]
        assert store.ls()[0].n_runs == N_RUNS - SHARD


class TestStoreRefusals:
    def test_arbitrary_factories_refused_up_front(self, tmp_path):
        from repro.spec import SpecError
        from test_spec import _module_level_protocol_factory

        store = RunStore(str(tmp_path / "store"))
        runner = ExperimentRunner(
            protocol_factory=_module_level_protocol_factory,
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=SEED)
        with pytest.raises(SpecError, match="store-backed sweeps"):
            runner.run_many(N_RUNS, max_steps=MAX_STEPS, store=store)

    def test_stats_pickle_round_trip(self):
        s = StoreStats(spec_hash="ab", hits=2, misses=1,
                       runs_from_cache=20, runs_executed=10)
        assert pickle.loads(pickle.dumps(s)) == s
        assert not s.fully_cached

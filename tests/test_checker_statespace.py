"""Differential tests for the fingerprinted state-space engine.

The load-bearing guarantee of :mod:`repro.checker.statespace` is that
it explores *exactly* the reachable-configuration set of the reference
object-graph explorer — same quantification over schedulers, coins and
(under weak memory) adversary read values — only faster.  These tests
assert that literally: the objects BFS's configurations, mapped through
``ExploreReport.fingerprint_of``, must equal the fingerprint set the
fast search visited, cell by cell across protocols and memory models,
in fingerprint and exact modes, serial and sharded.
"""

from __future__ import annotations

import json

import pytest

from repro.checker import explore, explore_fast, verify_safety
from repro.checker import statespace
from repro.core.deterministic import TwoProcessDeterministic
from repro.core.naive import NaiveProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.obs.telemetry import read_telemetry, render_top
from repro.obs.tracing import Tracer
from repro.parallel.tasks import ProtocolSpec

# (label, factory, inputs, memory) — exhaustible cells spanning the
# protocol zoo and all three register semantics.
CELLS = [
    ("two-atomic", TwoProcessProtocol, ("a", "b"), None),
    ("two-regular", TwoProcessProtocol, ("a", "b"), "regular"),
    ("two-safe", TwoProcessProtocol, ("a", "b"), "safe"),
    ("naive3-atomic", lambda: NaiveProtocol(3), ("a", "b", "a"), None),
]


def _object_fps(report, graph):
    """Map every object-level configuration through the search's own
    canonicalization + fingerprint function."""
    return {report.fingerprint_of(config) for config in graph.depth_of}


class TestDifferential:
    @pytest.mark.parametrize(
        "label,factory,inputs,memory",
        CELLS, ids=[c[0] for c in CELLS])
    def test_visited_set_equals_objects_bfs(self, label, factory,
                                            inputs, memory):
        graph = explore(factory(), inputs, memory=memory)
        assert graph.complete
        report = explore_fast(factory(), inputs, memory=memory,
                              keep_fingerprints=True)
        assert report.ok
        assert report.exhausted
        assert report.truncated_by is None
        assert report.visited == len(graph.depth_of)
        assert _object_fps(report, graph) == report.fingerprints

    @pytest.mark.parametrize(
        "label,factory,inputs,memory",
        CELLS, ids=[c[0] for c in CELLS])
    def test_exact_mode_matches_fingerprint_mode(self, label, factory,
                                                 inputs, memory):
        fp = explore_fast(factory(), inputs, memory=memory)
        ex = explore_fast(factory(), inputs, memory=memory, exact=True,
                          keep_fingerprints=True)
        assert ex.exact and not fp.exact
        assert ex.visited == fp.visited
        assert ex.edges == fp.edges
        assert ex.depth == fp.depth
        assert ex.exhausted and fp.exhausted
        # Exact keys decode back through fingerprint_of too: the
        # objects graph maps onto them just as onto fingerprints.
        graph = explore(factory(), inputs, memory=memory)
        assert _object_fps(ex, graph) == ex.fingerprints

    def test_depth_limited_differential(self):
        # three_bounded's full space is ~17M configurations; the
        # depth-limited slice must still match the objects BFS exactly.
        graph = explore(ThreeBoundedProtocol(), ("a", "b", "a"),
                        max_depth=7)
        report = explore_fast(ThreeBoundedProtocol(), ("a", "b", "a"),
                              max_depth=7, keep_fingerprints=True)
        assert not report.exhausted
        assert report.truncated_by == "depth"
        assert report.visited == len(graph.depth_of)
        assert _object_fps(report, graph) == report.fingerprints

    def test_fingerprint_seed_changes_keys_not_counts(self):
        a = explore_fast(TwoProcessProtocol(), ("a", "b"),
                         keep_fingerprints=True)
        b = explore_fast(TwoProcessProtocol(), ("a", "b"),
                         fingerprint_seed=1, keep_fingerprints=True)
        assert a.visited == b.visited
        assert a.fingerprints != b.fingerprints


class TestViolationParity:
    def test_violation_message_and_witness_match_objects_engine(self):
        def selfish(pid, pref, read):
            return ("decide", pref)

        broken = TwoProcessDeterministic(selfish, "selfish")
        ref = verify_safety(broken, ("a", "b"))
        report = explore_fast(broken, ("a", "b"))
        assert not report.ok
        assert not report.exhausted
        assert report.truncated_by == "violation"
        assert report.violation == ref.violation
        assert report.witness is not None
        assert (report.witness.decisions(broken)
                == ref.witness.decisions(broken))
        assert "VIOLATION" in report.guarantee()

    def test_verify_safety_fingerprints_engine_flags_broken(self):
        def selfish(pid, pref, read):
            return ("decide", pref)

        broken = TwoProcessDeterministic(selfish, "selfish")
        report = verify_safety(broken, ("a", "b"), engine="fingerprints")
        assert not report.ok
        assert "consistency" in report.violation
        assert report.witness is not None


class TestShardedFrontier:
    def test_workers_visit_identical_fingerprint_set(self, monkeypatch,
                                                     tmp_path):
        # Force the pool path on a small model so the test stays fast.
        monkeypatch.setattr(statespace, "MIN_PARALLEL_LEVEL", 4)
        serial = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                              keep_fingerprints=True)
        sharded = explore_fast(
            NaiveProtocol(3), ("a", "b", "a"), workers=2,
            protocol_factory=ProtocolSpec("naive", 3),
            keep_fingerprints=True)
        spilled = explore_fast(
            NaiveProtocol(3), ("a", "b", "a"), workers=2,
            protocol_factory=ProtocolSpec("naive", 3),
            spill_dir=str(tmp_path), keep_fingerprints=True)
        assert sharded.workers == 2
        assert serial.exhausted and sharded.exhausted and spilled.exhausted
        assert serial.fingerprints == sharded.fingerprints
        assert serial.fingerprints == spilled.fingerprints
        assert serial.edges == sharded.edges == spilled.edges

    def test_workers_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            explore_fast(TwoProcessProtocol(), ("a", "b"), workers=0)


class TestTelemetry:
    def test_heartbeats_stream_progress_and_final_done(self):
        beats = []
        report = explore_fast(TwoProcessProtocol(), ("a", "b"),
                              heartbeat_sink=beats.append,
                              heartbeat_every=10)
        assert beats
        assert beats[-1]["done"] is True
        assert beats[-1]["runs_done"] == report.visited
        assert all(b["tail"]["depth"] <= report.depth for b in beats)
        done_counts = [b["runs_done"] for b in beats]
        assert done_counts == sorted(done_counts)

    def test_telemetry_file_renders_in_top(self, tmp_path):
        path = tmp_path / "beats.jsonl"
        explore_fast(TwoProcessProtocol(), ("a", "b"),
                     telemetry_path=str(path), heartbeat_every=10)
        with open(path) as fh:
            for line in fh:
                json.loads(line)
        beats = read_telemetry(str(path))
        assert beats and beats[-1].done
        rendered = render_top(beats)
        assert "states" in rendered or "shard" in rendered or rendered

    def test_explore_span_has_visited_and_frontier_attrs(self):
        tracer = Tracer()
        explore_fast(TwoProcessProtocol(), ("a", "b"), tracer=tracer)
        spans = [s for s in tracer.spans if s.name == "checker.explore"]
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["visited"] > 0
        assert attrs["frontier"] == 0
        assert attrs["complete"] is True


class TestReportShape:
    def test_guarantee_strings_mirror_safety_report(self):
        full = explore_fast(TwoProcessProtocol(), ("a", "b"))
        assert "full reachable" in full.guarantee()
        partial = explore_fast(TwoProcessProtocol(), ("a", "b"),
                               max_depth=3)
        assert "up to depth" in partial.guarantee()

    def test_report_metadata_fields(self):
        report = explore_fast(TwoProcessProtocol(), ("a", "b"),
                              memory="regular")
        assert report.protocol == TwoProcessProtocol().name
        assert report.inputs == ("a", "b")
        assert report.memory == "regular"
        assert report.states_per_sec > 0
        assert report.workers == 1
        assert report.frontier == 0
        # fingerprints only materialize on request
        assert report.fingerprints is None

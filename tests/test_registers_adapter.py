"""Tests for running consensus protocols on constructed registers.

The end-to-end implementability experiment: the paper's protocols
executing in the interval-time world where their registers are built
from weaker cells and operations genuinely overlap.
"""

from __future__ import annotations

import pytest

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.errors import SimulationError
from repro.registers.adapter import (
    atomic_backing,
    mrsw_atomic_backing,
    regular_backing,
    run_on_constructed_registers,
    safe_backing_for,
    seqnum_atomic_backing,
)


class TestTwoProcessOnConstructions:
    @pytest.mark.parametrize("backing", [
        atomic_backing, seqnum_atomic_backing, regular_backing,
    ])
    def test_correct_on_sufficient_registers(self, backing):
        for seed in range(40):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=backing,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_regular_suffices_interesting_fact(self):
        """The two-processor consistency argument (Theorem 6) relies on
        reading a frozen register — which regular semantics already
        guarantees once the writer stops.  No new/old-inversion
        protection is needed, and the runs confirm it."""
        for seed in range(60):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=regular_backing,
            )
            assert result.consistent

    def test_safe_bits_preserve_consistency_finding_f5(self):
        """Finding F5: the two-processor protocol stays *consistent*
        even on bare safe cells (garbage under overlap).

        We set out to show safe bits break it and failed, for a reason:
        order the processors' last writes; the later-writing processor's
        deciding read begins after every write to the register it reads
        has ended, so that read is true — and it returns the other
        processor's *final* preference (its preference never changes
        after its last write).  Deciding requires equality with one's
        own preference, so the two decisions coincide.  Garbage reads
        mid-protocol only cause extra coin flips.

        (Termination on safe bits is an empirical observation under the
        random resolver, not a theorem — a worst-case garbage resolver
        can plausibly prolong the dance; nontriviality holds because a
        safe cell's garbage is drawn from its declared domain.)"""
        for seed in range(200):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=safe_backing_for(("a", "b")),
            )
            assert result.consistent, f"seed {seed}: {result.decisions}"
            assert result.nontrivial

    def test_events_accounted(self):
        result = run_on_constructed_registers(
            TwoProcessProtocol(), ("a", "b"), seed=3,
        )
        assert result.primitive_events > 0


class TestThreeProcessOnConstructions:
    def test_srsw_layout_on_seqnum_construction(self):
        for seed in range(25):
            result = run_on_constructed_registers(
                ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a"),
                seed=seed,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_mrsw_layout_on_gossip_construction(self):
        for seed in range(25):
            result = run_on_constructed_registers(
                ThreeUnboundedProtocol(), ("a", "b", "b"), seed=seed,
                backing=mrsw_atomic_backing,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_mrsw_protocol_rejects_srsw_backing(self):
        with pytest.raises(ValueError):
            run_on_constructed_registers(
                ThreeUnboundedProtocol(), ("a", "b", "a"), seed=0,
                backing=seqnum_atomic_backing,
            )


class TestAdapterValidation:
    def test_wrong_arity(self):
        with pytest.raises(SimulationError):
            run_on_constructed_registers(TwoProcessProtocol(), ("a",))

    def test_reproducible(self):
        a = run_on_constructed_registers(TwoProcessProtocol(), ("a", "b"),
                                         seed=11)
        b = run_on_constructed_registers(TwoProcessProtocol(), ("a", "b"),
                                         seed=11)
        assert a.decisions == b.decisions
        assert a.primitive_events == b.primitive_events

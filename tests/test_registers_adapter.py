"""Tests for running consensus protocols on constructed registers.

The end-to-end implementability experiment: the paper's protocols
executing in the interval-time world where their registers are built
from weaker cells and operations genuinely overlap.
"""

from __future__ import annotations

import pytest

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.errors import SimulationError
from repro.registers.adapter import (
    atomic_backing,
    mrsw_atomic_backing,
    regular_backing,
    run_on_constructed_registers,
    safe_backing_for,
    seqnum_atomic_backing,
)


class TestTwoProcessOnConstructions:
    @pytest.mark.parametrize("backing", [
        atomic_backing, seqnum_atomic_backing, regular_backing,
    ])
    def test_correct_on_sufficient_registers(self, backing):
        for seed in range(40):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=backing,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_regular_suffices_interesting_fact(self):
        """The two-processor consistency argument (Theorem 6) relies on
        reading a frozen register — which regular semantics already
        guarantees once the writer stops.  No new/old-inversion
        protection is needed, and the runs confirm it."""
        for seed in range(60):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=regular_backing,
            )
            assert result.consistent

    def test_safe_bits_preserve_consistency_finding_f5(self):
        """Finding F5: the two-processor protocol stays *consistent*
        even on bare safe cells (garbage under overlap).

        We set out to show safe bits break it and failed, for a reason:
        order the processors' last writes; the later-writing processor's
        deciding read begins after every write to the register it reads
        has ended, so that read is true — and it returns the other
        processor's *final* preference (its preference never changes
        after its last write).  Deciding requires equality with one's
        own preference, so the two decisions coincide.  Garbage reads
        mid-protocol only cause extra coin flips.

        (Termination on safe bits is an empirical observation under the
        random resolver, not a theorem — a worst-case garbage resolver
        can plausibly prolong the dance; nontriviality holds because a
        safe cell's garbage is drawn from its declared domain.)"""
        for seed in range(200):
            result = run_on_constructed_registers(
                TwoProcessProtocol(), ("a", "b"), seed=seed,
                backing=safe_backing_for(("a", "b")),
            )
            assert result.consistent, f"seed {seed}: {result.decisions}"
            assert result.nontrivial

    def test_events_accounted(self):
        result = run_on_constructed_registers(
            TwoProcessProtocol(), ("a", "b"), seed=3,
        )
        assert result.primitive_events > 0


class TestThreeProcessOnConstructions:
    def test_srsw_layout_on_regular_construction(self):
        """Echo of the Hadzilacos–Hu–Toueg weakening for the
        three-processor protocol: regular cells (no new/old-inversion
        protection) still keep every run consistent."""
        for seed in range(30):
            result = run_on_constructed_registers(
                ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a"),
                seed=seed, backing=regular_backing,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_srsw_layout_on_seqnum_construction(self):
        for seed in range(25):
            result = run_on_constructed_registers(
                ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a"),
                seed=seed,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_mrsw_layout_on_gossip_construction(self):
        for seed in range(25):
            result = run_on_constructed_registers(
                ThreeUnboundedProtocol(), ("a", "b", "b"), seed=seed,
                backing=mrsw_atomic_backing,
            )
            assert result.completed
            assert result.consistent and result.nontrivial

    def test_mrsw_protocol_rejects_srsw_backing(self):
        with pytest.raises(ValueError):
            run_on_constructed_registers(
                ThreeUnboundedProtocol(), ("a", "b", "a"), seed=0,
                backing=seqnum_atomic_backing,
            )


class TestKernelHistoriesAgainstConditions:
    """Cross-check the kernel's memory models against the Lamport
    condition checkers of :mod:`repro.registers.conditions`.

    A serialized kernel run is re-read as an interval history on a
    doubled clock: a read at kernel step ``s`` occupies ``[2s, 2s+1]``;
    an atomic write at ``t`` occupies ``[2t, 2t+1]``; a weak write
    issued at ``t`` and committed at the writer's next activation
    ``t'`` spans ``[2t, 2t'-1]`` (never committed → past the end of
    the run, overlapping every later read).  Written values are
    tokenized to be distinct (the atomicity checker's precondition) and
    each read is matched to the feasible token carrying its raw value.
    Histories emitted under ``AtomicMemory`` must grade atomic;
    histories under ``RegularMemory`` — with the adversary choosing
    read values at random — must grade regular.
    """

    @staticmethod
    def _histories(protocol, inputs, memory, seed):
        from repro.registers.conditions import _feasible_regular
        from repro.registers.history import History, Interval
        from repro.sched.adversary import ReadValueAdversary
        from repro.sched.simple import RandomScheduler
        from repro.sim.config import RegisterLayout
        from repro.sim.kernel import Simulation
        from repro.sim.ops import ReadOp
        from repro.sim.rng import ReplayableRng

        rng = ReplayableRng(seed)
        scheduler = RandomScheduler(rng.child("sched"))
        if memory != "atomic":
            scheduler = ReadValueAdversary(scheduler, policy="random",
                                           rng=rng.child("rv"))
        sim = Simulation(protocol, inputs, scheduler,
                         rng.child("kernel"), record_trace=True,
                         memory=memory)
        result = sim.run(2_000)
        assert result.completed
        steps = list(result.trace)
        horizon = 2 * (len(steps) + 1)
        layout = RegisterLayout.for_protocol(protocol)

        histories = {spec.name: History(initial=spec.initial)
                     for spec in layout.specs}
        # Pass 1: writes become uniquely-tokenized intervals.
        tokens = {}  # step index -> token
        for i, step in enumerate(steps):
            if isinstance(step.op, ReadOp):
                continue
            if memory == "atomic":
                respond = 2 * i + 1
            else:
                commit = next((j for j in range(i + 1, len(steps))
                               if steps[j].pid == step.pid), None)
                respond = 2 * commit - 1 if commit is not None else horizon
            token = ("w", i, step.op.value)
            tokens[i] = token
            histories[step.op.register].record(Interval(
                kind="write", value=token, thread=f"P{step.pid}",
                invoke=2 * i, respond=respond,
            ))
        # Pass 2: match each read's raw result to a feasible token.
        for i, step in enumerate(steps):
            if not isinstance(step.op, ReadOp):
                continue
            history = histories[step.op.register]
            read = Interval(kind="read", value=None, thread=f"P{step.pid}",
                            invoke=2 * i, respond=2 * i + 1)
            feasible = _feasible_regular(history, read)
            matches = [t for t in feasible
                       if isinstance(t, tuple) and t[0] == "w"
                       and t[2] == step.result]
            if matches:
                value = max(matches, key=lambda t: t[1])
            elif step.result == history.initial and \
                    history.initial in feasible:
                value = history.initial
            else:
                # No feasible explanation — record the raw value so the
                # condition checker flags it instead of passing
                # vacuously.
                value = ("unexplained", i, step.result)
            history.record(Interval(
                kind="read", value=value, thread=f"P{step.pid}",
                invoke=2 * i, respond=2 * i + 1,
            ))
        return histories

    @pytest.mark.parametrize("protocol_factory,inputs", [
        (lambda: TwoProcessProtocol(), ("a", "b")),
        (lambda: ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a")),
    ])
    def test_atomic_kernel_histories_grade_atomic(self, protocol_factory,
                                                  inputs):
        from repro.registers.conditions import check_atomic

        for seed in range(8):
            histories = self._histories(protocol_factory(), inputs,
                                        "atomic", seed)
            for name, history in histories.items():
                if not history.reads:
                    continue
                verdict = check_atomic(history)
                assert verdict.ok, (
                    f"seed {seed}, register {name}:\n{verdict.render()}"
                )

    @pytest.mark.parametrize("protocol_factory,inputs", [
        (lambda: TwoProcessProtocol(), ("a", "b")),
        (lambda: ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a")),
    ])
    def test_regular_kernel_histories_grade_regular(self, protocol_factory,
                                                    inputs):
        from repro.registers.conditions import check_regular

        for seed in range(8):
            histories = self._histories(protocol_factory(), inputs,
                                        "regular", seed)
            for name, history in histories.items():
                if not history.reads:
                    continue
                verdict = check_regular(history)
                assert verdict.ok, (
                    f"seed {seed}, register {name}:\n{verdict.render()}"
                )


class TestAdapterValidation:
    def test_wrong_arity(self):
        with pytest.raises(SimulationError):
            run_on_constructed_registers(TwoProcessProtocol(), ("a",))

    def test_reproducible(self):
        a = run_on_constructed_registers(TwoProcessProtocol(), ("a", "b"),
                                         seed=11)
        b = run_on_constructed_registers(TwoProcessProtocol(), ("a", "b"),
                                         seed=11)
        assert a.decisions == b.decisions
        assert a.primitive_events == b.primitive_events

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolve:
    def test_two_process(self, capsys):
        assert main(["solve", "--protocol", "two", "--inputs", "a,b",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "agreed on" in out and "consistent: True" in out

    def test_trace_output(self, capsys):
        assert main(["solve", "--inputs", "a,b", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "write" in out and "read" in out

    def test_all_protocols(self, capsys):
        cases = [
            ("two", "a,b"),
            ("three-unbounded", "a,b,a"),
            ("three-bounded", "a,b,b"),
            ("n", "a,b,a,b"),
            ("naive", "a,a,a"),
        ]
        for protocol, inputs in cases:
            assert main(["solve", "--protocol", protocol,
                         "--inputs", inputs]) == 0

    def test_wrong_arity_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--protocol", "two", "--inputs", "a,b,c"])

    def test_all_schedulers(self):
        for sched in ("random", "round-robin", "oblivious", "split-vote",
                      "laggard-freezer"):
            assert main(["solve", "--protocol", "three-unbounded",
                         "--inputs", "a,b,a", "--scheduler", sched]) == 0


class TestVerify:
    def test_full_verification(self, capsys):
        assert main(["verify", "--protocol", "two", "--inputs", "a,b"]) == 0
        assert "full reachable" in capsys.readouterr().out

    def test_depth_bounded(self, capsys):
        assert main(["verify", "--protocol", "three-bounded",
                     "--inputs", "a,b,a", "--depth", "8"]) == 0
        assert "up to depth" in capsys.readouterr().out


class TestImpossibility:
    def test_whole_zoo(self, capsys):
        assert main(["impossibility"]) == 0
        out = capsys.readouterr().out
        assert out.count("admits an infinite non-deciding schedule") == 4

    def test_single_member(self, capsys):
        assert main(["impossibility", "--protocol", "greedy-min"]) == 0
        assert "greedy-min" in capsys.readouterr().out

    def test_unknown_member(self):
        with pytest.raises(SystemExit):
            main(["impossibility", "--protocol", "does-not-exist"])


class TestGameAndTower:
    def test_game(self, capsys):
        assert main(["game", "--cost", "processor:1"]) == 0
        assert "10.000000" in capsys.readouterr().out

    def test_tower(self, capsys):
        assert main(["tower", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "mrsw-atomic" in out and "atomic" in out

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolve:
    def test_two_process(self, capsys):
        assert main(["solve", "--protocol", "two", "--inputs", "a,b",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "agreed on" in out and "consistent: True" in out

    def test_trace_output(self, capsys):
        assert main(["solve", "--inputs", "a,b", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "write" in out and "read" in out

    def test_all_protocols(self, capsys):
        cases = [
            ("two", "a,b"),
            ("three-unbounded", "a,b,a"),
            ("three-bounded", "a,b,b"),
            ("n", "a,b,a,b"),
            ("naive", "a,a,a"),
        ]
        for protocol, inputs in cases:
            assert main(["solve", "--protocol", protocol,
                         "--inputs", inputs]) == 0

    def test_wrong_arity_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--protocol", "two", "--inputs", "a,b,c"])

    def test_all_schedulers(self):
        for sched in ("random", "round-robin", "oblivious", "split-vote",
                      "laggard-freezer"):
            assert main(["solve", "--protocol", "three-unbounded",
                         "--inputs", "a,b,a", "--scheduler", sched]) == 0


class TestVerify:
    def test_full_verification(self, capsys):
        assert main(["verify", "--protocol", "two", "--inputs", "a,b"]) == 0
        assert "full reachable" in capsys.readouterr().out

    def test_depth_bounded(self, capsys):
        assert main(["verify", "--protocol", "three-bounded",
                     "--inputs", "a,b,a", "--depth", "8"]) == 0
        assert "up to depth" in capsys.readouterr().out


class TestImpossibility:
    def test_whole_zoo(self, capsys):
        assert main(["impossibility"]) == 0
        out = capsys.readouterr().out
        assert out.count("admits an infinite non-deciding schedule") == 4

    def test_single_member(self, capsys):
        assert main(["impossibility", "--protocol", "greedy-min"]) == 0
        assert "greedy-min" in capsys.readouterr().out

    def test_unknown_member(self):
        with pytest.raises(SystemExit):
            main(["impossibility", "--protocol", "does-not-exist"])


class TestGameAndTower:
    def test_game(self, capsys):
        assert main(["game", "--cost", "processor:1"]) == 0
        assert "10.000000" in capsys.readouterr().out

    def test_tower(self, capsys):
        assert main(["tower", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "mrsw-atomic" in out and "atomic" in out


class TestSolveObservability:
    def test_metrics_flag_prints_registry(self, capsys):
        assert main(["solve", "--inputs", "a,b", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "steps_to_decide" in out and "p99" in out

    def test_journal_flag_writes_replayable_file(self, tmp_path, capsys):
        path = str(tmp_path / "solve.jsonl")
        assert main(["solve", "--inputs", "a,b", "--seed", "3",
                     "--journal", path]) == 0
        assert "journal:" in capsys.readouterr().out
        from repro.obs import replay_journal

        replayed = replay_journal(path)
        assert replayed.counters["runs"].value == 1
        assert replayed.counters["decisions"].value == 2


class TestReport:
    def test_report_prints_percentiles_and_histograms(self, capsys):
        assert main(["report", "--protocol", "two", "--runs", "50"]) == 0
        out = capsys.readouterr().out
        assert "steps_to_decide" in out
        assert "p50" in out and "p90" in out and "p99" in out
        assert "coin_flips_per_decision" in out
        assert "#" in out  # histogram bars

    def test_report_journal_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "batch.jsonl")
        assert main(["report", "--protocol", "three-unbounded",
                     "--inputs", "a,b,a", "--runs", "20",
                     "--journal", path]) == 0
        live_out = capsys.readouterr().out
        assert main(["report", "--from-journal", path]) == 0
        replay_out = capsys.readouterr().out
        # The metrics block must be identical live and replayed.
        live_metrics = live_out[live_out.index("counters:"):
                                live_out.index("\n\nsteps_to_decide")]
        replay_metrics = replay_out[replay_out.index("counters:"):
                                    replay_out.index("\n\nsteps_to_decide")]
        assert live_metrics == replay_metrics
        assert "num_depth" in live_out

    def test_report_timing(self, capsys):
        assert main(["report", "--runs", "10", "--timing"]) == 0
        out = capsys.readouterr().out
        assert "phase timing:" in out
        assert "transition" in out

    def test_report_json_record(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "report.json")
        assert main(["report", "--runs", "10", "--json", path]) == 0
        with open(path) as fh:
            doc = json.load(fh)
        record = doc["records"][0]
        assert record["experiment"] == "cli_report"
        obs = record["metrics"]["observability"]
        assert obs["counters"]["runs"] == 10
        assert obs["histograms"]["steps_to_decide"]["p99"] >= 1

    def test_report_all_schedulers(self):
        for sched in ("random", "round-robin", "oblivious", "split-vote",
                      "laggard-freezer"):
            assert main(["report", "--runs", "5",
                         "--scheduler", sched]) == 0

    def test_report_workers_matches_serial(self, tmp_path, capsys):
        import json

        ser, par = str(tmp_path / "ser.json"), str(tmp_path / "par.json")
        assert main(["report", "--runs", "40", "--seed", "7",
                     "--json", ser]) == 0
        assert main(["report", "--runs", "40", "--seed", "7",
                     "--workers", "2", "--shard-size", "9",
                     "--json", par]) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out
        with open(ser) as fh:
            serial_metrics = json.load(fh)["records"][0]["metrics"]
        with open(par) as fh:
            parallel_metrics = json.load(fh)["records"][0]["metrics"]
        assert parallel_metrics == serial_metrics

    def test_report_workers_journal(self, tmp_path, capsys):
        path = str(tmp_path / "par.jsonl")
        assert main(["report", "--runs", "10", "--workers", "2",
                     "--journal", path]) == 0
        out = capsys.readouterr().out
        assert "journal:" in out and "events" in out
        from repro.obs import replay_journal

        assert replay_journal(path).counters["runs"].value == 10

    def test_report_timing_rejected_with_workers(self):
        with pytest.raises(SystemExit, match="workers 1"):
            main(["report", "--runs", "5", "--workers", "2", "--timing"])

    def test_report_bad_worker_count_rejected(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["report", "--runs", "5", "--workers", "0"])

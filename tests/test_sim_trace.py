"""Tests for trace recording and querying."""

from __future__ import annotations

from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import FixedScheduler
from repro.sim.kernel import Simulation
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.rng import ReplayableRng
from repro.sim.trace import CrashRecord, StepRecord, Trace


def traced_run(schedule, inputs=("a", "b"), max_steps=50):
    sim = Simulation(
        TwoProcessProtocol(), inputs, FixedScheduler(schedule),
        ReplayableRng(0), record_trace=True,
    )
    sim.run(max_steps)
    return sim


class TestTrace:
    def test_schedule_extraction(self):
        sim = traced_run([0, 1, 0])
        assert sim.trace.schedule()[:3] == [0, 1, 0]

    def test_steps_of_processor(self):
        sim = traced_run([0, 0])
        steps = sim.trace.steps_of(0)
        assert len(steps) == 2
        assert all(s.pid == 0 for s in steps)

    def test_writes_and_reads_filters(self):
        sim = traced_run([0, 1, 0, 1])
        writes = sim.trace.writes_to("r0")
        assert writes and all(isinstance(s.op, WriteOp) for s in writes)
        reads = sim.trace.reads_from("r1")
        assert reads and all(isinstance(s.op, ReadOp) for s in reads)

    def test_decisions_in_order(self):
        sim = traced_run([0, 0, 1, 1])
        decisions = sim.trace.decisions()
        assert [d.decided for d in decisions] == ["a", "a"]
        assert decisions[0].index < decisions[1].index

    def test_render_and_truncation(self):
        sim = traced_run([0, 0, 1, 1])
        full = sim.trace.render()
        assert "decides" in full
        short = sim.trace.render(limit=2)
        assert "more steps" in short

    def test_crash_records_rendered(self):
        trace = Trace()
        trace.append(StepRecord(index=0, pid=0,
                                op=WriteOp("r0", "a"), result=None))
        trace.append_crash(CrashRecord(index=1, pid=1))
        rendered = trace.render()
        assert "crashed" in rendered
        assert trace.crashes[0].pid == 1

    def test_equal_index_interleaving_renders_crash_first(self):
        # A CrashRecord carries the index of the *next* step at crash
        # time, so on equal indices the crash precedes the step in the
        # serialization order and must render first.
        trace = Trace()
        trace.append(StepRecord(index=0, pid=0,
                                op=WriteOp("r0", "a"), result=None))
        trace.append_crash(CrashRecord(index=1, pid=1))
        trace.append(StepRecord(index=1, pid=0, op=ReadOp("r1"),
                                result=None, decided="a"))
        lines = trace.render().splitlines()
        assert len(lines) == 3
        assert "crashed" in lines[1]
        assert "read" in lines[2]

    def test_equal_index_interleaving_from_live_run(self):
        # Crash P1 right before P0's second step: both records get
        # index 1 and the crash must come first in the rendering.
        sim = Simulation(
            TwoProcessProtocol(), ("a", "b"), FixedScheduler([0, 0, 0]),
            ReplayableRng(0), record_trace=True,
        )
        sim.step()
        sim.crash(1)
        sim.run(50)
        assert sim.trace.crashes[0].index == 1
        lines = sim.trace.render().splitlines()
        assert "crashed" in lines[1]
        assert lines[1].startswith("#1")
        assert lines[2].startswith("#1")
        assert "crashed" not in lines[2]

    def test_step_record_render_shapes(self):
        read = StepRecord(index=3, pid=1, op=ReadOp("r0"), result="a")
        assert "read" in read.render() and "'a'" in read.render()
        write = StepRecord(index=4, pid=0, op=WriteOp("r0", "b"),
                           result=None, decided="b")
        assert "decides" in write.render()

    def test_indexing_and_len(self):
        sim = traced_run([0, 1])
        assert len(sim.trace) >= 2
        assert sim.trace[0].index == 0

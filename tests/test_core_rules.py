"""Unit tests for the shared pref/num decision rules (Figure 2)."""

from __future__ import annotations

from repro.core.rules import (
    INITIAL,
    PrefNum,
    candidate,
    decision,
    leading,
    max_num,
    unanimous_pref,
)
from repro.sim.ops import BOTTOM


def pn(pref, num):
    return PrefNum(pref=pref, num=num)


class TestHelpers:
    def test_max_num(self):
        assert max_num([pn("a", 3), pn("b", 1)]) == 3

    def test_leading_single(self):
        lead = leading([pn("a", 3), pn("b", 1), pn("a", 2)])
        assert lead == (pn("a", 3),)

    def test_leading_ties(self):
        lead = leading([pn("a", 3), pn("b", 3), pn("a", 2)])
        assert set(lead) == {pn("a", 3), pn("b", 3)}

    def test_unanimous_pref(self):
        assert unanimous_pref([pn("a", 1), pn("a", 9)]) == "a"
        assert unanimous_pref([pn("a", 1), pn("b", 1)]) is None

    def test_initial_register_value(self):
        assert INITIAL.pref is BOTTOM and INITIAL.num == 0


class TestDecision:
    def test_case_a_all_prefs_equal(self):
        assert decision(pn("a", 5), [pn("a", 1), pn("a", 3)]) == "a"

    def test_case_a_blocked_by_bottom(self):
        # An unwritten register does not count as agreeing.
        assert decision(pn("a", 1), [INITIAL, pn("a", 1)]) is None

    def test_case_b_leader_two_ahead(self):
        assert decision(pn("a", 5), [pn("b", 3), pn("b", 2)]) == "a"

    def test_case_b_needs_gap_of_two(self):
        # Trailing by exactly one is not enough.
        assert decision(pn("a", 5), [pn("b", 4), pn("b", 2)]) is None

    def test_case_b_needs_unanimous_leaders(self):
        assert decision(pn("a", 5), [pn("b", 5), pn("b", 2)]) is None

    def test_case_b_tied_leaders_agreeing(self):
        assert decision(pn("a", 5), [pn("a", 5), pn("b", 3)]) == "a"

    def test_case_b_not_from_behind(self):
        # A trailing processor must NOT decide for the leaders' value:
        # the literal Figure 2 rule allows it and is inconsistent under
        # stale intra-phase reads (finding F1 in EXPERIMENTS.md).
        assert decision(pn("b", 2), [pn("a", 5), pn("a", 5)]) is None

    def test_case_b_tied_leader_may_decide(self):
        assert decision(pn("a", 5), [pn("a", 5), pn("b", 3)]) == "a"

    def test_initial_configuration_no_decision(self):
        assert decision(pn("a", 1), [INITIAL, INITIAL]) is None

    def test_leader_two_ahead_of_unwritten(self):
        assert decision(pn("a", 2), [INITIAL, INITIAL]) == "a"


class TestCandidate:
    def test_increments_num(self):
        c = candidate(pn("a", 4), [pn("b", 4), pn("a", 2)])
        assert c.num == 5

    def test_adopts_unanimous_leader_pref(self):
        c = candidate(pn("b", 2), [pn("a", 5), pn("a", 5)])
        assert c.pref == "a"

    def test_keeps_own_pref_on_split_leaders(self):
        c = candidate(pn("b", 5), [pn("a", 5), pn("a", 2)])
        assert c.pref == "b"

    def test_self_leader_keeps_own(self):
        c = candidate(pn("b", 9), [pn("a", 1), pn("a", 2)])
        assert c.pref == "b" and c.num == 10

    def test_never_adopts_bottom(self):
        # Leaders with ⊥ pref cannot exist once the caller has written,
        # but the rule must be safe anyway.
        c = candidate(pn("a", 1), [pn(BOTTOM, 1), pn("a", 0)])
        assert c.pref in ("a",)

    def test_repr_matches_paper_notation(self):
        assert repr(pn("a", 3)) == "['a',3]"

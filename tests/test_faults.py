"""Tests for the deterministic fault-injection plans (`repro.faults`).

The plan layer itself must be boringly exact: validated vocabularies,
frozen picklable values, attempt-coordinate lookup with optional
spec-hash scoping, and file-corruption helpers whose damage is real
(the file stops loading) but bounded (the file still exists).  The
supervisor-side behavior of each fault kind is exercised end to end in
tests/test_supervisor_chaos.py.
"""

from __future__ import annotations

import pickle

import pytest

from repro.faults import (CORRUPT_MODES, FAULT_KINDS, STORE_FAULT_KINDS,
                          WORKER_FAULT_KINDS, FaultAction, FaultPlan,
                          InjectedFault, corrupt_file,
                          trigger_worker_fault)


class TestFaultAction:
    def test_vocabulary_is_partitioned(self):
        assert set(WORKER_FAULT_KINDS) | set(STORE_FAULT_KINDS) \
            == set(FAULT_KINDS)
        assert not set(WORKER_FAULT_KINDS) & set(STORE_FAULT_KINDS)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultAction(kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("meteor")

    def test_unknown_corrupt_mode_rejected(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultAction("corrupt", mode="sandpaper")

    def test_clean_exit_is_not_a_crash(self):
        with pytest.raises(ValueError, match="nonzero"):
            FaultAction("crash", exitcode=0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultAction("hang", seconds=-1.0)

    def test_actions_pickle(self):
        action = FaultAction("corrupt", mode="bitflip")
        assert pickle.loads(pickle.dumps(action)) == action


class TestFaultPlan:
    def test_build_and_get(self):
        plan = FaultPlan.build({
            (0, 0): FaultAction("crash"),
            (1, 2): FaultAction("raise"),
        })
        assert len(plan) == 2
        assert plan.get(0, 0).kind == "crash"
        assert plan.get(1, 2).kind == "raise"
        assert plan.get(0, 1) is None
        assert plan.get(5, 0) is None

    def test_worker_vs_store_action_split(self):
        plan = FaultPlan.build({
            (0, 0): FaultAction("crash"),
            (1, 0): FaultAction("commit-fail"),
        })
        assert plan.worker_action(0, 0).kind == "crash"
        assert plan.store_action(0, 0) is None
        assert plan.worker_action(1, 0) is None
        assert plan.store_action(1, 0).kind == "commit-fail"

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan.build({(-1, 0): FaultAction("raise")})

    def test_non_action_values_rejected(self):
        with pytest.raises(TypeError, match="FaultAction"):
            FaultPlan.build({(0, 0): "crash"})

    def test_unscoped_plan_applies_everywhere(self):
        plan = FaultPlan.build({(0, 0): FaultAction("raise")})
        assert plan.applies_to(None)
        assert plan.applies_to("abc123")

    def test_scoped_plan_applies_only_to_its_hash(self):
        plan = FaultPlan.build({(0, 0): FaultAction("raise")},
                               spec_hash="abc123")
        assert plan.applies_to("abc123")
        assert not plan.applies_to("def456")
        assert not plan.applies_to(None)

    def test_plans_pickle_across_spawn_boundary(self):
        plan = FaultPlan.build({(0, 0): FaultAction("hang", seconds=9)},
                               spec_hash="abc")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.get(0, 0).seconds == 9

    def test_replay_is_exact(self):
        # Same dict -> same entries tuple, regardless of insertion
        # order: the plan is a value, not a schedule of side effects.
        a = FaultPlan.build({(1, 0): FaultAction("raise"),
                             (0, 0): FaultAction("crash")})
        b = FaultPlan.build({(0, 0): FaultAction("crash"),
                             (1, 0): FaultAction("raise")})
        assert a == b


class TestTriggerWorkerFault:
    def test_raise_raises_injected_fault(self):
        with pytest.raises(InjectedFault):
            trigger_worker_fault(FaultAction("raise"))

    def test_slow_returns_after_delay(self):
        # seconds=0 keeps the test instant; the semantics under test is
        # "slow returns normally" (vs crash/raise, which never do).
        trigger_worker_fault(FaultAction("slow", seconds=0.0))

    def test_store_kinds_are_not_worker_faults(self):
        with pytest.raises(ValueError, match="worker-side"):
            trigger_worker_fault(FaultAction("commit-fail"))


class TestCorruptFile:
    def _fresh(self, tmp_path, content=b"x" * 100):
        path = tmp_path / "victim.bin"
        path.write_bytes(content)
        return str(path)

    def test_truncate_halves_the_file(self, tmp_path):
        path = self._fresh(tmp_path)
        corrupt_file(path, "truncate")
        import os
        assert os.path.getsize(path) == 50

    def test_bitflip_changes_exactly_one_byte(self, tmp_path):
        original = bytes(range(100))
        path = self._fresh(tmp_path, original)
        corrupt_file(path, "bitflip")
        damaged = open(path, "rb").read()
        assert len(damaged) == len(original)
        diff = [i for i in range(100) if damaged[i] != original[i]]
        assert len(diff) == 1
        i = diff[0]
        assert damaged[i] == original[i] ^ 0x40

    def test_every_documented_mode_works(self, tmp_path):
        for mode in CORRUPT_MODES:
            corrupt_file(self._fresh(tmp_path), mode)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="corruption mode"):
            corrupt_file(self._fresh(tmp_path), "sandpaper")

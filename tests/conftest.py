"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.n_process import NProcessProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler, RoundRobinScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


def run_protocol(protocol, inputs, seed=0, scheduler=None, max_steps=50_000,
                 record_trace=False):
    """Run one protocol instance to completion and return the result."""
    rng = ReplayableRng(seed)
    if scheduler is None:
        scheduler = RandomScheduler(rng.child("sched"))
    sim = Simulation(protocol, inputs, scheduler, rng.child("kernel"),
                     record_trace=record_trace)
    return sim.run(max_steps)


@pytest.fixture
def rng():
    return ReplayableRng(12345)


@pytest.fixture
def two_process():
    return TwoProcessProtocol(values=("a", "b"))


@pytest.fixture
def three_unbounded():
    return ThreeUnboundedProtocol()


@pytest.fixture
def three_bounded():
    return ThreeBoundedProtocol()


@pytest.fixture(params=[2, 3, 4, 5])
def n_process(request):
    return NProcessProtocol(request.param)

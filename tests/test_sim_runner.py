"""Tests for the Monte-Carlo experiment runner."""

from __future__ import annotations

from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.runner import BatchStats, ExperimentRunner, RunStats


def make_runner(seed=42):
    return ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(values=("a", "b")),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
    )


class TestExperimentRunner:
    def test_run_one_reproducible(self):
        runner = make_runner()
        r1 = runner.run_one(0, max_steps=1000)
        r2 = runner.run_one(0, max_steps=1000)
        assert r1.decisions == r2.decisions
        assert r1.total_steps == r2.total_steps

    def test_runs_are_independent(self):
        runner = make_runner()
        outcomes = {
            tuple(sorted(runner.run_one(i, 1000).decisions.items()))
            for i in range(30)
        }
        # Thirty seeded runs should not all be identical.
        assert len(outcomes) > 1

    def test_run_many_aggregates(self):
        stats = make_runner().run_many(50, max_steps=1000)
        assert stats.n_runs == 50
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0

    def test_mean_steps_reasonable(self):
        stats = make_runner().run_many(200, max_steps=1000)
        mean = stats.mean_steps_to_decide()
        # Theorem 7's corollary bounds the expectation by 10; the
        # random scheduler should sit comfortably under it.
        assert 2.0 <= mean <= 10.0

    def test_tail_probability_monotone(self):
        stats = make_runner().run_many(200, max_steps=1000)
        tails = [stats.tail_probability(k) for k in (0, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))
        assert tails[0] == 1.0  # nobody decides in zero steps
        assert tails[-1] <= 0.1

    def test_worst_processor_costs(self):
        stats = make_runner().run_many(20, max_steps=1000)
        worst = stats.worst_processor_costs()
        pooled = stats.per_processor_costs()
        assert len(worst) == 20
        assert max(worst) <= max(pooled) or not pooled

    def test_mean_coin_flips_present(self):
        stats = make_runner().run_many(50, max_steps=1000)
        assert stats.mean_coin_flips() is not None

    def test_censoring_counts_as_undecided(self):
        # A one-step budget cannot complete any run.
        stats = make_runner().run_many(10, max_steps=1)
        assert stats.completion_rate == 0.0
        assert stats.tail_probability(100) == 1.0

    def test_empty_batch_edge_cases(self):
        empty = BatchStats(runs=[], max_steps=10)
        assert empty.completion_rate == 0.0
        assert empty.mean_steps_to_decide() is None
        assert empty.tail_probability(5) == 0.0
        assert empty.mean_coin_flips() is None

"""Tests for the applications layer: mutex, leader election, choice."""

from __future__ import annotations

import pytest

from repro.apps.choice import coordinate_choice
from repro.apps.leader import elect_leader
from repro.apps.mutex import CriticalSectionLog, Grant, MutualExclusion
from repro.errors import VerificationError


class TestMutualExclusion:
    def test_every_grant_goes_to_a_contender(self):
        arbiter = MutualExclusion(5, seed=7)
        log = arbiter.run_rounds(15)
        assert len(log.grants) == 15
        for g in log.grants:
            assert g.winner in g.contenders
        assert log.mutual_exclusion_holds()

    def test_fixed_contention(self):
        arbiter = MutualExclusion(6, seed=8)
        log = arbiter.run_rounds(10, contention=2)
        assert all(len(g.contenders) == 2 for g in log.grants)

    def test_explicit_round(self):
        arbiter = MutualExclusion(4, seed=9)
        grant = arbiter.arbitrate_round([0, 2, 3])
        assert grant.winner in (0, 2, 3)
        assert grant.round_index == 0

    def test_rounds_are_reproducible(self):
        winners = [
            MutualExclusion(4, seed=33).run_rounds(8).wins_by_processor()
            for _ in range(2)
        ]
        assert winners[0] == winners[1]

    def test_no_processor_monopolizes_forever(self):
        # Over many full-contention rounds, multiple processors win.
        arbiter = MutualExclusion(4, seed=10)
        log = arbiter.run_rounds(30, contention=4)
        assert len(log.wins_by_processor()) >= 2

    def test_rejects_bad_contenders(self):
        arbiter = MutualExclusion(3, seed=0)
        with pytest.raises(ValueError):
            arbiter.arbitrate_round([0, 7])
        with pytest.raises(ValueError):
            arbiter.arbitrate_round([1, 1])
        with pytest.raises(ValueError):
            arbiter.arbitrate_round([2])

    def test_log_rejects_non_contender_winner(self):
        log = CriticalSectionLog()
        with pytest.raises(VerificationError):
            log.record(Grant(round_index=0, winner=5, contenders=(1, 2),
                             steps=10))

    def test_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            MutualExclusion(1)


class TestLeaderElection:
    def test_unanimous_election(self):
        result = elect_leader(5, seed=1)
        assert result.unanimous
        assert 0 <= result.leader < 5
        assert len(result.votes) == 5

    def test_survives_n_minus_one_crashes(self):
        for survivor in range(4):
            crash = [p for p in range(4) if p != survivor]
            result = elect_leader(4, seed=2, crash=crash)
            assert result.votes.get(survivor) == result.leader
            assert set(result.crashed) == set(crash)

    def test_crashed_candidate_can_still_win(self):
        # A processor that wrote its candidacy and died can be elected —
        # the losers only need a consistent answer.
        leaders = set()
        for seed in range(30):
            result = elect_leader(3, seed=seed, crash=[0])
            leaders.add(result.leader)
        assert leaders, "elections must produce leaders"

    def test_rejects_everyone_crashing(self):
        with pytest.raises(ValueError):
            elect_leader(3, crash=[0, 1, 2])

    def test_rejects_single_processor(self):
        with pytest.raises(ValueError):
            elect_leader(1)


class TestChoiceCoordination:
    def test_two_alternatives_direct(self):
        result = coordinate_choice(("left", "right"),
                                   ("left", "right", "left"), seed=3)
        assert result.chosen in ("left", "right")
        assert not result.via_reduction
        assert result.respected_someone

    def test_many_alternatives_use_reduction(self):
        result = coordinate_choice("abcdefgh", ("a", "h", "c"), seed=4)
        assert result.via_reduction
        assert result.chosen in ("a", "h", "c")

    def test_forced_reduction_on_binary(self):
        result = coordinate_choice(("x", "y"), ("x", "y"), seed=5,
                                   use_reduction=True)
        assert result.via_reduction
        assert result.chosen in ("x", "y")

    def test_rejects_preference_outside_alternatives(self):
        with pytest.raises(ValueError):
            coordinate_choice(("a", "b"), ("a", "z"))

    def test_reproducible(self):
        r1 = coordinate_choice("pqrs", ("p", "s", "q"), seed=6)
        r2 = coordinate_choice("pqrs", ("p", "s", "q"), seed=6)
        assert r1.chosen == r2.chosen and r1.steps == r2.steps

"""Span tracer tests: non-perturbation, determinism, v3 journals.

The tracer's contract has three legs:

1. **Non-perturbation** — attaching a tracer must not change a seeded
   run in any observable way: same RunResult fields, same per-processor
   RNG draw counts, same journal bytes.  Enforced differentially across
   the protocol × scheduler × memory matrix (the
   ``test_kernel_fastpath`` idiom).
2. **Deterministic identity** — trace and span ids are pure functions
   of the replay key ``(root_seed, run_index)``; replaying a run
   reproduces its byte-identical span tree.
3. **Journal schema v3** — spans round-trip through the journal's
   optional ``span`` lines without disturbing replay.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.checker.explorer import explore
from repro.core.consensus import solve
from repro.core.n_process import NProcessProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.obs import JsonlJournal, MetricsRegistry, replay_journal
from repro.obs.journal import iter_spans, verify_journal
from repro.obs.tracing import (Span, Tracer, render_span_tree, span_id_for,
                               trace_id_for)
from repro.sched.adversary import DisagreementAdversary, SplitVoteAdversary
from repro.sched.crash import CrashingScheduler, CrashPlan
from repro.sched.simple import (
    FixedScheduler,
    ObliviousScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng


# ----------------------------------------------------------------------
# Harness (mirrors tests/test_kernel_fastpath.py)
# ----------------------------------------------------------------------

def run_one(protocol_factory, inputs, scheduler_factory, seed, *,
            engine="fast", memory=None, max_steps=3_000, sinks=None):
    """One run with the runner's exact seed-derivation discipline."""
    rng = ReplayableRng(seed)
    scheduler = scheduler_factory(rng.child("sched"))
    sim = Simulation(
        protocol_factory(), inputs, scheduler, rng.child("kernel"),
        engine=engine, sinks=sinks, memory=memory,
    )
    result = sim.run(max_steps)
    draws = tuple(r.draws for r in sim._proc_rngs)
    return result, draws


def assert_identical(res_a, res_b):
    assert res_a.protocol_name == res_b.protocol_name
    assert res_a.inputs == res_b.inputs
    assert res_a.decisions == res_b.decisions
    assert res_a.activations == res_b.activations
    assert res_a.decision_activation == res_b.decision_activation
    assert res_a.coin_flips == res_b.coin_flips
    assert res_a.total_steps == res_b.total_steps
    assert res_a.crashed == res_b.crashed
    assert res_a.completed == res_b.completed
    assert res_a.sched_consults == res_b.sched_consults
    assert res_a.final_configuration == res_b.final_configuration


PROTOCOLS = {
    "two_process": (lambda: TwoProcessProtocol(values=("a", "b")),
                    ("a", "b")),
    "three_unbounded": (lambda: ThreeUnboundedProtocol(), ("a", "b", "a")),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b")),
    "n_process_4": (lambda: NProcessProtocol(4), ("a", "b", "b", "a")),
}

SCHEDULERS = {
    "random": lambda rng: RandomScheduler(rng),
    "round_robin": lambda rng: RoundRobinScheduler(),
    "fixed": lambda rng: FixedScheduler([0, 0, 1, 0, 1, 1, 0]),
    "oblivious": lambda rng: ObliviousScheduler(rng),
    "crashing": lambda rng: CrashingScheduler(
        RandomScheduler(rng), CrashPlan(at_step={3: (1,)})),
    "disagreement": lambda rng: DisagreementAdversary(),
    "split_vote": lambda rng: SplitVoteAdversary(),
}

MEMORIES = ("atomic", "regular", "safe")

SEED = 7


# ----------------------------------------------------------------------
# Leg 1: the tracer cannot perturb a run
# ----------------------------------------------------------------------

class TestTracerNonPerturbation:
    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    def test_results_identical_with_tracer(self, protocol_name,
                                           scheduler_name):
        factory, inputs = PROTOCOLS[protocol_name]
        sched = SCHEDULERS[scheduler_name]
        bare, draws_bare = run_one(factory, inputs, sched, SEED)
        traced, draws_traced = run_one(factory, inputs, sched, SEED,
                                       sinks=(Tracer(),))
        assert_identical(bare, traced)
        assert draws_bare == draws_traced

    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("memory", MEMORIES)
    @pytest.mark.parametrize("engine", ("fast", "reference"))
    def test_memory_matrix_identical_with_tracer(self, protocol_name,
                                                 memory, engine):
        factory, inputs = PROTOCOLS[protocol_name]
        sched = SCHEDULERS["random"]
        bare, draws_bare = run_one(factory, inputs, sched, SEED,
                                   engine=engine, memory=memory)
        traced, draws_traced = run_one(factory, inputs, sched, SEED,
                                       engine=engine, memory=memory,
                                       sinks=(Tracer(),))
        assert_identical(bare, traced)
        assert draws_bare == draws_traced

    @pytest.mark.parametrize("memory", MEMORIES)
    def test_journal_bytes_identical_with_tracer(self, tmp_path, memory):
        factory, inputs = PROTOCOLS["three_bounded"]
        sched = SCHEDULERS["split_vote"]
        paths = []
        for label, extra in (("bare", ()), ("traced", (Tracer(),))):
            path = tmp_path / f"{label}.jsonl"
            journal = JsonlJournal(str(path), memory=memory)
            run_one(factory, inputs, sched, SEED, memory=memory,
                    sinks=(journal,) + extra)
            journal.close()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


# ----------------------------------------------------------------------
# Leg 2: deterministic identity
# ----------------------------------------------------------------------

def traced_run(seed, index, clock=None, max_spans=4096, **runner_kw):
    """One runner-keyed run; returns the tracer."""
    from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                      SchedulerSpec)
    from repro.sim.runner import ExperimentRunner

    tracer = Tracer(clock=clock, max_spans=max_spans)
    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=seed,
        sinks=(tracer,),
        **runner_kw,
    )
    runner.run_one(index, 3_000)
    return tracer


class TestDeterministicIdentity:
    def test_id_functions_are_pure(self):
        assert trace_id_for(42, 3) == trace_id_for(42, 3)
        assert len(trace_id_for(42, 3)) == 32
        assert len(span_id_for(42, 3, 0)) == 16
        assert trace_id_for(42, 3) != trace_id_for(42, 4)
        assert trace_id_for(42, 3) != trace_id_for(43, 3)
        assert span_id_for(42, 3, 0) != span_id_for(42, 3, 1)

    def test_runner_key_pins_trace_id(self):
        tracer = traced_run(42, 5)
        spans = tracer.trace()
        assert spans
        assert all(s.trace_id == trace_id_for(42, 5) for s in spans)
        assert spans[0].span_id == span_id_for(42, 5, 0)

    def test_replay_produces_identical_trace(self):
        first = [s.to_dict() for s in traced_run(42, 5).trace()]
        second = [s.to_dict() for s in traced_run(42, 5).trace()]
        assert first == second

    def test_clock_adds_wall_us_but_keeps_ids(self):
        plain = traced_run(42, 5).trace()
        walled = traced_run(42, 5, clock=time.perf_counter).trace()
        assert [s.span_id for s in plain] == [s.span_id for s in walled]
        assert [(s.start, s.end) for s in plain] \
            == [(s.start, s.end) for s in walled]
        assert all("wall_us" not in s.attrs for s in plain)
        assert "wall_us" in walled[0].attrs

    def test_solve_keys_run_zero(self):
        tracer = Tracer()
        solve(TwoProcessProtocol(), ["a", "b"], seed=9,
              sinks=(tracer,))
        assert tracer.trace()[0].trace_id == trace_id_for(9, 0)

    def test_direct_simulation_synthesizes_keys(self):
        tracer = Tracer()
        for expected_index in (0, 1):
            run_one(*PROTOCOLS["two_process"], SCHEDULERS["random"],
                    SEED, sinks=(tracer,))
            assert tracer.trace()[0].trace_id \
                == trace_id_for(0, expected_index)


# ----------------------------------------------------------------------
# Span-tree structure
# ----------------------------------------------------------------------

class TestSpanTree:
    def test_tree_shape(self):
        tracer = traced_run(1, 0)
        spans = tracer.trace()
        run = spans[0]
        assert run.name == "run" and run.parent_id is None
        steps = [s for s in spans if s.name == "step"]
        scheds = [s for s in spans if s.name == "sched"]
        assert len(steps) == run.end  # one step span per kernel step
        assert all(s.parent_id == run.span_id for s in steps + scheds)
        assert [s.start for s in steps] == list(range(run.end))
        assert all(s.end == s.start + 1 for s in steps)
        assert run.attrs["completed"] is True
        assert run.attrs["run_index"] == 0 and run.attrs["root_seed"] == 1

    def test_memory_resolve_spans_nest_under_steps(self):
        from repro.sched.adversary import ReadValueAdversary

        factory, inputs = PROTOCOLS["two_process"]
        tracer = Tracer()
        run_one(factory, inputs,
                lambda rng: ReadValueAdversary(RandomScheduler(rng),
                                               policy="adversarial"),
                SEED, memory="safe", sinks=(tracer,))
        resolves = [s for s in tracer.trace()
                    if s.name == "memory.resolve"]
        assert resolves, "an adversarial safe run must resolve reads"
        steps = {s.span_id: s for s in tracer.trace() if s.name == "step"}
        for r in resolves:
            parent = steps[r.parent_id]
            assert parent.start == r.start
            assert r.attrs["choices"] >= 1

    def test_crash_span_recorded(self):
        factory, inputs = PROTOCOLS["three_bounded"]
        tracer = Tracer()
        result, _ = run_one(
            factory, inputs,
            lambda rng: CrashingScheduler(RandomScheduler(rng),
                                          CrashPlan(at_step={3: 1})),
            SEED, sinks=(tracer,))
        assert result.crashed == frozenset({1})
        crashes = [s for s in tracer.trace() if s.name == "crash"]
        assert len(crashes) == 1
        assert crashes[0].attrs["pid"] == 1

    def test_max_spans_budget(self):
        tracer = traced_run(1, 0, max_spans=8)
        spans = tracer.trace()
        assert len(spans) <= 8
        run = spans[0]
        assert run.attrs["dropped"] > 0
        assert tracer.dropped == run.attrs["dropped"]
        # The run root and the earliest spans survive.
        assert run.name == "run"
        full = traced_run(1, 0).trace()
        assert [s.span_id for s in spans] \
            == [s.span_id for s in full[:len(spans)]]

    def test_render_span_tree(self):
        spans = traced_run(1, 0).trace()
        text = render_span_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("run [0..")
        assert any(line.startswith("  step ") for line in lines)
        assert len(lines) == len(spans)
        assert render_span_tree([]) == "(no spans)"


# ----------------------------------------------------------------------
# Leg 3: journal schema v3 span round-trip
# ----------------------------------------------------------------------

class TestJournalV3Spans:
    def _journal_with_spans(self, tmp_path, n_runs=2):
        path = tmp_path / "traced.jsonl"
        journal = JsonlJournal(str(path))
        tracer = Tracer(journal=journal)
        from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                          SchedulerSpec)
        from repro.sim.runner import ExperimentRunner

        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=21,
            sinks=(journal, tracer),
        )
        for i in range(n_runs):
            runner.run_one(i, 3_000)
        journal.close()
        return path, tracer

    def test_spans_round_trip(self, tmp_path):
        path, tracer = self._journal_with_spans(tmp_path)
        read_back = [Span.from_dict(d) for d in iter_spans(str(path))]
        assert [s.to_dict() for s in read_back] \
            == [s.to_dict() for s in tracer.spans]

    def test_replay_ignores_spans(self, tmp_path):
        path, _ = self._journal_with_spans(tmp_path)
        metrics = replay_journal(str(path))
        assert metrics.counters["runs"].value == 2
        assert metrics.counters["runs_completed"].value == 2

    def test_verify_counts_spans(self, tmp_path):
        path, tracer = self._journal_with_spans(tmp_path)
        verdict = verify_journal(str(path))
        assert verdict.ok and verdict.version == 3
        assert verdict.runs == 2
        assert verdict.spans == len(tracer.spans)

    def test_span_lines_are_tagged(self, tmp_path):
        path, _ = self._journal_with_spans(tmp_path)
        kinds = [json.loads(l)["t"] for l in path.read_text().splitlines()]
        assert kinds.count("span") > 0
        # Spans land after their run's run_end record.
        assert kinds.index("span") > kinds.index("run_end")


# ----------------------------------------------------------------------
# Checker spans
# ----------------------------------------------------------------------

class TestCheckerSpans:
    def test_explore_records_span_and_is_unperturbed(self):
        protocol = TwoProcessProtocol()
        bare = explore(protocol, ("a", "b"))
        tracer = Tracer()
        traced = explore(protocol, ("a", "b"), tracer=tracer)
        assert traced.depth_of == bare.depth_of
        assert traced.edges == bare.edges
        spans = tracer.trace()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "checker.explore"
        assert span.attrs["configs"] == len(bare.depth_of)
        assert span.attrs["complete"] is True
        assert span.end == max(bare.depth_of.values())
        assert "wall_us" not in span.attrs  # no clock attached

    def test_explore_span_keyed_by_run_key(self):
        tracer = Tracer()
        tracer.on_run_key(5, 17)
        explore(TwoProcessProtocol(), ("a", "b"), tracer=tracer)
        assert tracer.trace()[0].trace_id == trace_id_for(5, 17)

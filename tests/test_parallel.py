"""Tests for the process-pool batch engine (`repro.parallel`).

The engine's contract is exact: a sharded batch must be *bit-identical*
to the serial batch with the same root seed — same `RunStats` list,
same merged metrics snapshot, same journal bytes — at any worker count
and shard size.  These tests pay for a handful of real `spawn` pools
(the portable start method) and assert that equality end to end, plus
the planner's partition properties and the descriptive failure modes.
"""

from __future__ import annotations

import pytest

from repro.obs import JsonlJournal, MetricsRegistry
from repro.obs.journal import concatenate_journals
from repro.parallel import (
    BatchSpec,
    ConstantInputs,
    ProtocolSpec,
    SchedulerSpec,
    plan_shards,
    run_parallel,
)
from repro.sim.runner import ExperimentRunner

N_RUNS = 80
MAX_STEPS = 4000
SEED = 1234


def make_two_process_protocol():
    """Module-level factory: picklable without the spec classes."""
    from repro.core import TwoProcessProtocol

    return TwoProcessProtocol()


def make_random_scheduler(rng):
    from repro.sched import RandomScheduler

    return RandomScheduler(rng)


def make_ab_inputs(run_index, rng):
    return ("a", "b")


def make_runner(registry=None, seed=SEED):
    sinks = (registry,) if registry is not None else ()
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=seed,
        sinks=sinks,
    )


@pytest.fixture(scope="module")
def serial(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serial") / "batch.jsonl")
    reg = MetricsRegistry()
    stats = make_runner(reg).run_many(N_RUNS, max_steps=MAX_STEPS,
                                      journal_path=path)
    return stats, reg


@pytest.fixture(scope="module")
def parallel(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("parallel") / "batch.jsonl")
    reg = MetricsRegistry()
    stats = make_runner(reg).run_many(N_RUNS, max_steps=MAX_STEPS,
                                      workers=2, journal_path=path)
    return stats, reg


class TestPlanShards:
    def test_partitions_the_range(self):
        for n, workers, size in ((0, 4, None), (1, 4, None), (17, 4, None),
                                 (17, 4, 3), (100, 7, None), (5, 16, None)):
            shards = plan_shards(n, workers, size)
            covered = [i for lo, hi in shards for i in range(lo, hi)]
            assert covered == list(range(n))
            assert all(lo < hi for lo, hi in shards)

    def test_default_is_one_shard_per_worker(self):
        assert len(plan_shards(100, 4)) == 4
        assert plan_shards(100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_shard_size_overrides(self):
        assert plan_shards(10, 2, shard_size=3) == [
            (0, 3), (3, 6), (6, 9), (9, 10)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 2, shard_size=0)


class TestBitIdenticalMerge:
    def test_run_stats_identical(self, serial, parallel):
        s_stats, _ = serial
        p_stats, _ = parallel
        assert p_stats.runs == s_stats.runs
        assert [r.run_index for r in p_stats.runs] == list(range(N_RUNS))
        assert p_stats.max_steps == s_stats.max_steps

    def test_metrics_snapshot_identical(self, serial, parallel):
        _, s_reg = serial
        p_stats, p_reg = parallel
        assert p_reg.to_dict() == s_reg.to_dict()
        # The runner's attached registry is the merge target.
        assert p_stats.metrics is p_reg

    def test_journal_bytes_identical(self, serial, parallel):
        s_stats, _ = serial
        p_stats, _ = parallel
        with open(s_stats.journal_path, "rb") as fh:
            s_bytes = fh.read()
        with open(p_stats.journal_path, "rb") as fh:
            p_bytes = fh.read()
        assert p_bytes == s_bytes
        assert p_stats.journal_events == s_stats.journal_events

    def test_shard_parts_cleaned_up(self, parallel, tmp_path):
        p_stats, _ = parallel
        import glob

        assert glob.glob(p_stats.journal_path + ".shard*") == []

    def test_shard_size_invariance(self, serial):
        s_stats, s_reg = serial
        reg = MetricsRegistry()
        stats = make_runner(reg).run_many(N_RUNS, max_steps=MAX_STEPS,
                                          workers=2, shard_size=7)
        assert stats.runs == s_stats.runs
        assert reg.to_dict() == s_reg.to_dict()

    def test_more_workers_than_runs(self):
        few_serial = make_runner().run_many(3, max_steps=MAX_STEPS)
        few_parallel = make_runner().run_many(3, max_steps=MAX_STEPS,
                                              workers=8)
        assert few_parallel.runs == few_serial.runs

    def test_module_level_function_factories(self):
        def runner(workers):
            return ExperimentRunner(
                protocol_factory=make_two_process_protocol,
                scheduler_factory=make_random_scheduler,
                inputs_factory=make_ab_inputs,
                seed=SEED,
            )

        assert (runner(2).run_many(6, max_steps=MAX_STEPS, workers=2).runs
                == runner(1).run_many(6, max_steps=MAX_STEPS).runs)


class TestEdgesAndErrors:
    def test_empty_batch(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        stats = make_runner().run_many(0, max_steps=MAX_STEPS, workers=4,
                                       journal_path=path)
        assert stats.runs == []
        assert stats.metrics is None
        # Journal still gets its header line, like a serial empty batch.
        assert stats.journal_events == 1
        serial = make_runner().run_many(0, max_steps=MAX_STEPS,
                                        journal_path=str(tmp_path / "s.jsonl"))
        with open(path) as a, open(serial.journal_path) as b:
            assert a.read() == b.read()

    def test_no_metrics_sink_means_no_metrics(self):
        stats = make_runner().run_many(4, max_steps=MAX_STEPS, workers=2)
        assert stats.metrics is None

    def test_lambda_factories_rejected_with_pointer(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: None,
            scheduler_factory=lambda rng: None,
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=0,
        )
        with pytest.raises(ValueError, match="repro.parallel.tasks"):
            runner.run_many(4, max_steps=100, workers=2)

    def test_journal_sink_rejected_in_parallel(self, tmp_path):
        journal = JsonlJournal(str(tmp_path / "j.jsonl"))
        runner = ExperimentRunner(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=0,
            sinks=(journal,),
        )
        with pytest.raises(ValueError, match="journal_path"):
            runner.run_many(4, max_steps=100, workers=2)
        journal.close()

    def test_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_parallel(
                BatchSpec(ProtocolSpec("two", 2), SchedulerSpec("random"),
                          ConstantInputs(("a", "b")), seed=0),
                4, 100, workers=0,
            )

    def test_concatenate_rejects_headerless_shard(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t":"step","i":0}\n')
        with pytest.raises(ValueError, match="header"):
            concatenate_journals([str(bad)], str(tmp_path / "out.jsonl"))

    def test_concatenate_rejects_empty_shard(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            concatenate_journals([str(empty)], str(tmp_path / "out.jsonl"))


class TestSpecs:
    def test_protocol_spec_names(self):
        assert ProtocolSpec("two", 2)().n_processes == 2
        assert ProtocolSpec("three-unbounded", 3)().n_processes == 3
        assert ProtocolSpec("n", 5)().n_processes == 5
        with pytest.raises(ValueError, match="unknown protocol"):
            ProtocolSpec("nope", 2)()

    def test_scheduler_spec_names(self):
        from repro.sim.rng import ReplayableRng

        rng = ReplayableRng(0)
        for name in ("random", "round-robin", "oblivious", "split-vote",
                     "laggard-freezer"):
            assert SchedulerSpec(name)(rng) is not None
        with pytest.raises(ValueError, match="unknown scheduler"):
            SchedulerSpec("nope")(rng)

    def test_constant_inputs(self):
        f = ConstantInputs(("x", "y"))
        assert f(0, None) == ("x", "y")
        assert f(99, None) == ("x", "y")

"""Real-kill crash safety: SIGKILL a sweep mid-batch, resume, compare.

The store's resume tests simulate interruption in-process (an
exception raised from the ``on_commit`` hook).  This test is the real
thing: a *separate* Python process runs a store-backed sweep with
slowed-down commits, the test SIGKILLs it between shard commits —  no
atexit, no finally, no flush — and then resumes the sweep in-process.
The contract: everything committed before the kill is durable, the
resume executes only the missing shards, and the merged result is
bit-identical to an uninterrupted serial run (RunStats, metrics
snapshot, journal bytes), with ``repro store verify`` clean.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.runner import ExperimentRunner
from repro.store import RunStore

N_RUNS = 60
SHARD = 10
MAX_STEPS = 2_000
SEED = 7

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

#: The victim: a store-backed sweep whose commits are slowed so the
#: parent can reliably land a SIGKILL between two of them.  It prints
#: READY before sweeping so the parent knows imports are done, and
#: DONE after — which a killed run must never reach.
VICTIM = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.obs.metrics import MetricsRegistry
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, \\
    SchedulerSpec
from repro.sim.runner import ExperimentRunner
from repro.store import RunStore

store = RunStore({root!r})
store.on_commit = lambda *args: time.sleep(0.5)
runner = ExperimentRunner(
    protocol_factory=ProtocolSpec("two", 2),
    scheduler_factory=SchedulerSpec("random"),
    inputs_factory=ConstantInputs(("a", "b")),
    seed={seed},
    sinks=(MetricsRegistry(),),
)
print("READY", flush=True)
runner.run_many({n_runs}, max_steps={max_steps}, shard_size={shard},
                store=store, journal_path={journal!r})
print("DONE", flush=True)
"""


def _shard_files(root):
    out = []
    for dirpath, _dirs, files in os.walk(root):
        out.extend(os.path.join(dirpath, f) for f in files
                   if f.startswith("shard-") and f.endswith(".pkl"))
    return out


def _serial_truth(tmp_path):
    journal = str(tmp_path / "serial.jsonl")
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        sinks=(registry,),
    )
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS,
                            journal_path=journal)
    with open(journal, "rb") as fh:
        return stats.runs, registry.to_dict(), fh.read()


@pytest.mark.skipif(os.name != "posix", reason="SIGKILL is POSIX-only")
def test_sigkilled_sweep_resumes_bit_identical(tmp_path):
    root = str(tmp_path / "store")
    victim = tmp_path / "victim.py"
    victim.write_text(VICTIM.format(
        src=SRC, root=root, seed=SEED, n_runs=N_RUNS,
        max_steps=MAX_STEPS, shard=SHARD,
        journal=str(tmp_path / "victim.jsonl")))

    proc = subprocess.Popen([sys.executable, str(victim)],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    try:
        # Kill after at least two shards are durably committed but
        # (thanks to the slowed commits) long before all six are.
        deadline = time.monotonic() + 60
        while len(_shard_files(root)) < 2:
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("victim never committed two shards: "
                            + proc.communicate(timeout=5)[1])
            if proc.poll() is not None:  # pragma: no cover
                pytest.fail("victim exited early: "
                            + proc.communicate(timeout=5)[1])
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        out, _err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover
            proc.kill()
            proc.communicate(timeout=30)

    assert proc.returncode == -signal.SIGKILL
    assert "DONE" not in out, "the kill must interrupt the sweep"
    committed = len(_shard_files(root))
    assert 2 <= committed < N_RUNS // SHARD

    # Resume in-process with the same parameters; only the missing
    # shards execute, and every artifact matches the serial truth.
    base_runs, base_metrics, base_journal = _serial_truth(tmp_path)
    store = RunStore(root)
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        sinks=(registry,),
    )
    journal = str(tmp_path / "resumed.jsonl")
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS,
                            shard_size=SHARD, store=store,
                            journal_path=journal)
    assert stats.store.hits == committed
    assert stats.store.misses == N_RUNS // SHARD - committed
    assert stats.runs == base_runs
    assert registry.to_dict() == base_metrics
    with open(journal, "rb") as fh:
        assert fh.read() == base_journal
    assert all(v.ok for v in store.verify())
    assert len(store.verify()) == N_RUNS // SHARD

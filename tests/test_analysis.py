"""Tests for the theory formulas and statistics helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import (
    Summary,
    empirical_tail,
    fit_geometric_rate,
    histogram,
    mean_confidence_interval,
    percentile,
    summarize,
)
from repro.analysis.theory import (
    expected_steps_series,
    geometric_tail,
    multivalued_instance_count,
    theory_tail_curve,
    three_unbounded_num_tail_bound,
    two_process_expected_steps_bound,
    two_process_tail_bound,
)


class TestTheory:
    def test_two_process_tail_values(self):
        # Proof-implied: P(undecided after j steps) ≤ (3/4)^((j-2)/2),
        # with the paper's "k + 2 steps" accounting (finding F2).
        assert two_process_tail_bound(0) == 1.0
        assert two_process_tail_bound(2) == 1.0
        assert two_process_tail_bound(4) == pytest.approx(0.75)
        assert two_process_tail_bound(6) == pytest.approx(0.75 ** 2)

    def test_two_process_tail_paper_stated(self):
        from repro.analysis.theory import two_process_tail_paper_stated

        assert two_process_tail_paper_stated(4) == pytest.approx(0.25)
        assert two_process_tail_paper_stated(6) == pytest.approx(1 / 16)
        # The printed curve is strictly tighter than the proof supports.
        for k in range(4, 20, 2):
            assert (two_process_tail_paper_stated(k)
                    < two_process_tail_bound(k))

    def test_two_process_tail_monotone(self):
        vals = [two_process_tail_bound(k) for k in range(2, 20, 2)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_expected_steps_bound_is_ten(self):
        assert two_process_expected_steps_bound() == 10.0

    def test_three_unbounded_tail(self):
        assert three_unbounded_num_tail_bound(0) == 1.0
        assert three_unbounded_num_tail_bound(1) == pytest.approx(0.75)
        assert three_unbounded_num_tail_bound(10) == pytest.approx(0.75 ** 10)

    def test_geometric_tail_validation(self):
        with pytest.raises(ValueError):
            geometric_tail(1.5, 3)
        with pytest.raises(ValueError):
            geometric_tail(0.5, -1)
        with pytest.raises(ValueError):
            two_process_tail_bound(-1)

    def test_instance_count(self):
        assert multivalued_instance_count(2) == 1
        assert multivalued_instance_count(5) == 3
        with pytest.raises(ValueError):
            multivalued_instance_count(1)

    def test_expected_steps_series(self):
        # Σ (1/2)^k over k >= 0 is 2.
        val = expected_steps_series(lambda k: 0.5 ** k, 60)
        assert val == pytest.approx(2.0, abs=1e-12)

    def test_theory_tail_curve(self):
        ks = [0, 2, 4]
        curve = theory_tail_curve(two_process_tail_bound, ks)
        assert curve == [two_process_tail_bound(k) for k in ks]


class TestStats:
    def test_summarize(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.n == 5 and s.mean == 3.0
        assert s.minimum == 1 and s.maximum == 5
        assert s.p50 == 3

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_nearest_rank(self):
        xs = sorted([10, 20, 30, 40])
        assert percentile(xs, 0.5) == 20
        assert percentile(xs, 0.99) == 40

    def test_render(self):
        text = summarize([1.0, 2.0]).render("steps")
        assert text.startswith("steps:") and "mean=1.50" in text

    def test_confidence_interval_brackets_mean(self):
        mean, lo, hi = mean_confidence_interval([5.0] * 50)
        assert lo == mean == hi == 5.0
        mean, lo, hi = mean_confidence_interval(list(range(100)))
        assert lo < mean < hi

    def test_empirical_tail(self):
        tail = empirical_tail([1, 2, 3, 4], ks=[0, 2, 4])
        assert tail == [1.0, 0.5, 0.0]

    def test_histogram(self):
        assert histogram([3, 1, 3, 2, 3]) == {1: 1, 2: 1, 3: 3}

    def test_fit_geometric_rate_exact(self):
        ks = list(range(1, 10))
        tails = [0.6 ** k for k in ks]
        assert fit_geometric_rate(ks, tails) == pytest.approx(0.6, rel=1e-9)

    def test_fit_geometric_rate_ignores_zeros(self):
        ks = [1, 2, 3, 4]
        tails = [0.5, 0.25, 0.0, 0.0]
        assert fit_geometric_rate(ks, tails) == pytest.approx(0.5, rel=1e-9)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_geometric_rate([1], [0.5])
        with pytest.raises(ValueError):
            fit_geometric_rate([1, 1], [0.5, 0.5])

"""Tests for the baselines: the naive protocol and the deterministic zoo."""

from __future__ import annotations

import pytest

from repro.checker import analyze_deterministic
from repro.core.deterministic import (
    TwoProcessDeterministic,
    greedy_min,
    mirror,
    obstinate,
    priority,
    zoo,
)
from repro.core.naive import NaiveProtocol
from repro.errors import ProtocolError
from repro.sched.adversary import NaiveKillerAdversary
from repro.sched.simple import FixedScheduler, RandomScheduler, RoundRobinScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng

from conftest import run_protocol


class TestNaiveProtocol:
    def test_decides_under_fair_scheduling(self):
        # Not *wrong* under benign schedules — just killable.
        done = 0
        for seed in range(20):
            result = run_protocol(NaiveProtocol(3), ("a", "b", "a"),
                                  seed=seed, max_steps=5000)
            done += result.completed
            assert result.consistent
        assert done >= 18  # overwhelmingly terminates when fair

    def test_unanimous_inputs_decide_immediately(self):
        result = run_protocol(NaiveProtocol(3), ("a", "a", "a"),
                              scheduler=RoundRobinScheduler())
        assert result.completed
        assert all(
            result.decision_activation[p] == 3 for p in range(3)
        )  # write + two reads

    def test_killer_starves_victim(self):
        result = run_protocol(NaiveProtocol(3), ("b", "b", "b"), seed=3,
                              scheduler=NaiveKillerAdversary(),
                              max_steps=4000)
        assert 2 not in result.decisions
        assert result.activations[2] > 1000

    def test_scales_to_more_processors(self):
        result = run_protocol(NaiveProtocol(5), tuple("ababa"), seed=9,
                              max_steps=200_000)
        assert result.consistent

    def test_rejects_single_processor(self):
        with pytest.raises(ValueError):
            NaiveProtocol(1)


class TestDeterministicZoo:
    def test_zoo_members_are_deterministic(self):
        for p in zoo():
            assert not p.is_randomized
            state = p.initial_state(0, "a")
            assert len(p.branches(0, state)) == 1

    def test_every_member_fails_theorem4(self):
        for p in zoo():
            report = analyze_deterministic(p)
            assert report.verdict in (
                "violates consistency",
                "violates nontriviality",
                "admits an infinite non-deciding schedule",
            )
            assert report.states_explored > 0

    def test_lasso_witnesses_replay(self):
        """The checker's schedules are not just certificates on paper:
        replaying prefix + many cycle repetitions leaves every processor
        that participates in the cycle activated unboundedly yet
        undecided — the exact negation of the termination property."""
        for p in (obstinate(), mirror(), priority(), greedy_min()):
            report = analyze_deterministic(p)
            if report.lasso_cycle is None:
                continue
            repeats = 50
            schedule = (list(report.lasso_prefix)
                        + list(report.lasso_cycle) * repeats)
            sim = Simulation(type(p)(p._rule, "replay"), report.inputs,
                             FixedScheduler(schedule), ReplayableRng(0))
            for _ in range(len(schedule)):
                if sim.finished:
                    break
                sim.step()
            cycle_pids = set(report.lasso_cycle)
            for pid in cycle_pids:
                assert pid not in sim.decisions, (
                    f"{p.name}: cycle participant P{pid} decided "
                    f"{sim.decisions[pid]!r} — not a witness"
                )
                assert sim.activations[pid] >= repeats, (
                    f"{p.name}: P{pid} was not actually activated "
                    "unboundedly along the lasso"
                )

    def test_mirror_lasso_is_fair(self):
        report = analyze_deterministic(mirror())
        assert report.lasso_cycle is not None
        assert report.fair, "mirror's dance is a fair non-deciding schedule"

    def test_priority_is_consistent_but_nonterminating(self):
        report = analyze_deterministic(priority())
        assert report.verdict == "admits an infinite non-deciding schedule"

    def test_randomized_protocol_rejected(self):
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(ProtocolError):
            analyze_deterministic(TwoProcessProtocol())

    def test_zoo_members_work_on_unanimous_inputs(self):
        # Every zoo member *does* decide when both inputs agree — the
        # impossibility bites only on mixed inputs.
        for p in zoo():
            result = run_protocol(type(p)(p._rule, "rerun"), ("a", "a"),
                                  scheduler=RoundRobinScheduler(),
                                  max_steps=100)
            assert result.completed
            assert result.decided_values == {"a"}

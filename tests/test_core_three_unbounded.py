"""Tests for the three-processor unbounded protocol (Figure 2)."""

from __future__ import annotations

import pytest

from repro.checker import verify_safety
from repro.core.rules import PrefNum
from repro.core.three_unbounded import ThreeUnboundedProtocol, TUState
from repro.sched.adversary import LaggardFreezer, SplitVoteAdversary
from repro.sched.simple import FixedScheduler, RandomScheduler
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


class TestPhaseStructure:
    def setup_method(self):
        self.p = ThreeUnboundedProtocol()

    def test_initial_write_carries_input_and_num_one(self):
        s = self.p.initial_state(0, "a")
        (branch,) = self.p.branches(0, s)
        assert branch.op == WriteOp("r0", PrefNum("a", 1))

    def test_phase_reads_both_other_registers(self):
        s = self.p.initial_state(1, "b")
        s = self.p.observe(1, s, WriteOp("r1", s.reg), None)
        (b1,) = self.p.branches(1, s)
        assert b1.op == ReadOp("r0")
        s = self.p.observe(1, s, b1.op, PrefNum("a", 1))
        (b2,) = self.p.branches(1, s)
        assert b2.op == ReadOp("r2")

    def test_coin_between_candidate_and_old(self):
        s = TUState(pc="write", reg=PrefNum("a", 1), oldreg=PrefNum("a", 1),
                    cand=PrefNum("a", 2))
        heads, tails = self.p.branches(0, s)
        assert heads.op.value == PrefNum("a", 2)
        assert tails.op.value == PrefNum("a", 1)

    def test_registers_are_one_writer_two_reader(self):
        for spec in self.p.registers():
            assert len(spec.writers) == 1
            assert len(spec.readers) == 2

    def test_decision_happens_at_second_read(self):
        # Own [a,1]; others read as [a,1] and [a,1]: case A decides.
        s = TUState(pc="read2", reg=PrefNum("a", 1), read_a=PrefNum("a", 1))
        s2 = self.p.observe(0, s, ReadOp("r2"), PrefNum("a", 1))
        assert self.p.output(0, s2) == "a"


class TestSrswLayout:
    def test_registers_are_single_reader(self):
        p = ThreeUnboundedProtocol(layout="srsw")
        specs = p.registers()
        assert len(specs) == 6
        for spec in specs:
            assert len(spec.writers) == 1 and len(spec.readers) == 1

    def test_writer_updates_both_copies(self):
        p = ThreeUnboundedProtocol(layout="srsw")
        result = run_protocol(p, ("a", "b", "a"), seed=5, record_trace=True)
        assert result.completed and result.consistent
        writes_1 = result.trace.writes_to("r0to1")
        writes_2 = result.trace.writes_to("r0to2")
        # P0's initial write plus phase writes go to both copies.
        assert writes_1 and writes_2

    def test_srsw_monte_carlo_correct(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(layout="srsw"),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b", "b"),
            seed=19,
        )
        stats = runner.run_many(200, max_steps=20_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            ThreeUnboundedProtocol(layout="mesh")


class TestCorrectness:
    @pytest.mark.parametrize("inputs", [
        ("a", "b", "a"), ("a", "b", "b"), ("a", "a", "a"), ("b", "b", "a"),
    ])
    def test_exhaustive_safety_bounded_depth(self, inputs):
        report = verify_safety(ThreeUnboundedProtocol(), inputs,
                               max_depth=13, max_states=200_000)
        assert report.ok

    def test_monte_carlo_consistency(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: rng.choice(
                [("a", "b", "a"), ("a", "b", "b"), ("b", "a", "a")]
            ),
            seed=29,
        )
        stats = runner.run_many(400, max_steps=20_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0

    @pytest.mark.parametrize("adversary", [
        lambda rng: SplitVoteAdversary(),
        lambda rng: LaggardFreezer(),
    ])
    def test_adversarial_termination(self, adversary):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(),
            scheduler_factory=adversary,
            inputs_factory=lambda i, rng: ("a", "b", "b"),
            seed=37,
        )
        stats = runner.run_many(200, max_steps=20_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0

    def test_solo_runner_decides(self):
        # Wait-freedom: a processor scheduled alone races to num 2 and
        # decides its own input (others still at ⊥/0).
        result = run_protocol(ThreeUnboundedProtocol(), ("b", "a", "a"),
                              scheduler=FixedScheduler([0] * 100))
        assert result.decisions[0] == "b"

    def test_num_growth_is_modest(self):
        # Theorem 9: P(num = k) ≤ (3/4)^k, so double-digit nums should
        # essentially never appear in a few hundred runs.
        worst = 0
        for seed in range(100):
            result = run_protocol(ThreeUnboundedProtocol(), ("a", "b", "a"),
                                  seed=seed)
            for reg in result.final_configuration.registers:
                worst = max(worst, reg.num)
        assert worst < 30

    def test_expected_phases_constant(self):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b", "a"),
            seed=41,
        )
        stats = runner.run_many(300, max_steps=20_000)
        # "The expected running time of the protocol is a small
        # constant" (corollary to Theorem 9) — steps per processor,
        # at 3 steps per phase, should average well under 20 phases.
        assert stats.mean_steps_to_decide() < 60

"""Tests for the bounded-horizon expectimax adversary."""

from __future__ import annotations

import pytest

from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.adversary import DisagreementAdversary
from repro.sched.lookahead import LookaheadAdversary
from repro.sched.optimal import solve_game
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


def mean_cost(protocol_factory, scheduler_factory, inputs, n_runs=200,
              seed=13, max_steps=60_000):
    runner = ExperimentRunner(
        protocol_factory=protocol_factory,
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: inputs,
        seed=seed,
    )
    stats = runner.run_many(n_runs, max_steps)
    assert stats.completion_rate == 1.0
    assert stats.n_consistency_violations == 0
    return stats.mean_steps_to_decide()


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LookaheadAdversary(horizon=0)
        with pytest.raises(ValueError):
            LookaheadAdversary(discount=0.0)
        with pytest.raises(ValueError):
            LookaheadAdversary(discount=1.5)

    def test_name_shows_horizon(self):
        assert "h=5" in LookaheadAdversary(5).name


class TestCalibration:
    def test_stronger_than_heuristic_on_two_process(self):
        heuristic = mean_cost(lambda: TwoProcessProtocol(),
                              lambda rng: DisagreementAdversary(),
                              ("a", "b"))
        lookahead = mean_cost(lambda: TwoProcessProtocol(),
                              lambda rng: LookaheadAdversary(4),
                              ("a", "b"))
        assert lookahead > heuristic + 2.0

    def test_bounded_by_the_exact_game_value(self):
        # No adversary — lookahead included — may beat the solved game.
        opt = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="processor:0")
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: LookaheadAdversary(4),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=13,
        )
        stats = runner.run_many(400, 4000)
        costs = [r.steps_to_decide[0] for r in stats.runs]
        mean = sum(costs) / len(costs)
        assert mean <= opt.value + 1.0  # sampling slack

    def test_cannot_break_three_process_protocols(self):
        for pf, inputs in [
            (lambda: ThreeUnboundedProtocol(), ("a", "b", "a")),
            (lambda: ThreeBoundedProtocol(), ("a", "b", "a")),
        ]:
            cost = mean_cost(pf, lambda rng: LookaheadAdversary(3),
                             inputs, n_runs=60)
            assert cost < 200  # terminates briskly despite the adversary

    def test_deterministic_given_configuration(self):
        # Same configs -> same choices: two identical runs coincide.
        r1 = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=9,
                          scheduler=LookaheadAdversary(3),
                          record_trace=True)
        r2 = run_protocol(TwoProcessProtocol(), ("a", "b"), seed=9,
                          scheduler=LookaheadAdversary(3),
                          record_trace=True)
        assert r1.trace.schedule() == r2.trace.schedule()

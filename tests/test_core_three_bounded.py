"""Tests for the bounded-register three-processor protocol (Section 6)."""

from __future__ import annotations

import pytest

from repro.checker import verify_safety
from repro.core.three_bounded import (
    BReg,
    CHECKPOINTS,
    INITIAL,
    MIXED,
    ThreeBoundedProtocol,
    advance,
    ahead,
)
from repro.sched.adversary import LaggardFreezer, SplitVoteAdversary
from repro.sched.simple import BlockScheduler, FixedScheduler, RandomScheduler
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


def rg(pos, val, seen=None, mode="run"):
    return BReg(mode=mode, pos=pos, val=val, seen=seen)


class TestCircularArithmetic:
    def test_ahead_basic(self):
        assert ahead(3, 1) == 2
        assert ahead(1, 3) == -2
        assert ahead(5, 5) == 0

    def test_ahead_wraps(self):
        assert ahead(1, 9) == 1     # 9 < 1 circularly (paper: "9 < 1")
        assert ahead(2, 8) == 3
        assert ahead(8, 2) == -3

    def test_ahead_range(self):
        for x in range(1, 10):
            for y in range(1, 10):
                assert -4 <= ahead(x, y) <= 4

    def test_advance_wraps_nine_to_one(self):
        assert advance(9) == 1
        assert [advance(p) for p in range(1, 9)] == list(range(2, 10))

    def test_checkpoints(self):
        assert CHECKPOINTS == (3, 6, 9)


class TestComputeRules:
    """Unit tests of the phase computation on crafted register views."""

    def setup_method(self):
        self.p = ThreeBoundedProtocol()

    def compute(self, own, others, recent=None):
        recent = recent if recent is not None else frozenset({(own.pos, own.val)})
        return self.p._compute(own, recent, others)

    def test_t1_adopts_visible_decision(self):
        kind, v = self.compute(rg(2, "a"), [BReg(mode="dec", pos=0, val="b"),
                                            rg(1, "a")])
        assert (kind, v) == ("dec", "b")

    def test_t2_decides_two_ahead_of_both(self):
        kind, v = self.compute(rg(5, "a"), [rg(3, "b"), rg(2, "b")])
        assert (kind, v) == ("dec", "a")

    def test_t2_blocked_by_close_fellow(self):
        kind, payload = self.compute(rg(5, "a"), [rg(4, "b"), rg(2, "b")])
        assert kind == "cand"

    def test_t2_wraps_circularly(self):
        kind, v = self.compute(rg(2, "b"), [rg(9, "a"), rg(9, "a")])
        assert (kind, v) == ("dec", "b")

    def test_t3_unanimous_seen_and_values(self):
        kind, v = self.compute(
            rg(4, "a", seen="a"),
            [rg(4, "a", seen="a"), rg(5, "a", seen="a")],
        )
        assert (kind, v) == ("dec", "a")

    def test_t3_blocked_by_mixed_seen(self):
        kind, _ = self.compute(
            rg(4, "a", seen=MIXED),
            [rg(4, "a", seen=MIXED), rg(5, "a", seen=MIXED)],
        )
        assert kind == "cand"

    def test_t3_blocked_by_value_drift(self):
        # Our strengthening: stale all-"a" seen fields do not decide if
        # someone currently holds b.
        kind, payload = self.compute(
            rg(4, "b", seen="a"),
            [rg(4, "a", seen="a"), rg(5, "a", seen="a")],
        )
        assert kind == "cand"

    def test_advance_adopts_unanimous_leader_value(self):
        kind, cand = self.compute(rg(4, "b"), [rg(5, "a"), rg(5, "a")])
        assert kind == "cand"
        assert cand.mode == "run" and cand.pos == 5 and cand.val == "a"

    def test_advance_keeps_value_on_split_leaders(self):
        kind, cand = self.compute(rg(4, "b"), [rg(5, "a"), rg(5, "b")])
        assert cand.val == "b"

    def test_checkpoint_gate_enters_wait(self):
        # Leader at checkpoint 3, laggard two behind: wait, not cross.
        kind, cand = self.compute(rg(3, "a"), [rg(2, "a"), rg(1, "b")])
        assert cand.mode == "wait" and cand.pos == 3

    def test_checkpoint_crossing_when_laggard_close(self):
        kind, cand = self.compute(rg(3, "a"), [rg(2, "a"), rg(2, "b")])
        assert cand.mode == "run" and cand.pos == 4

    def test_crossing_updates_seen_clean(self):
        recent = frozenset({(1, "a"), (2, "a"), (3, "a")})
        kind, cand = self.compute(rg(3, "a"), [rg(2, "a"), rg(3, "a")],
                                  recent=recent)
        assert cand.pos == 4 and cand.seen == "a"

    def test_crossing_updates_seen_mixed(self):
        recent = frozenset({(1, "a"), (2, "b"), (3, "a")})
        kind, cand = self.compute(rg(3, "a"), [rg(2, "a"), rg(3, "a")],
                                  recent=recent)
        assert cand.seen is MIXED

    def test_non_checkpoint_needs_no_gate(self):
        kind, cand = self.compute(rg(4, "a"), [rg(4, "b"), rg(5, "b")])
        assert cand.pos == 5

    def test_wait_exit_when_all_within_one(self):
        kind, cand = self.compute(rg(3, "a", mode="wait"),
                                  [rg(2, "b"), rg(3, "b")])
        assert cand.mode == "run" and cand.pos == 3 and cand.val == "a"

    def test_wait_a2_decides_on_equal_fellow(self):
        kind, v = self.compute(rg(3, "a", mode="wait"),
                               [rg(3, "a", mode="wait"), rg(1, "b")])
        assert (kind, v) == ("dec", "a")

    def test_wait_a2_adopts_differing_fellow(self):
        kind, cand = self.compute(rg(3, "a", mode="wait"),
                                  [rg(3, "b", mode="wait"), rg(1, "b")])
        assert cand.mode == "wait" and cand.val == "b"

    def test_wait_with_runmode_fellow_same_value_decides(self):
        kind, v = self.compute(rg(3, "a", mode="wait"),
                               [rg(2, "a"), rg(1, "b")])
        assert (kind, v) == ("dec", "a")


class TestBoundedness:
    def test_register_domain_is_finite(self):
        # Every register value ever written comes from the finite set
        # {run, wait} × 9 positions × 2 values × seen-domain ∪ {dec-a,
        # dec-b}: check over many traced runs.
        seen_values = set()
        for seed in range(30):
            result = run_protocol(ThreeBoundedProtocol(), ("a", "b", "a"),
                                  seed=seed, record_trace=True)
            for step in result.trace:
                if step.op.kind == "write":
                    seen_values.add(step.op.value)
        for v in seen_values:
            assert v.mode in ("run", "wait", "dec")
            if v.mode != "dec":
                assert 1 <= v.pos <= 9
            assert v.val in ("a", "b")
            assert v.seen in (None, "a", "b", MIXED)
        # The whole domain is small — the paper's point.
        assert len(seen_values) <= 2 + 9 * 2 * 4 + 3 * 2 * 4

    def test_window_invariant_under_random_schedules(self):
        # All three non-decided registers stay within a width-5 window:
        # pairwise circular distance at most 4.
        for seed in range(20):
            result = run_protocol(ThreeBoundedProtocol(), ("a", "b", "b"),
                                  seed=seed, record_trace=True)
            # Re-run step by step checking the invariant.
            from repro.sim.kernel import Simulation
            from repro.sim.rng import ReplayableRng
            from repro.sched.simple import RandomScheduler

            rng = ReplayableRng(seed)
            sim = Simulation(ThreeBoundedProtocol(), ("a", "b", "b"),
                             RandomScheduler(rng.child("sched")),
                             rng.child("kernel"))
            while not sim.finished and sim.step_index < 5000:
                sim.step()
                regs = [r for r in sim.configuration.registers
                        if r.mode != "dec" and r.val is not None]
                for x in regs:
                    for y in regs:
                        assert abs(ahead(x.pos, y.pos)) <= 4, (
                            f"window violated at step {sim.step_index}: "
                            f"{sim.configuration.registers}"
                        )


class TestCorrectness:
    @pytest.mark.parametrize("inputs", [
        ("a", "b", "a"), ("a", "b", "b"), ("a", "a", "a"),
    ])
    def test_exhaustive_safety_bounded_depth(self, inputs):
        report = verify_safety(ThreeBoundedProtocol(), inputs,
                               max_depth=13, max_states=200_000)
        assert report.ok

    @pytest.mark.parametrize("scheduler_factory", [
        lambda rng: RandomScheduler(rng),
        lambda rng: SplitVoteAdversary(),
        lambda rng: LaggardFreezer(),
        lambda rng: BlockScheduler(5),
    ])
    def test_monte_carlo_correct_under_adversaries(self, scheduler_factory):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeBoundedProtocol(),
            scheduler_factory=scheduler_factory,
            inputs_factory=lambda i, rng: rng.choice(
                [("a", "b", "a"), ("a", "b", "b"), ("a", "a", "a")]
            ),
            seed=43,
        )
        stats = runner.run_many(200, max_steps=50_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0

    def test_solo_runner_decides_at_checkpoint(self):
        # Alone, a processor advances 1→2→3 and T2-decides (both others
        # unwritten at position 1, two behind).
        result = run_protocol(ThreeBoundedProtocol(), ("b", "a", "a"),
                              scheduler=FixedScheduler([0] * 200))
        assert result.decisions[0] == "b"

    def test_decision_is_written_to_register(self):
        result = run_protocol(ThreeBoundedProtocol(), ("a", "b", "a"),
                              seed=11, record_trace=True)
        assert result.completed
        dec_writes = [
            s for s in result.trace
            if s.op.kind == "write" and s.op.value.mode == "dec"
        ]
        assert dec_writes, "deciding must publish a dec value (T1 relies on it)"

    def test_binary_domain_enforced(self):
        with pytest.raises(ValueError):
            ThreeBoundedProtocol(values=("a", "b", "c"))

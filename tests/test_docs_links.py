"""Dead-link checker for the repo's own documentation.

Every intra-repo markdown link in ``README.md`` and ``docs/*.md`` must
point at a file that exists — docs that cross-reference each other
(README's architecture map, the IR spec's related-reading trailer, the
benchmark handbook's envelope list) rot silently otherwise.  External
URLs and pure in-page anchors are out of scope; a ``path#anchor`` link
is checked for the ``path`` part only.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

# [text](target) — excluding images and reference-style definitions.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _intra_repo_links(path: Path):
    """Yield (lineno, raw target, resolved path) for local links."""
    in_code_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:        # pure in-page anchor
                continue
            yield lineno, target, (path.parent / target_path).resolve()


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_no_dead_intra_repo_links(doc):
    dead = [
        f"{doc.relative_to(REPO)}:{lineno}: [{target}] -> missing "
        f"{resolved.relative_to(REPO) if resolved.is_relative_to(REPO) else resolved}"
        for lineno, target, resolved in _intra_repo_links(doc)
        if not resolved.exists()
    ]
    assert not dead, "dead intra-repo links:\n" + "\n".join(dead)


def test_docs_are_scanned_at_all():
    """Guard the checker itself: the glob must find the doc set."""
    names = {p.name for p in DOC_FILES}
    assert "README.md" in names and "IR.md" in names
    assert len(DOC_FILES) >= 8

"""Tests for the multi-writer atomic register construction."""

from __future__ import annotations

import pytest

from repro.registers.conditions import check_atomic_bruteforce
from repro.registers.constructions import MWMRAtomicRegister
from repro.registers.history import History, Interval
from repro.registers.interval import IntervalSim


def run_mwmr_workload(seed: int, n_writers: int = 2, n_readers: int = 2,
                      writes_each: int = 2, reads_each: int = 3):
    """Concurrent multi-writer workload; returns the logical history."""
    sim = IntervalSim(seed=seed)
    reg = MWMRAtomicRegister(sim, "x", initial=0,
                             n_writers=n_writers, n_readers=n_readers)
    history = History(initial=0)

    def writer(w):
        def program():
            for i in range(writes_each):
                value = 100 * (w + 1) + i  # globally unique
                invoke = sim.clock.tick()
                yield
                yield from reg.write_by_gen(w, value)
                respond = sim.clock.tick()
                history.record(Interval(kind="write", value=value,
                                        thread=f"W{w}", invoke=invoke,
                                        respond=respond))
        return program()

    def reader(r):
        def program():
            for _ in range(reads_each):
                invoke = sim.clock.tick()
                yield
                value = yield from reg.read_gen(r)
                respond = sim.clock.tick()
                history.record(Interval(kind="read", value=value,
                                        thread=f"R{r}", invoke=invoke,
                                        respond=respond))
        return program()

    for w in range(n_writers):
        sim.spawn(f"W{w}", writer(w))
    for r in range(n_readers):
        sim.spawn(f"R{r}", reader(r))
    sim.run()
    return history, reg


class TestMWMRAtomic:
    @pytest.mark.parametrize("seed", range(12))
    def test_linearizable_under_concurrent_writers(self, seed):
        history, _reg = run_mwmr_workload(seed)
        # Multi-writer histories need the general linearization oracle
        # (the fast checker's single-writer precondition fails, by
        # design).
        result = check_atomic_bruteforce(history, max_ops=12)
        assert result.ok, f"seed {seed}:\n{history.render()}"

    def test_sequential_semantics(self):
        sim = IntervalSim(seed=0)
        reg = MWMRAtomicRegister(sim, "x", initial=7, n_writers=2,
                                 n_readers=1)
        out = []

        def program():
            v0 = yield from reg.read_gen(0)
            yield from reg.write_by_gen(0, 10)
            v1 = yield from reg.read_gen(0)
            yield from reg.write_by_gen(1, 20)
            v2 = yield from reg.read_gen(0)
            out.extend([v0, v1, v2])

        sim.spawn("seq", program())
        sim.run()
        assert out == [7, 10, 20]

    def test_writer_timestamps_strictly_grow(self):
        history, _ = run_mwmr_workload(3, writes_each=3, reads_each=1)
        # Sequential writes by the same writer must be observed in
        # order by a subsequent read: the final read of a quiescent
        # history returns the last write overall.
        sim = IntervalSim(seed=9)
        reg = MWMRAtomicRegister(sim, "x", initial=0, n_writers=3,
                                 n_readers=1)
        out = []

        def program():
            yield from reg.write_by_gen(0, 1)
            yield from reg.write_by_gen(1, 2)
            yield from reg.write_by_gen(2, 3)
            v = yield from reg.read_gen(0)
            out.append(v)

        sim.spawn("p", program())
        sim.run()
        assert out == [3]

    def test_validates_ids(self):
        sim = IntervalSim(seed=0)
        reg = MWMRAtomicRegister(sim, "x", initial=0, n_writers=2,
                                 n_readers=2)
        with pytest.raises(ValueError):
            next(reg.write_by_gen(5, 1))
        with pytest.raises(ValueError):
            next(reg.read_gen(7))
        with pytest.raises(ValueError):
            MWMRAtomicRegister(sim, "y", 0, n_writers=0, n_readers=1)

    def test_cost_exceeds_mrsw(self):
        from repro.registers.workload import run_register_workload

        mrsw = run_register_workload("mrsw-atomic", seed=1, n_readers=2,
                                     n_reads=4)
        _history, reg = run_mwmr_workload(1)
        ops = 2 * 2 + 2 * 3  # writes + reads issued above
        mwmr_cost = reg.primitive_events / ops
        assert mwmr_cost > mrsw.events_per_op

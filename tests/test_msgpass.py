"""Tests for the message-passing substrate and the Ben-Or baseline."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.msgpass import (
    BenOrProtocol,
    FifoDelivery,
    MPSimulation,
    PartitionAdversary,
    RandomDelivery,
)
from repro.sim.rng import ReplayableRng


def run_benor(n, t, inputs, scheduler=None, seed=0, budget=100_000,
              thresholds="absolute"):
    rng = ReplayableRng(seed)
    if scheduler is None:
        scheduler = RandomDelivery(rng.child("net"))
    sim = MPSimulation(BenOrProtocol(n, t, thresholds=thresholds),
                       inputs, scheduler, rng)
    return sim.run(budget)


class TestNetMachine:
    def test_start_broadcasts(self):
        rng = ReplayableRng(1)
        sim = MPSimulation(BenOrProtocol(3, 1), (0, 1, 1),
                           FifoDelivery(), rng)
        # Each of 3 processes broadcasts to 3 destinations.
        assert sim.messages_sent == 9
        assert len(sim.in_flight) == 9

    def test_fifo_delivery_is_deterministic(self):
        r1 = run_benor(3, 1, (0, 1, 1), scheduler=FifoDelivery(), seed=3)
        r2 = run_benor(3, 1, (0, 1, 1), scheduler=FifoDelivery(), seed=3)
        assert r1.decisions == r2.decisions
        assert r1.deliveries == r2.deliveries

    def test_crash_drops_future_deliveries(self):
        rng = ReplayableRng(2)
        sim = MPSimulation(BenOrProtocol(3, 1), (0, 0, 0),
                           FifoDelivery(), rng)
        sim.crash(2)
        assert all(m.dest != 2 for m in sim.deliverable())
        with pytest.raises(SimulationError):
            sim.crash(2)

    def test_wrong_arity_rejected(self):
        rng = ReplayableRng(0)
        with pytest.raises(SimulationError):
            MPSimulation(BenOrProtocol(3, 1), (0, 1), FifoDelivery(), rng)

    def test_stuck_reported_when_adversary_rests(self):
        result = run_benor(4, 2, (0, 0, 1, 1),
                           scheduler=PartitionAdversary([[0, 1], [2, 3]]),
                           budget=4_000)
        assert result.stuck or not result.all_live_decided


class TestBenOrCorrectRegime:
    """t < n/2: the protocol the paper cites as the state of the art."""

    def test_unanimous_decides_fast(self):
        result = run_benor(4, 1, (1, 1, 1, 1))
        assert result.all_live_decided
        assert result.decided_values == {1}

    @pytest.mark.parametrize("seed", range(15))
    def test_mixed_inputs_consistent_and_live(self, seed):
        result = run_benor(5, 2, (0, 1, 0, 1, 1), seed=seed)
        assert result.consistent
        assert result.all_live_decided
        assert result.decided_values.issubset({0, 1})

    @pytest.mark.parametrize("crash", [(0,), (0, 4)])
    def test_tolerates_up_to_t_crashes(self, crash):
        for seed in range(10):
            rng = ReplayableRng(seed)
            scheduler = RandomDelivery(rng.child("net"), crash=list(crash))
            result = run_benor(5, 2, (0, 1, 0, 1, 1), scheduler=scheduler,
                               seed=seed)
            assert result.consistent
            assert result.all_live_decided
            assert result.crashed == frozenset(crash)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            BenOrProtocol(1, 0)
        with pytest.raises(ValueError):
            BenOrProtocol(4, 4)
        with pytest.raises(ValueError):
            BenOrProtocol(4, 1, thresholds="hopeful")
        with pytest.raises(ValueError):
            BenOrProtocol(4, 1, values=(0, 1, 2))


class TestBrachaTouegBoundary:
    """t >= n/2: any protocol must lose safety or liveness; Ben-Or's two
    variants lose one each, and the partition adversary exhibits both."""

    def test_absolute_thresholds_block(self):
        # Safety survives, liveness dies: nobody ever decides.
        for seed in range(8):
            result = run_benor(4, 2, (0, 0, 1, 1),
                               scheduler=PartitionAdversary(
                                   [[0, 1], [2, 3]]),
                               seed=seed, budget=4_000)
            assert result.consistent
            assert not result.decisions

    def test_relative_thresholds_split(self):
        # Liveness survives, safety dies: the halves decide differently.
        for seed in range(8):
            result = run_benor(4, 2, (0, 0, 1, 1),
                               scheduler=PartitionAdversary(
                                   [[0, 1], [2, 3]]),
                               seed=seed, budget=4_000,
                               thresholds="relative")
            assert result.decided_values == {0, 1}

    def test_relative_thresholds_unsafe_even_below_half(self):
        # The control group: counting thresholds out of the received
        # set (instead of out of n) is broken outright — rare but
        # reproducible splits occur even at t < n/2.  Seed 10 of this
        # exact configuration is a known violating run.
        violations = []
        for seed in range(40):
            rng = ReplayableRng(seed)
            sim = MPSimulation(
                BenOrProtocol(5, 2, thresholds="relative"),
                (0, 1, 0, 1, 1),
                RandomDelivery(rng.child("d")), rng,
            )
            result = sim.run(100_000)
            if not result.consistent:
                violations.append(seed)
        assert 10 in violations

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            PartitionAdversary([[0, 1], [1, 2]])


class TestContrastWithRegisters:
    def test_registers_tolerate_what_messages_cannot(self):
        """The paper's headline contrast, in one test: at t = n − 1 the
        register protocol still decides while message passing cannot
        even form a quorum."""
        from repro.core.n_process import NProcessProtocol
        from repro.sched.crash import CrashPlan, CrashingScheduler
        from repro.sched.simple import RoundRobinScheduler
        from conftest import run_protocol

        n = 4
        # Registers: crash all but one; the survivor decides.
        plan = CrashPlan.kill_all_but(survivor=2, n=n)
        result = run_protocol(
            NProcessProtocol(n), ("a", "b", "a", "b"),
            scheduler=CrashingScheduler(RoundRobinScheduler(), plan),
            max_steps=200_000,
        )
        assert 2 in result.decisions

        # Messages: with t = n − 1 the absolute thresholds need only 1
        # vote, but a majority of n is impossible from it: nobody ever
        # suggests, nobody ever decides.
        mp = run_benor(n, n - 1, (0, 1, 0, 1), budget=4_000)
        assert not mp.decisions
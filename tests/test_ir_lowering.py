"""Differential tests: the table IR / vector engine vs the kernels.

``engine="vector"`` (``repro.ir``) compiles a finite protocol to dense
integer tables and steps whole batches in lockstep.  Its contract is
the same one the fast path owes the reference path, one level up: for
every supported protocol × scheduler × seed × memory cell it must be
*observably identical* to ``Simulation`` — same decisions, activation
counts, per-processor coin-draw counts, scheduler consults, final
configuration, trace steps, journal bytes, and metrics — and it must
refuse (``IRUnsupportedError`` / ``IRCompileError``) rather than
approximate anything outside the supported matrix (docs/IR.md §5–§6).

The suite mirrors ``test_kernel_fastpath.py``: a named matrix over the
core protocols and vectorizable schedulers, observability parity
tests, engine wiring through ``solve``/``ExperimentRunner``/the
parallel engine/the checker, named tests for each lowering rule, RNG
vectorization equivalence, and Hypothesis-generated random finite
automata pushed through lowering and both vector backends.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less host
    _np = None

from repro.checker.explorer import explore
from repro.checker.properties import verify_safety
from repro.core.consensus import solve
from repro.core.n_process import NProcessProtocol
from repro.core.naive import NaiveProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.ir import (
    IRCompileError,
    IRUnsupportedError,
    VectorKernel,
    compile_protocol,
    replay_run,
    vectorize_scheduler,
)
from repro.obs import JsonlJournal, MetricsRegistry
from repro.sched.adversary import SplitVoteAdversary
from repro.sched.simple import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.kernel import Simulation
from repro.sim.ops import BOTTOM, ReadOp, WriteOp
from repro.sim.process import Automaton, Branch, RegisterSpec
from repro.sim.rng import ReplayableRng

needs_numpy = pytest.mark.skipif(_np is None, reason="numpy not installed")

BACKENDS = ("python",) if _np is None else ("numpy", "python")


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_interp(protocol_factory, inputs, scheduler_factory, seed, *,
               engine="fast", max_steps=3_000, record_trace=False,
               sinks=None):
    """One interpreted-kernel run with the runner's seed chain."""
    rng = ReplayableRng(seed)
    scheduler = scheduler_factory(rng.child("sched"))
    sim = Simulation(
        protocol_factory(), inputs, scheduler, rng.child("kernel"),
        record_trace=record_trace, engine=engine, sinks=sinks,
    )
    return sim.run(max_steps)


def run_vector(protocol_factory, inputs, scheduler_factory, seed, *,
               backend=None, max_steps=3_000, record_trace=False,
               sinks=None, run_index=0):
    """The same run through the vector engine (batch of one).

    ``run_batch`` derives the streams of run ``i`` as
    ``root.child("run", i)...``; the runner harness above seeds the
    interpreted kernel from ``root`` directly, so the vector twin of a
    ``run_interp(..., seed=s)`` call is ``run_single`` — this helper
    instead mirrors the *runner* chain and is compared against
    ``ExperimentRunner``-style derivation (see ``matrix_pair``).
    """
    probe = scheduler_factory(ReplayableRng(seed).child("sched-probe"))
    vk = VectorKernel(compile_protocol(protocol_factory()),
                      vectorize_scheduler(probe), backend=backend)
    batch = vk.run_batch(seed, [run_index], [tuple(inputs)],
                         max_steps=max_steps, record=bool(sinks),
                         record_trace=record_trace)
    result = batch.results[0]
    if sinks:
        replay_run(vk.compiled, result, batch.records[0], sinks,
                   seed, run_index)
    return result


def run_interp_as_runner(protocol_factory, inputs, scheduler_factory,
                         seed, run_index=0, *, max_steps=3_000,
                         record_trace=False, sinks=None):
    """Interpreted run seeded exactly as ``ExperimentRunner.run_one``."""
    rng = ReplayableRng(seed).child("run", run_index)
    scheduler = scheduler_factory(rng.child("sched"))
    sim = Simulation(
        protocol_factory(), inputs, scheduler, rng.child("kernel"),
        record_trace=record_trace, engine="fast", sinks=sinks,
    )
    if sinks:
        for sink in sinks:
            run_key = getattr(sink, "on_run_key", None)
            if run_key is not None:
                run_key(seed, run_index)
    return sim.run(max_steps)


def assert_identical(res_vec, res_ref):
    """Every observable field of two RunResults must match exactly."""
    assert res_vec.protocol_name == res_ref.protocol_name
    assert res_vec.inputs == res_ref.inputs
    assert res_vec.decisions == res_ref.decisions
    assert res_vec.activations == res_ref.activations
    assert res_vec.decision_activation == res_ref.decision_activation
    assert res_vec.coin_flips == res_ref.coin_flips
    assert res_vec.total_steps == res_ref.total_steps
    assert res_vec.crashed == res_ref.crashed
    assert res_vec.completed == res_ref.completed
    assert res_vec.sched_consults == res_ref.sched_consults
    assert res_vec.final_configuration == res_ref.final_configuration


PROTOCOLS = {
    "two_process": (lambda: TwoProcessProtocol(values=("a", "b")),
                    ("a", "b")),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b")),
    "n_process_4": (lambda: NProcessProtocol(4), ("a", "b", "b", "a")),
    "naive_3": (lambda: NaiveProtocol(3), ("a", "a", "b")),
    "naive_5_3v": (lambda: NaiveProtocol(5, values=("a", "b", "c")),
                   ("a", "b", "c", "a", "b")),
}

SCHEDULERS = {
    "random": lambda rng: RandomScheduler(rng),
    "round_robin": lambda rng: RoundRobinScheduler(),
    "round_robin_offset": lambda rng: RoundRobinScheduler(start=1),
}

SEEDS = (1, 7, 42)


# ----------------------------------------------------------------------
# The supported matrix must be bit-identical
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_vector_bit_identical(protocol_name, scheduler_name, backend):
    protocol_factory, inputs = PROTOCOLS[protocol_name]
    scheduler_factory = SCHEDULERS[scheduler_name]
    for seed in SEEDS:
        res_vec = run_vector(protocol_factory, inputs, scheduler_factory,
                             seed, backend=backend)
        res_ref = run_interp_as_runner(protocol_factory, inputs,
                                       scheduler_factory, seed)
        assert_identical(res_vec, res_ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_equals_singles(backend):
    """One 40-run batch == forty 1-run batches (lockstep is invisible)."""
    protocol_factory, inputs = PROTOCOLS["naive_3"]
    probe = RandomScheduler(ReplayableRng(0))
    vk = VectorKernel(compile_protocol(protocol_factory()),
                      vectorize_scheduler(probe), backend=backend)
    indices = list(range(40))
    batch = vk.run_batch(99, indices, [tuple(inputs)] * 40, max_steps=3_000)
    for i in indices:
        single = vk.run_batch(99, [i], [tuple(inputs)], max_steps=3_000)
        assert_identical(batch.results[i], single.results[0])


@needs_numpy
def test_numpy_equals_python_backend():
    for protocol_name in ("two_process", "naive_5_3v"):
        protocol_factory, inputs = PROTOCOLS[protocol_name]
        for scheduler_name in ("random", "round_robin"):
            a = run_vector(protocol_factory, inputs,
                           SCHEDULERS[scheduler_name], 13, backend="numpy")
            b = run_vector(protocol_factory, inputs,
                           SCHEDULERS[scheduler_name], 13, backend="python")
            assert_identical(a, b)


@needs_numpy
def test_straggler_handoff_long_tail():
    """Runs that outlive the lockstep majority finish scalar, identically.

    A 90-run batch under the random scheduler leaves a straggler tail
    below ``SCALAR_CUTOFF`` that the numpy backend hands off to scalar
    CPython ``random.Random`` mid-stream (``MtRuns.handoff``) — every
    run must still match its interpreted twin exactly.
    """
    protocol_factory, inputs = PROTOCOLS["three_bounded"]
    probe = RandomScheduler(ReplayableRng(0))
    vk = VectorKernel(compile_protocol(protocol_factory()),
                      vectorize_scheduler(probe), backend="numpy")
    indices = list(range(90))
    batch = vk.run_batch(7, indices, [tuple(inputs)] * 90, max_steps=5_000)
    for i in (0, 17, 55, 89):
        ref = run_interp_as_runner(protocol_factory, inputs,
                                   SCHEDULERS["random"], 7, run_index=i,
                                   max_steps=5_000)
        assert_identical(batch.results[i], ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_traces_identical_when_recorded(backend):
    protocol_factory, inputs = PROTOCOLS["three_bounded"]
    for seed in SEEDS:
        res_vec = run_vector(protocol_factory, inputs, SCHEDULERS["random"],
                             seed, backend=backend, record_trace=True)
        res_ref = run_interp_as_runner(protocol_factory, inputs,
                                       SCHEDULERS["random"], seed,
                                       record_trace=True)
        assert len(res_vec.trace) == len(res_ref.trace)
        for a, b in zip(res_vec.trace, res_ref.trace):
            assert (a.index, a.pid, a.op, a.result, a.decided) \
                == (b.index, b.pid, b.op, b.result, b.decided)


def test_max_consults_budget_matches_kernel():
    """The collapsed single budget must cut off exactly where dual does."""
    protocol_factory, inputs = PROTOCOLS["naive_3"]
    probe = RandomScheduler(ReplayableRng(0))
    vk = VectorKernel(compile_protocol(protocol_factory()),
                      vectorize_scheduler(probe))
    for max_steps, max_consults in ((25, None), (3_000, 25), (25, 10)):
        batch = vk.run_batch(3, [0], [tuple(inputs)], max_steps=max_steps,
                             max_consults=max_consults)
        rng = ReplayableRng(3).child("run", 0)
        sim = Simulation(protocol_factory(), inputs,
                         RandomScheduler(rng.child("sched")),
                         rng.child("kernel"))
        assert_identical(batch.results[0],
                         sim.run(max_steps, max_consults=max_consults))


# ----------------------------------------------------------------------
# Observability parity: journal bytes and metrics must not change
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_journal_bytes_identical(tmp_path, backend):
    protocol_factory, inputs = PROTOCOLS["two_process"]
    payloads = {}
    for engine in ("vector", "interp"):
        path = tmp_path / f"journal_{engine}_{backend}.jsonl"
        journal = JsonlJournal(str(path))
        if engine == "vector":
            run_vector(protocol_factory, inputs, SCHEDULERS["random"], 11,
                       backend=backend, sinks=(journal,))
        else:
            run_interp_as_runner(protocol_factory, inputs,
                                 SCHEDULERS["random"], 11,
                                 sinks=(journal,))
        journal.close()
        payloads[engine] = path.read_bytes()
    assert payloads["vector"] == payloads["interp"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_metrics_identical(backend):
    protocol_factory, inputs = PROTOCOLS["three_bounded"]
    registries = {}
    for engine in ("vector", "interp"):
        reg = MetricsRegistry()
        if engine == "vector":
            run_vector(protocol_factory, inputs, SCHEDULERS["random"], 23,
                       backend=backend, sinks=(reg,))
        else:
            run_interp_as_runner(protocol_factory, inputs,
                                 SCHEDULERS["random"], 23, sinks=(reg,))
        registries[engine] = reg.to_dict()
    assert registries["vector"] == registries["interp"]


# ----------------------------------------------------------------------
# Engine wiring: solve / runner / parallel engine / CLI surface
# ----------------------------------------------------------------------

def _outcome_key(outcome):
    trace = outcome.trace
    trace_key = None if trace is None else \
        [(s.index, s.pid, s.op, s.result, s.decided) for s in trace]
    return (dataclasses.replace(outcome, trace=None), trace_key)


def test_solve_engine_vector_matches_fast():
    for seed in SEEDS:
        a = solve(TwoProcessProtocol(), ("a", "b"), seed=seed,
                  record_trace=True, engine="vector")
        b = solve(TwoProcessProtocol(), ("a", "b"), seed=seed,
                  record_trace=True, engine="fast")
        assert _outcome_key(a) == _outcome_key(b)


def test_solve_engine_vector_with_sinks():
    regs = {}
    for engine in ("vector", "fast"):
        reg = MetricsRegistry()
        solve(NaiveProtocol(3), ("a", "b", "a"), seed=5, sinks=(reg,),
              engine=engine)
        regs[engine] = reg.to_dict()
    assert regs["vector"] == regs["fast"]


def test_solve_rejects_unknown_engine():
    with pytest.raises(ValueError):
        solve(TwoProcessProtocol(), ("a", "b"), engine="warp")


def _make_runner(engine, sinks=()):
    from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                      SchedulerSpec)
    from repro.sim.runner import ExperimentRunner

    return ExperimentRunner(
        protocol_factory=ProtocolSpec("naive", 3),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b", "a")),
        seed=2_025,
        sinks=sinks,
        engine=engine,
    )


def test_runner_engine_vector_run_one():
    vec, fast = _make_runner("vector"), _make_runner("fast")
    for idx in (0, 3, 17):
        assert_identical(vec.run_one(idx, 3_000), fast.run_one(idx, 3_000))


def test_runner_engine_vector_run_many_serial():
    vec = _make_runner("vector").run_many(200, max_steps=3_000)
    fast = _make_runner("fast").run_many(200, max_steps=3_000)
    assert vec.runs == fast.runs


def test_runner_engine_vector_run_many_parallel():
    serial = _make_runner("vector").run_many(120, max_steps=3_000)
    sharded = _make_runner("vector").run_many(
        120, max_steps=3_000, workers=2, mp_context="fork")
    assert serial.runs == sharded.runs


def test_runner_engine_vector_journal_and_metrics(tmp_path):
    outputs = {}
    for engine in ("vector", "fast"):
        reg = MetricsRegistry()
        path = tmp_path / f"batch_{engine}.jsonl"
        stats = _make_runner(engine, sinks=(reg,)).run_many(
            60, max_steps=3_000, journal_path=str(path))
        outputs[engine] = (stats.runs, reg.to_dict(), path.read_bytes())
    assert outputs["vector"] == outputs["fast"]


def test_runner_rejects_unknown_engine():
    with pytest.raises(ValueError):
        _make_runner("warp")


def test_runner_vector_rejects_unsupported_scheduler():
    from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                      SchedulerSpec)
    from repro.sim.runner import ExperimentRunner

    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec("naive", 3),
        scheduler_factory=SchedulerSpec("split-vote"),
        inputs_factory=ConstantInputs(("a", "b", "a")),
        seed=1,
        engine="vector",
    )
    with pytest.raises(IRUnsupportedError):
        runner.run_one(0, 100)


# ----------------------------------------------------------------------
# Checker: the tables engine must produce the identical graph
# ----------------------------------------------------------------------

def _graph_fingerprint(graph):
    edges = {
        config: tuple((s.pid, s.probability, s.op, s.config, s.result)
                      for s in succ)
        for config, succ in graph.edges.items()
    }
    return (graph.roots, dict(graph.depth_of), edges,
            tuple(graph.frontier), graph.complete)


@pytest.mark.parametrize("protocol_name, inputs, kwargs", [
    ("two_process", ("a", "b"), {}),
    ("three_bounded", ("a", "b", "a"), {"max_depth": 7}),
    ("naive_3", ("a", "a", "b"), {}),
    ("naive_3", ("a", "a", "b"), {"max_states": 300}),
])
def test_explore_tables_graph_identical(protocol_name, inputs, kwargs):
    protocol_factory, _ = PROTOCOLS[protocol_name]
    visits = {"objects": [], "tables": []}
    graphs = {
        engine: explore(protocol_factory(), inputs, engine=engine,
                        on_node=lambda c, d, e=engine:
                            visits[e].append((c, d)),
                        **kwargs)
        for engine in ("objects", "tables")
    }
    assert _graph_fingerprint(graphs["objects"]) \
        == _graph_fingerprint(graphs["tables"])
    assert visits["objects"] == visits["tables"]


def test_verify_safety_tables_engine():
    for engine in (None, "tables"):
        report = verify_safety(NaiveProtocol(3), ("a", "a", "b"),
                               engine=engine)
        assert report.ok and report.complete


@pytest.mark.parametrize("memory", ["regular", "safe"])
def test_explore_tables_weak_memory_graph_identical(memory):
    # The tables engine lowers the adversary's read fan-out into the
    # per-value read-outcome cells: same nodes (including pending-write
    # mem snapshots), same edge order, same Successor fields as the
    # object-level weak-memory explorer.
    graphs = {
        engine: explore(TwoProcessProtocol(), ("a", "b"), max_depth=9,
                        memory=memory, engine=engine)
        for engine in ("objects", "tables")
    }
    assert _graph_fingerprint(graphs["objects"]) \
        == _graph_fingerprint(graphs["tables"])
    # Weak memory genuinely fans out: some node carries a pending write.
    assert any(c.mem for c in graphs["tables"].depth_of)


def test_explore_rejects_unknown_engine():
    with pytest.raises(ValueError):
        explore(TwoProcessProtocol(), ("a", "b"), engine="warp")


# ----------------------------------------------------------------------
# Lowering rules, named per docs/IR.md §3
# ----------------------------------------------------------------------

class TestLoweringRules:
    def test_initial_configuration_round_trips(self):
        """§3: initial sids + init_regs decode to Configuration.initial."""
        for protocol_factory, inputs in PROTOCOLS.values():
            protocol = protocol_factory()
            cp = compile_protocol(protocol)
            layout = RegisterLayout.for_protocol(protocol)
            decoded = cp.decode_configuration(
                cp.initial_sids(tuple(inputs)), cp.init_regs)
            assert decoded == Configuration.initial(protocol, layout,
                                                    inputs)

    def test_branch_encoding_mirrors_protocol(self):
        """§3: each branch row encodes (is_read, slot, value, prob, op)."""
        protocol = TwoProcessProtocol(values=("a", "b"))
        cp = compile_protocol(protocol)
        layout = cp.layout
        for pid, value in ((0, "a"), (1, "b")):
            sid = cp.initial_sid(pid, value)
            cp.ensure_compiled(sid)
            branches = protocol.branches(pid, cp.state_of(sid))
            assert cp.state_nb[sid] == len(branches)
            base = cp.state_base[sid]
            for k, branch in enumerate(branches):
                b = base + k
                assert cp.br_prob[b] == branch.probability
                assert cp.br_op[b] == branch.op
                if isinstance(branch.op, ReadOp):
                    assert cp.br_is_read[b]
                    assert cp.br_slot[b] \
                        == layout.check_read(pid, branch.op.register)
                else:
                    assert not cp.br_is_read[b]
                    assert cp.br_slot[b] \
                        == layout.check_write(pid, branch.op.register)
                    assert cp.value_of(cp.br_write[b]) == branch.op.value

    def test_read_outcomes_memoize_observe(self):
        """§3: read_outcome(b, vid) == intern(observe(..., value))."""
        protocol = NaiveProtocol(3)
        cp = compile_protocol(protocol)
        sid = cp.initial_sid(0, "a")
        cp.ensure_compiled(sid)
        # Walk to the first read branch of pid 0's state graph.
        b = cp.state_base[sid]
        while not cp.br_is_read[b]:
            nxt = cp.br_write_next[b]
            cp.ensure_compiled(nxt)
            b = cp.state_base[nxt]
        owner = cp.br_state[b]
        pid, state = cp.state_pid[owner], cp.state_of(owner)
        for value in (BOTTOM, "a", "b"):
            vid = cp.intern_value(value)
            out_sid = cp.read_outcome(b, vid)
            expected = protocol.observe(pid, state, cp.br_op[b], value)
            assert cp.state_pid[out_sid] == pid
            assert cp.state_of(out_sid) == expected

    def test_decided_states_carry_output(self):
        """§3: state_out[sid] interns the decision value, -1 otherwise."""
        cp = compile_protocol(TwoProcessProtocol(values=("a", "b")))
        sid = cp.initial_sid(0, "a")
        assert cp.state_out[sid] == -1  # initial states are undecided
        run = run_vector(*PROTOCOLS["two_process"], SCHEDULERS["random"], 3)
        final_sids = [cp.intern_state(pid, s)
                      for pid, s in enumerate(
                          run.final_configuration.states)]
        for pid, sid in enumerate(final_sids):
            assert cp.value_of(cp.state_out[sid]) == run.decisions[pid]

    def test_lazy_compilation_grows_monotonically(self):
        """§3: states/branches appear in the compile log append-only."""
        cp = compile_protocol(NaiveProtocol(3))
        before = cp.describe()
        run_a = cp.initial_sids(("a", "a", "b"))
        cp.ensure_compiled(run_a[0])
        mid = cp.describe()
        cp.initial_sids(("b", "b", "b"))
        after = cp.describe()
        assert before["states"] <= mid["states"] <= after["states"]
        # The compile log records lowered states only (laziness): it
        # trails the intern table and never shrinks.
        assert 1 <= len(cp.compile_log) <= after["states"]

    def test_closed_compile_fixpoint(self):
        """§3: closed=True compiles every reachable state eagerly."""
        cp = compile_protocol(TwoProcessProtocol(values=("a", "b")),
                              [("a", "b")], closed=True)
        assert all(nb >= 0 for nb in cp.state_nb)
        graph = explore(TwoProcessProtocol(values=("a", "b")), ("a", "b"))
        reachable_states = {(pid, c.states[pid])
                            for c in graph.depth_of
                            for pid in range(2)}
        assert cp.n_states >= len(reachable_states)


# ----------------------------------------------------------------------
# Refusal cases (docs/IR.md §6): fail loudly, never approximate
# ----------------------------------------------------------------------

class TestRefusals:
    def test_unbounded_protocol_refuses_closed_compile(self):
        with pytest.raises(IRCompileError):
            compile_protocol(ThreeUnboundedProtocol(),
                             [("a", "b", "a")], closed=True,
                             max_states=2_000)

    def test_state_budget_overflow_refuses(self):
        with pytest.raises(IRCompileError):
            compile_protocol(NaiveProtocol(3), [("a", "a", "b")],
                             closed=True, max_states=4)

    def test_value_budget_overflow_refuses(self):
        with pytest.raises(IRCompileError):
            compile_protocol(NaiveProtocol(5, values=("a", "b", "c")),
                             [("a", "b", "c", "a", "b")], closed=True,
                             max_values=2)

    def test_adaptive_scheduler_refuses(self):
        with pytest.raises(IRUnsupportedError):
            vectorize_scheduler(SplitVoteAdversary())

    def test_fixed_scheduler_refuses(self):
        with pytest.raises(IRUnsupportedError):
            vectorize_scheduler(FixedScheduler([0, 1, 0]))

    def test_round_robin_subclass_refuses(self):
        class Sneaky(RoundRobinScheduler):
            pass

        with pytest.raises(IRUnsupportedError):
            vectorize_scheduler(Sneaky())

    def test_weak_memory_refuses(self):
        cp = compile_protocol(TwoProcessProtocol())
        for memory in ("regular", "safe"):
            with pytest.raises(IRUnsupportedError):
                VectorKernel(cp, ("random",), memory=memory)

    def test_unknown_backend_rejected(self):
        cp = compile_protocol(TwoProcessProtocol())
        with pytest.raises(ValueError):
            VectorKernel(cp, ("random",), backend="fortran")

    @pytest.mark.skipif(_np is not None, reason="numpy installed")
    def test_numpy_backend_without_numpy_refuses(self):  # pragma: no cover
        cp = compile_protocol(TwoProcessProtocol())
        with pytest.raises(IRUnsupportedError):
            VectorKernel(cp, ("random",), backend="numpy")


# ----------------------------------------------------------------------
# RNG vectorization (docs/IR.md §4): MtRuns is CPython's MT19937
# ----------------------------------------------------------------------

@needs_numpy
class TestMtEquivalence:
    def _seeds(self):
        return [3, 2 ** 33 + 17, 0xDEADBEEF, 0xDEADBEF0]

    def test_words_match_cpython_getrandbits(self):
        import random

        from repro.ir.mt import MtRuns

        seeds = self._seeds()
        mt = MtRuns(seeds)
        refs = [random.Random(s) for s in seeds]
        rows = _np.arange(len(seeds))
        for _ in range(700):  # crosses the 624-word block boundary
            words = mt.take_words(rows)
            for row, word in enumerate(words):
                assert int(word) == refs[row].getrandbits(32)

    def test_pairs_match_cpython_random(self):
        import random

        from repro.ir.mt import MtRuns

        seeds = self._seeds()
        mt = MtRuns(seeds)
        refs = [random.Random(s) for s in seeds]
        rows = _np.arange(len(seeds))
        for _ in range(400):
            w0, w1 = mt.take_pairs(rows)
            got = ((w0 >> _np.uint32(5)).astype(_np.float64)
                   * 67108864.0
                   + (w1 >> _np.uint32(6)).astype(_np.float64)) \
                * (1.0 / 9007199254740992.0)
            for row in range(len(seeds)):
                assert got[row] == refs[row].random()

    def test_handoff_continues_stream_exactly(self):
        import random

        from repro.ir.mt import MtRuns

        seeds = self._seeds()
        for consumed in (0, 1, 623, 624, 1000):
            mt = MtRuns(seeds)
            ref = random.Random(seeds[1])
            for _ in range(consumed):
                mt.take_word_one(1)
                ref.getrandbits(32)
            live = mt.handoff(1)
            assert [live.getrandbits(32) for _ in range(10)] \
                == [ref.getrandbits(32) for _ in range(10)]

    def test_seed_derivation_matches_scalar_chain(self):
        from repro.ir.mt import derive_run_streams

        root, n = 2_024, 3
        seeds = derive_run_streams(root, [0, 5, 123], n)
        for r, idx in enumerate((0, 5, 123)):
            run = ReplayableRng(root).child("run", idx)
            procs = run.child("kernel").children("proc", n)
            for pid in range(n):
                assert int(seeds[r, pid]) == procs[pid].seed
            assert int(seeds[r, n]) == run.child("sched").seed


# ----------------------------------------------------------------------
# Hypothesis: random finite automata through lowering + both backends
# ----------------------------------------------------------------------

class TableAutomaton(Automaton):
    """A random table-driven automaton (see test_kernel_fastpath.py).

    The IR twin of the fast-path property test: the same drawn space of
    branch structures, register wirings, and transition tables, but
    checked through ``compile_protocol`` + ``VectorKernel`` instead of
    the TransitionCache — every lowering rule is exercised on automata
    nobody hand-wrote.
    """

    name = "table"
    _WRITE_VALUES = (0, 1, 2)
    _RESULT_INDEX = {BOTTOM: 0, 0: 1, 1: 2, 2: 3, None: 4}

    def __init__(self, spec):
        self.n_processes = spec["n"]
        self._n_states = spec["n_states"]
        self._n_regs = spec["n_regs"]
        self._decide = spec["decide_states"]
        self._init = spec["init"]
        self._trans = spec["trans"]
        ops = [ReadOp(f"r{i}") for i in range(self._n_regs)]
        ops += [WriteOp(f"r{i}", v) for i in range(self._n_regs)
                for v in self._WRITE_VALUES]
        self._op_code = {
            (op.kind, op.register, getattr(op, "value", None)): code
            for code, op in enumerate(ops)
        }
        self._branches = {}
        for (pid, state), (op_idxs, weights) in spec["branch_table"].items():
            total = sum(weights)
            self._branches[(pid, state)] = tuple(
                Branch(w / total, ops[i]) for i, w in zip(op_idxs, weights)
            )

    def registers(self):
        everyone = tuple(range(self.n_processes))
        return [RegisterSpec(name=f"r{i}", writers=everyone,
                             readers=everyone, initial=BOTTOM)
                for i in range(self._n_regs)]

    def initial_state(self, pid, input_value):
        return self._init[pid * 2 + input_value]

    def branches(self, pid, state):
        return self._branches[(pid, state)]

    def observe(self, pid, state, op, result):
        code = self._op_code[(op.kind, op.register,
                              getattr(op, "value", None))]
        ridx = self._RESULT_INDEX[result]
        trans = self._trans
        return trans[(pid * 7 + state * 13 + code * 3 + ridx * 5)
                     % len(trans)]

    def output(self, pid, state):
        return state % 2 if state in self._decide else None


@st.composite
def automaton_specs(draw):
    n = draw(st.integers(2, 3))
    n_states = draw(st.integers(3, 6))
    n_regs = draw(st.integers(1, 3))
    n_ops = n_regs * (1 + len(TableAutomaton._WRITE_VALUES))
    decide_states = draw(st.sets(st.integers(0, n_states - 1),
                                 max_size=n_states - 1))
    branch_table = {}
    for pid in range(n):
        for state in range(n_states):
            if state in decide_states:
                continue
            k = draw(st.integers(1, 3))
            op_idxs = draw(st.lists(st.integers(0, n_ops - 1),
                                    min_size=k, max_size=k))
            weights = draw(st.lists(st.integers(1, 5),
                                    min_size=k, max_size=k))
            branch_table[(pid, state)] = (tuple(op_idxs), tuple(weights))
    non_decided = [s for s in range(n_states) if s not in decide_states]
    init = draw(st.lists(st.sampled_from(non_decided + list(decide_states)),
                         min_size=n * 2, max_size=n * 2))
    trans = draw(st.lists(st.integers(0, n_states - 1),
                          min_size=4, max_size=16))
    return {
        "n": n, "n_states": n_states, "n_regs": n_regs,
        "decide_states": frozenset(decide_states),
        "branch_table": branch_table, "init": init, "trans": trans,
    }


@settings(max_examples=40, deadline=None)
@given(spec=automaton_specs(), seed=st.integers(0, 2 ** 32),
       inputs_bits=st.lists(st.integers(0, 1), min_size=3, max_size=3))
def test_random_automata_vector_equals_kernel(spec, seed, inputs_bits):
    protocol = TableAutomaton(spec)
    inputs = tuple(inputs_bits[: protocol.n_processes])
    rng = ReplayableRng(seed).child("run", 0)
    sim = Simulation(protocol, inputs,
                     RandomScheduler(rng.child("sched")),
                     rng.child("kernel"))
    ref = sim.run(300)
    cp = compile_protocol(protocol, strict=False)
    for backend in BACKENDS:
        vk = VectorKernel(cp, ("random",), backend=backend)
        batch = vk.run_batch(seed, [0], [inputs], max_steps=300)
        assert_identical(batch.results[0], ref)


@settings(max_examples=15, deadline=None)
@given(spec=automaton_specs(), seed=st.integers(0, 2 ** 32))
def test_random_automata_tables_explore(spec, seed):
    protocol = TableAutomaton(spec)
    inputs = tuple((seed >> pid) & 1 for pid in range(protocol.n_processes))
    kwargs = {"max_depth": 4, "max_states": 2_000}
    a = explore(protocol, inputs, **kwargs)
    b = explore(protocol, inputs, engine="tables", **kwargs)
    assert _graph_fingerprint(a) == _graph_fingerprint(b)

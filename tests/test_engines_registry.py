"""Tests for the engine registry (:mod:`repro.engines`).

Before the registry, the runner, ``solve``, the explorer,
``verify_safety`` and the CLI each carried a hand-rolled
``if engine not in (...)`` block with its own error text, and each one
needed its own rejection test.  Now there is exactly one validation
point, so the vocabulary, the default resolution, and the did-you-mean
error are tested exactly once — here — while the call-site tests below
only check that each path *routes through* it.
"""

from __future__ import annotations

import pytest

from repro.engines import (
    CHECKER,
    SIM,
    EngineInfo,
    UnknownEngineError,
    default_engine,
    engine_names,
    register_engine,
    resolve_engine,
    resolve_sim_engine,
)


class TestRegistry:
    def test_builtin_vocabulary(self):
        assert engine_names(SIM) == ("reference", "fast", "vector")
        assert engine_names(CHECKER) == ("objects", "tables",
                                         "fingerprints")

    def test_defaults(self):
        assert default_engine(SIM).name == "fast"
        assert default_engine(CHECKER).name == "objects"
        assert resolve_engine(SIM, None).name == "fast"
        assert resolve_engine(CHECKER, None).name == "objects"

    def test_capability_flags(self):
        assert resolve_engine(SIM, "reference").standalone
        assert resolve_engine(SIM, "fast").standalone
        assert not resolve_engine(SIM, "vector").standalone
        assert resolve_engine(SIM, "vector").batch_shape == "lockstep"
        assert resolve_engine(CHECKER, "objects").batch_shape == "graph"
        assert resolve_engine(CHECKER, "tables").batch_shape == "graph"
        fp = resolve_engine(CHECKER, "fingerprints")
        assert fp.batch_shape == "level" and fp.reductions
        assert not resolve_engine(CHECKER, "objects").reductions

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(EngineInfo(name="fast", kind=SIM, summary="x"))

    def test_second_default_rejected(self):
        with pytest.raises(ValueError, match="already has a default"):
            register_engine(EngineInfo(name="novel", kind=SIM,
                                       summary="x", default=True))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown engine kind"):
            resolve_engine("solver", "fast")
        with pytest.raises(ValueError, match="unknown engine kind"):
            register_engine(EngineInfo(name="x", kind="solver",
                                       summary="x"))


class TestTheOneValidationError:
    """The consolidated error message, tested once instead of five times."""

    def test_unknown_is_a_value_error(self):
        # Legacy callers catch ValueError; the subclass keeps them alive.
        assert issubclass(UnknownEngineError, ValueError)
        with pytest.raises(ValueError):
            resolve_engine(SIM, "warp")

    def test_vocabulary_in_message(self):
        with pytest.raises(UnknownEngineError,
                           match="'reference', 'fast', 'vector'"):
            resolve_engine(SIM, "warp")
        with pytest.raises(UnknownEngineError,
                           match="'objects', 'tables', 'fingerprints'"):
            resolve_engine(CHECKER, "warp")

    def test_did_you_mean(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'fast'"):
            resolve_engine(SIM, "fsat")
        with pytest.raises(UnknownEngineError,
                           match="did you mean 'tables'"):
            resolve_engine(CHECKER, "tabels")

    def test_wrong_kind_hint(self):
        # A real engine of the other kind gets a cross-kind hint, not a
        # fuzzy suggestion.
        with pytest.raises(UnknownEngineError,
                           match="is a checker engine"):
            resolve_engine(SIM, "fingerprints")
        with pytest.raises(UnknownEngineError, match="is a sim engine"):
            resolve_engine(CHECKER, "vector")


class TestDeprecatedFastAlias:
    def test_fast_true_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="fast=.*deprecated"):
            assert resolve_sim_engine(None, True).name == "fast"

    def test_fast_false_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_sim_engine(None, False).name == "reference"

    def test_engine_wins_over_fast(self):
        with pytest.warns(DeprecationWarning):
            assert resolve_sim_engine("vector", True).name == "vector"

    def test_no_alias_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_sim_engine("reference").name == "reference"
            assert resolve_sim_engine(None).name == "fast"


class TestCallSitesRouteThroughRegistry:
    """Every selection path rejects via the registry's single error."""

    def test_simulation(self):
        from repro.core.two_process import TwoProcessProtocol
        from repro.sched.simple import RoundRobinScheduler
        from repro.sim.kernel import Simulation
        from repro.sim.rng import ReplayableRng

        with pytest.raises(UnknownEngineError, match="did you mean"):
            Simulation(TwoProcessProtocol(), ("a", "b"),
                       RoundRobinScheduler(), ReplayableRng(0),
                       engine="fsat")

    def test_simulation_fast_alias_warns(self):
        from repro.core.two_process import TwoProcessProtocol
        from repro.sched.simple import RoundRobinScheduler
        from repro.sim.kernel import Simulation
        from repro.sim.rng import ReplayableRng

        with pytest.warns(DeprecationWarning, match="Simulation"):
            sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                             RoundRobinScheduler(), ReplayableRng(0),
                             fast=False)
        assert not sim._fast

    def test_runner(self):
        from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                          SchedulerSpec)
        from repro.sim.runner import ExperimentRunner

        with pytest.raises(UnknownEngineError):
            ExperimentRunner(
                protocol_factory=ProtocolSpec("two", 2),
                scheduler_factory=SchedulerSpec("random"),
                inputs_factory=ConstantInputs(("a", "b")),
                seed=0, engine="vectr")

    def test_solve(self):
        from repro.core.consensus import solve
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(UnknownEngineError):
            solve(TwoProcessProtocol(), ("a", "b"), seed=0,
                  engine="refrence")

    def test_batch_spec(self):
        from repro.parallel.engine import BatchSpec
        from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                          SchedulerSpec)

        with pytest.raises(UnknownEngineError):
            BatchSpec(protocol_factory=ProtocolSpec("two", 2),
                      scheduler_factory=SchedulerSpec("random"),
                      inputs_factory=ConstantInputs(("a", "b")),
                      seed=0, engine="fats")

    def test_explore(self):
        from repro.checker.explorer import explore
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(UnknownEngineError):
            explore(TwoProcessProtocol(), ("a", "b"), engine="tabels")

    def test_verify_safety(self):
        from repro.checker import verify_safety
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(UnknownEngineError):
            verify_safety(TwoProcessProtocol(), ("a", "b"),
                          engine="fingreprints")

    def test_cli_engine_flags(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (["solve", "--engine", "fsat"],
                     ["report", "--engine", "fsat"],
                     ["trace", "--engine", "fsat"],
                     ["verify", "--engine", "tabels"]):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)
            err = capsys.readouterr().err
            assert "did you mean" in err

    def test_vector_needs_batch_entry_points(self):
        # Capability check, not name check: "vector" is registered but
        # cannot back a standalone Simulation.
        from repro.core.two_process import TwoProcessProtocol
        from repro.errors import SimulationError
        from repro.sched.simple import RoundRobinScheduler
        from repro.sim.kernel import Simulation
        from repro.sim.rng import ReplayableRng

        with pytest.raises(SimulationError, match="lockstep"):
            Simulation(TwoProcessProtocol(), ("a", "b"),
                       RoundRobinScheduler(), ReplayableRng(0),
                       engine="vector")

    def test_reductions_need_capability(self):
        from repro.checker import verify_safety
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(ValueError, match="fingerprints"):
            verify_safety(TwoProcessProtocol(), ("a", "b"),
                          engine="objects", symmetry=True)
        with pytest.raises(ValueError, match="no reduction support"):
            verify_safety(TwoProcessProtocol(), ("a", "b"),
                          engine="tables", workers=2)

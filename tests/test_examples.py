"""Smoke tests: every example script runs clean and says what it should.

Examples are documentation that executes; if one bit-rots, the test
suite should say so before a reader does.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["agreed on", "Every run above was checked"]),
    ("adversarial_showdown.py",
     ["victim decided:     NEVER", "wait-freedom in action"]),
    ("impossibility_demo.py",
     ["bivalent at inputs", "admits an infinite non-deciding schedule",
      "UNDECIDED"]),
    ("mutual_exclusion.py",
     ["enters the critical section", "mutual exclusion held every round: True",
      "all committed to"]),
    ("register_tower.py", ["safe-cell", "mrsw-atomic", "atomic"]),
    ("worst_case_adversary.py",
     ["exact worst case = 10.0000", "optimal policy (value iteration)"]),
    ("model_contrast.py",
     ["Bracha-Toueg wall", "LOSES SAFETY", "survivor P1 decided"]),
    ("parallel_sweep.py",
     ["bit-identical run stats and merged metrics: True",
      "tail P(steps > k)", "proof-implied"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs_and_reports(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: missing {needle!r} in output:\n"
            f"{result.stdout[-2000:]}"
        )

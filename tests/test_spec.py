"""Tests for the canonical :class:`~repro.spec.RunSpec` and its hash.

The spec hash is the content address of the run store, so its contract
is strict: equal specs hash equal *however they were spelled* (default
vs explicit, alias vs canonical name, kwarg order), the hash is
identical across interpreter processes and multiprocessing start
methods (spawn and fork must agree, or a sweep resumed by a
differently-started worker would miss its own shards), and distinct
specs never collide within any realistic fixture matrix.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.memory import MemorySpec
from repro.spec import ObsOptions, RunSpec, SpecError


def base_spec(**overrides):
    kwargs = dict(
        protocol=ProtocolSpec("two", 2),
        scheduler=SchedulerSpec("random"),
        inputs=ConstantInputs(("a", "b")),
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def _module_level_protocol_factory():
    from repro.core.two_process import TwoProcessProtocol

    return TwoProcessProtocol()


# Module-level so multiprocessing workers can import it under any start
# method (spawn re-imports this module in a fresh interpreter).
def _hash_in_worker(field_order: str) -> str:
    """Build the base spec with fields supplied in a drawn order."""
    fields = {
        "protocol": ProtocolSpec("two", 2),
        "scheduler": SchedulerSpec("random"),
        "inputs": ConstantInputs(("a", "b")),
        "memory": "atomic",
        "engine": None,
        "max_steps": 4000,
    }
    ordered = {name: fields[name] for name in field_order.split(",")}
    return RunSpec(**ordered).spec_hash()


class TestCanonicalForm:
    def test_equal_specs_hash_equal_regardless_of_spelling(self):
        default = base_spec()
        explicit = base_spec(memory=MemorySpec("atomic"), engine="fast",
                             max_steps=4000, strict=False,
                             obs=ObsOptions())
        by_name = base_spec(memory="atomic")
        assert default == explicit == by_name
        assert default.spec_hash() == explicit.spec_hash() \
            == by_name.spec_hash()

    def test_engine_none_resolves_to_registry_default(self):
        assert base_spec().engine == "fast"
        assert base_spec(engine="fast") == base_spec(engine=None)

    def test_canonical_json_is_sorted_and_compact(self):
        text = base_spec().canonical_json()
        import json

        data = json.loads(text)
        assert text == json.dumps(data, sort_keys=True,
                                  separators=(",", ":"),
                                  ensure_ascii=True)
        assert data["version"] == 1
        assert data["engine"] == "fast"
        assert data["memory"] == "atomic"

    def test_pickle_round_trip_preserves_hash(self):
        spec = base_spec(memory="regular", engine="vector", strict=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_describe_mentions_every_knob(self):
        text = base_spec(memory="safe", engine="vector",
                         max_steps=123).describe()
        for token in ("two(2)", "safe", "vector", "123", "random"):
            assert token in text


class TestRejection:
    def test_arbitrary_factories_rejected(self):
        from repro.core.two_process import TwoProcessProtocol

        with pytest.raises(SpecError, match="ProtocolSpec"):
            base_spec(protocol=lambda: TwoProcessProtocol())
        with pytest.raises(SpecError, match="SchedulerSpec"):
            base_spec(scheduler=lambda rng: None)
        with pytest.raises(SpecError, match="ConstantInputs"):
            base_spec(inputs=lambda i, rng: ("a", "b"))

    def test_unknown_engine_rejected(self):
        from repro.engines import UnknownEngineError

        with pytest.raises(UnknownEngineError):
            base_spec(engine="fsat")

    def test_non_scalar_inputs_rejected(self):
        spec = base_spec(inputs=ConstantInputs((("a",), "b")))
        with pytest.raises(SpecError, match="not.*canonically"):
            spec.spec_hash()

    def test_bad_budget_rejected(self):
        with pytest.raises(SpecError, match="max_steps"):
            base_spec(max_steps=0)


class TestCrossProcessStability:
    ORDERS = (
        "protocol,scheduler,inputs,memory,engine,max_steps",
        "max_steps,engine,memory,inputs,scheduler,protocol",
        "inputs,protocol,max_steps,scheduler,engine,memory",
    )

    def test_kwarg_order_permutations_agree_in_process(self):
        hashes = {_hash_in_worker(order) for order in self.ORDERS}
        assert len(hashes) == 1
        assert hashes == {base_spec().spec_hash()}

    @pytest.mark.parametrize(
        "method",
        [m for m in ("spawn", "fork")
         if m in multiprocessing.get_all_start_methods()])
    def test_hash_identical_across_start_methods(self, method):
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(1) as pool:
            worker_hashes = pool.map(_hash_in_worker, self.ORDERS)
        assert set(worker_hashes) == {base_spec().spec_hash()}


class TestNoCollisions:
    def test_distinct_specs_never_collide(self):
        specs = []
        for protocol in (ProtocolSpec("two", 2),
                         ProtocolSpec("three-bounded", 3),
                         ProtocolSpec("n", 4)):
            inputs = ConstantInputs(tuple(
                "ab"[i % 2] for i in range(protocol.n_processes)))
            for scheduler in ("random", "round-robin"):
                for memory in ("atomic", "regular"):
                    for engine in ("fast", "reference"):
                        for max_steps in (1000, 4000):
                            for obs in (ObsOptions(),
                                        ObsOptions(metrics=True),
                                        ObsOptions(metrics=True,
                                                   journal=True)):
                                specs.append(RunSpec(
                                    protocol=protocol,
                                    scheduler=SchedulerSpec(scheduler),
                                    inputs=inputs,
                                    memory=memory,
                                    engine=engine,
                                    max_steps=max_steps,
                                    obs=obs,
                                ))
        hashes = [s.spec_hash() for s in specs]
        assert len(set(hashes)) == len(specs)

    def test_obs_options_are_part_of_the_address(self):
        # What is recorded is part of the content address: a sweep
        # stored without journal bytes cannot serve one that needs them.
        plain = base_spec()
        with_journal = base_spec(obs=ObsOptions(journal=True))
        assert plain.spec_hash() != with_journal.spec_hash()

    def test_str_int_inputs_distinguished(self):
        # json.dumps would render 1 and "1" differently, but guard the
        # property explicitly: it is what keeps the address injective.
        a = base_spec(inputs=ConstantInputs((1, 0)))
        b = base_spec(inputs=ConstantInputs(("1", "0")))
        assert a.spec_hash() != b.spec_hash()


class TestFromBatch:
    def test_lifts_batch_spec(self):
        from repro.parallel.engine import BatchSpec

        batch = BatchSpec(
            protocol_factory=ProtocolSpec("two", 2),
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=7, memory=MemorySpec("regular"), engine="reference")
        spec = RunSpec.from_batch(batch, max_steps=500,
                                  obs=ObsOptions(metrics=True))
        assert spec.memory.name == "regular"
        assert spec.engine == "reference"
        assert spec.max_steps == 500
        assert spec.obs.metrics

    def test_from_batch_rejects_arbitrary_factories(self):
        from repro.parallel.engine import BatchSpec

        batch = BatchSpec(
            protocol_factory=_module_level_protocol_factory,
            scheduler_factory=SchedulerSpec("random"),
            inputs_factory=ConstantInputs(("a", "b")),
            seed=7)
        with pytest.raises(SpecError, match="store-backed sweeps"):
            RunSpec.from_batch(batch, max_steps=500)

    def test_factories_triple(self):
        spec = base_spec()
        protocol, scheduler, inputs = spec.factories()
        assert protocol is spec.protocol
        assert scheduler is spec.scheduler
        assert inputs is spec.inputs

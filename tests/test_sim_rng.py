"""Tests for the seeded replayable RNG."""

from __future__ import annotations

import pytest

from repro.sim.rng import ReplayableRng, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "proc", 1) == derive_seed(42, "proc", 1)

    def test_path_sensitivity(self):
        assert derive_seed(42, "proc", 1) != derive_seed(42, "proc", 2)
        assert derive_seed(42, "proc") != derive_seed(42, "sched")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_token_types_distinguished(self):
        # The string "1" and the int 1 should not collide by accident.
        assert derive_seed(7, "1") != derive_seed(7, 1)

    def test_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_result_is_64_bit(self):
        for seed in (0, 1, 2 ** 64 - 1, 123456789):
            assert 0 <= derive_seed(seed, "x") < 2 ** 64


class TestReplayableRng:
    def test_same_seed_same_stream(self):
        a = ReplayableRng(99)
        b = ReplayableRng(99)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = ReplayableRng(1)
        b = ReplayableRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_streams_independent_of_parent_consumption(self):
        a = ReplayableRng(7)
        child_before = a.child("x").random()
        b = ReplayableRng(7)
        for _ in range(100):
            b.random()  # consume the parent heavily
        child_after = b.child("x").random()
        assert child_before == child_after

    def test_draw_counting(self):
        r = ReplayableRng(5)
        r.coin()
        r.randint(0, 10)
        r.choice([1, 2, 3])
        assert r.draws == 3

    def test_coin_bias(self):
        r = ReplayableRng(3)
        heads = sum(r.coin(0.9) for _ in range(2000))
        assert 1700 <= heads <= 2000

    def test_fair_coin_roughly_fair(self):
        r = ReplayableRng(4)
        heads = sum(r.coin() for _ in range(4000))
        assert 1800 <= heads <= 2200

    def test_choice_index_weights(self):
        r = ReplayableRng(6)
        counts = [0, 0]
        for _ in range(3000):
            counts[r.choice_index([3.0, 1.0])] += 1
        assert counts[0] > counts[1] * 2

    def test_choice_index_rejects_bad_weights(self):
        r = ReplayableRng(6)
        with pytest.raises(ValueError):
            r.choice_index([0.0, 0.0])

    def test_choice_index_single(self):
        r = ReplayableRng(6)
        assert r.choice_index([1.0]) == 0

    def test_sample_and_shuffle(self):
        r = ReplayableRng(8)
        s = r.sample(range(10), 4)
        assert len(set(s)) == 4
        xs = list(range(10))
        r.shuffle(xs)
        assert sorted(xs) == list(range(10))

    def test_spawn_streams(self):
        streams = spawn_streams(11, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].random() != streams["b"].random()

    def test_cross_version_stability(self):
        # Pin the derivation function: if this changes, every recorded
        # experiment in EXPERIMENTS.md silently changes meaning.
        assert derive_seed(0) == derive_seed(0)
        reference = derive_seed(42, "proc", 0)
        assert reference == derive_seed(42, "proc", 0)
        assert isinstance(reference, int)

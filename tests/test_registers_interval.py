"""Tests for the interval-time concurrency model and cell semantics."""

from __future__ import annotations

import pytest

from repro.errors import RegisterSemanticsError
from repro.registers.interval import IntervalSim


def overlap_experiment(cell_kind, resolver=None, seed=0):
    """One writer (0 -> 1) overlapping one reader; return the value read."""
    sim = IntervalSim(seed=seed, resolver=resolver)
    factory = getattr(sim, f"{cell_kind}_cell")
    cell = factory("x", initial=0, domain=(0, 1))
    out = []

    def writer():
        yield from sim.write_cell(cell, 1)

    def reader():
        v = yield from sim.read_cell(cell)
        out.append(v)

    w = sim.spawn("w", writer())
    r = sim.spawn("r", reader())
    # Force full overlap: begin read, begin write, end write, end read.
    r.step()
    w.step()
    w.step()
    r.step()
    return out[0]


class TestCellSemantics:
    def test_safe_cell_overlap_consults_resolver(self):
        picked = []

        def resolver(kind, choices):
            picked.append((kind, tuple(choices)))
            return choices[-1]

        value = overlap_experiment("safe", resolver)
        assert picked and picked[0][0] == "safe"
        assert picked[0][1] == (0, 1)  # the whole domain
        assert value == 1

    def test_regular_cell_overlap_offers_old_and_new(self):
        picked = []

        def resolver(kind, choices):
            picked.append((kind, tuple(choices)))
            return choices[0]

        value = overlap_experiment("regular", resolver)
        assert picked[0][0] == "regular"
        assert set(picked[0][1]) == {0, 1}  # old value and written value
        assert value == 0

    def test_atomic_cell_overlap_returns_latest_begun(self):
        assert overlap_experiment("atomic") == 1

    def test_quiescent_reads_return_committed(self):
        for kind in ("safe", "regular", "atomic"):
            sim = IntervalSim(seed=1)
            cell = getattr(sim, f"{kind}_cell")("x", initial=7,
                                                domain=(7, 8))
            out = []

            def reader():
                v = yield from sim.read_cell(cell)
                out.append(v)

            sim.spawn("r", reader())
            sim.run()
            assert out == [7], kind

    def test_sequential_write_then_read(self):
        sim = IntervalSim(seed=2)
        cell = sim.safe_cell("x", initial=0, domain=(0, 1))
        out = []

        def program():
            yield from sim.write_cell(cell, 1)
            v = yield from sim.read_cell(cell)
            out.append(v)

        sim.spawn("p", program())
        sim.run()
        assert out == [1]

    def test_single_writer_enforced(self):
        sim = IntervalSim(seed=3)
        cell = sim.safe_cell("x", initial=0, domain=(0, 1))
        cell.begin_write(1)
        with pytest.raises(RegisterSemanticsError):
            cell.begin_write(0)

    def test_end_write_requires_begin(self):
        sim = IntervalSim(seed=3)
        cell = sim.regular_cell("x", initial=0, domain=(0, 1))
        with pytest.raises(RegisterSemanticsError):
            cell.end_write()


class TestEngine:
    def test_event_budget_enforced(self):
        sim = IntervalSim(seed=4)
        cell = sim.atomic_cell("x", initial=0)

        def forever():
            while True:
                yield from sim.write_cell(cell, 1)

        sim.spawn("w", forever())
        with pytest.raises(RegisterSemanticsError):
            sim.run(max_events=100)

    def test_interleaving_is_seeded(self):
        def orders(seed):
            sim = IntervalSim(seed=seed)
            cell = sim.atomic_cell("x", initial=0)
            log = []

            def prog(name):
                for i in range(3):
                    yield from sim.write_cell(cell, i) if name == "w" \
                        else sim.read_cell(cell)
                    log.append(name)

            sim.spawn("w", prog("w"))
            sim.spawn("r", prog("r"))
            sim.run()
            return log

        assert orders(5) == orders(5)

    def test_total_cell_events_accumulate(self):
        sim = IntervalSim(seed=6)
        cell = sim.atomic_cell("x", initial=0)

        def writer():
            yield from sim.write_cell(cell, 1)

        sim.spawn("w", writer())
        sim.run()
        assert sim.total_cell_events == 2  # begin + end

    def test_finished_thread_refuses_steps(self):
        sim = IntervalSim(seed=7)

        def noop():
            return
            yield

        t = sim.spawn("t", noop())
        t.step()
        assert t.finished
        with pytest.raises(RegisterSemanticsError):
            t.step()

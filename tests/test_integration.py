"""Integration tests: cross-module compositions.

These exercise the library the way a downstream user would — composing
protocols, schedulers, the checker, and the applications — rather than
testing modules in isolation.
"""

from __future__ import annotations

import pytest

from repro.checker import verify_safety
from repro.core.multivalued import MultiValuedProtocol
from repro.core.n_process import NProcessProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import RandomScheduler, RoundRobinScheduler
from repro.sched.adversary import SplitVoteAdversary
from repro.sim.runner import ExperimentRunner

from conftest import run_protocol


class TestBoundedRegisterMultivalued:
    """The full stack: k-valued coordination over *bounded* registers.

    Composing Theorem 5's reduction with the Section 6 protocol yields
    a three-processor k-valued coordination protocol whose every shared
    register has a finite domain — the strongest artifact the paper's
    toolbox can build.
    """

    def mv_bounded(self, values):
        return MultiValuedProtocol(
            base_factory=lambda: ThreeBoundedProtocol(values=(0, 1)),
            values=values,
        )

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_correct_over_many_seeds(self, k):
        values = tuple(f"v{i}" for i in range(k))
        for seed in range(8):
            inputs = (values[0], values[-1], values[k // 2])
            result = run_protocol(self.mv_bounded(values), inputs,
                                  seed=seed, max_steps=400_000)
            assert result.completed
            assert result.consistent and result.nontrivial
            assert result.decided_values.issubset(set(inputs))

    def test_register_domains_remain_bounded(self):
        values = ("p", "q", "r", "s")
        result = run_protocol(self.mv_bounded(values), ("p", "s", "q"),
                              seed=4, max_steps=400_000,
                              record_trace=True)
        assert result.completed
        # Instance registers hold Figure 3 values; value registers hold
        # domain elements: every written value is from a finite set.
        from repro.core.three_bounded import BReg

        for step in result.trace:
            if step.op.kind != "write":
                continue
            v = step.op.value
            assert isinstance(v, BReg) or v in values

    def test_adversarial_composition(self):
        values = ("x", "y", "z")
        runner = ExperimentRunner(
            protocol_factory=lambda: self.mv_bounded(values),
            scheduler_factory=lambda rng: SplitVoteAdversary(),
            inputs_factory=lambda i, rng: tuple(
                rng.choice(values) for _ in range(3)
            ),
            seed=64,
        )
        stats = runner.run_many(50, max_steps=400_000)
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0


class TestCheckerOnCompositions:
    def test_multivalued_two_process_exhaustive_safety(self):
        protocol = MultiValuedProtocol(
            base_factory=lambda: TwoProcessProtocol(values=(0, 1)),
            values=("p", "q", "r"),
        )
        report = verify_safety(protocol, ("p", "r"), max_depth=14,
                               max_states=300_000)
        assert report.ok

    def test_srsw_layout_exhaustive_safety(self):
        report = verify_safety(
            ThreeUnboundedProtocol(layout="srsw"), ("a", "b", "a"),
            max_depth=12, max_states=300_000,
        )
        assert report.ok


class TestCrashedCompositions:
    def test_multivalued_with_crashes(self):
        values = ("u", "v", "w", "x")
        protocol = MultiValuedProtocol(
            base_factory=lambda: NProcessProtocol(4, values=(0, 1)),
            values=values,
        )
        plan = CrashPlan(after_activations={0: 2, 3: 5})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(protocol, ("u", "v", "w", "x"),
                              scheduler=scheduler, max_steps=400_000)
        assert result.crashed == frozenset({0, 3})
        survivors = {1, 2}
        assert survivors.issubset(result.decisions.keys())
        assert result.consistent and result.nontrivial

    def test_bounded_protocol_with_crash(self):
        plan = CrashPlan(after_activations={1: 3})
        scheduler = CrashingScheduler(RoundRobinScheduler(), plan)
        result = run_protocol(ThreeBoundedProtocol(), ("a", "b", "b"),
                              scheduler=scheduler, max_steps=100_000)
        assert 1 in result.crashed
        assert {0, 2}.issubset(result.decisions.keys())
        assert result.consistent


class TestDeterminismAcrossTheStack:
    def test_identical_seeds_identical_everything(self):
        def full_run(seed):
            runner = ExperimentRunner(
                protocol_factory=lambda: ThreeBoundedProtocol(),
                scheduler_factory=lambda rng: RandomScheduler(rng),
                inputs_factory=lambda i, rng: tuple(
                    rng.choice(["a", "b"]) for _ in range(3)
                ),
                seed=seed,
            )
            stats = runner.run_many(25, 100_000)
            return [
                (r.run_index, tuple(sorted(r.decisions.items())),
                 r.total_steps)
                for r in stats.runs
            ]

        assert full_run(123) == full_run(123)
        assert full_run(123) != full_run(124)

"""Budget-truncation semantics across all three verification engines.

A truncated exploration must never masquerade as a full verification:
``SafetyReport.complete`` (and ``ExploreReport.exhausted``) may only be
true when the entire reachable space was enumerated.  These tests pin
the exact boundary — a budget of ``|reachable|`` states is enough, a
budget of ``|reachable| - 1`` is not — for the objects, tables and
fingerprints engines alike, plus the depth-cutoff boundary and the
fingerprints engine's ``truncated_by`` attribution.
"""

from __future__ import annotations

import pytest

from repro.checker import explore_fast, verify_safety
from repro.core.deterministic import TwoProcessDeterministic
from repro.core.naive import NaiveProtocol
from repro.core.two_process import TwoProcessProtocol

ENGINES = ("objects", "tables", "fingerprints")


class TestMaxStatesBoundary:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_budget_is_exhaustive_one_less_is_not(self, engine):
        full = verify_safety(TwoProcessProtocol(), ("a", "b"),
                             engine=engine)
        assert full.ok and full.complete
        n = full.states_explored

        at_budget = verify_safety(TwoProcessProtocol(), ("a", "b"),
                                  max_states=n, engine=engine)
        assert at_budget.complete
        assert at_budget.states_explored == n

        truncated = verify_safety(TwoProcessProtocol(), ("a", "b"),
                                  max_states=n - 1, engine=engine)
        assert not truncated.complete
        assert truncated.states_explored < n
        # A truncated run never claims the full space.
        assert "full reachable" not in truncated.guarantee()
        assert "up to depth" in truncated.guarantee()

    def test_fingerprints_truncation_attribution(self):
        full = explore_fast(NaiveProtocol(3), ("a", "b", "a"))
        assert full.exhausted and full.truncated_by is None

        at_budget = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                                 max_states=full.visited)
        assert at_budget.exhausted
        assert at_budget.truncated_by is None
        assert at_budget.frontier == 0

        truncated = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                                 max_states=full.visited - 1)
        assert not truncated.exhausted
        assert truncated.truncated_by == "states"
        # The unexpanded work is reported, not silently dropped.
        assert truncated.frontier > 0


class TestMaxDepthBoundary:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_depth_cutoff_never_reports_complete(self, engine):
        report = verify_safety(TwoProcessProtocol(), ("a", "b"),
                               max_depth=3, engine=engine)
        assert report.ok
        assert not report.complete
        assert report.max_depth_reached <= 3

    def test_fingerprints_depth_boundary(self):
        full = explore_fast(TwoProcessProtocol(), ("a", "b"))
        d = full.depth

        # A horizon one past the true depth lets the search terminate
        # naturally (empty next level) and prove exhaustion.
        past_depth = explore_fast(TwoProcessProtocol(), ("a", "b"),
                                  max_depth=d + 1)
        assert past_depth.exhausted
        assert past_depth.truncated_by is None
        assert past_depth.visited == full.visited

        # A horizon exactly at the true depth sees every configuration
        # but must stay conservative: the randomized protocol's
        # frontier still has enabled (cycle) edges the search did not
        # expand, so no exhaustion claim is made.
        at_depth = explore_fast(TwoProcessProtocol(), ("a", "b"),
                                max_depth=d)
        assert at_depth.visited == full.visited
        assert not at_depth.exhausted
        assert at_depth.truncated_by == "depth"

        # One level short, strictly fewer configurations.
        short = explore_fast(TwoProcessProtocol(), ("a", "b"),
                             max_depth=d - 1)
        assert not short.exhausted
        assert short.truncated_by == "depth"
        assert short.frontier > 0
        assert short.visited < full.visited

    def test_depth_cutoff_with_terminal_frontier_proves_exhaustion(self):
        # When every frontier configuration at the horizon is fully
        # decided (no enabled steps), the depth budget did not actually
        # truncate anything and the report says so.
        def eager(pid, pref, read):
            return ("decide", pref)

        def proto():
            return TwoProcessDeterministic(eager, "eager")

        full = explore_fast(proto(), ("a", "a"))
        assert full.ok
        at_depth = explore_fast(proto(), ("a", "a"),
                                max_depth=full.depth)
        assert at_depth.exhausted
        assert at_depth.truncated_by is None
        assert at_depth.visited == full.visited


class TestTruncatedNeverFullyVerified:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_tiny_budgets_yield_partial_verdicts(self, engine):
        for kwargs in ({"max_states": 5}, {"max_depth": 1}):
            report = verify_safety(NaiveProtocol(3), ("a", "b", "a"),
                                   engine=engine, **kwargs)
            assert report.ok  # nothing bad inside the horizon...
            assert not report.complete  # ...but no totality claim
            assert "up to depth" in report.guarantee()

    def test_explore_fast_budget_interplay(self):
        # Both budgets at once: whichever trips first is reported.
        report = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                              max_depth=2, max_states=10 ** 6)
        assert report.truncated_by == "depth"
        report = explore_fast(NaiveProtocol(3), ("a", "b", "a"),
                              max_depth=10 ** 6, max_states=5)
        assert report.truncated_by == "states"
        assert not report.exhausted

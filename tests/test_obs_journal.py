"""Tests for the JSONL run journal: schema, streaming, and replay parity."""

from __future__ import annotations

import json

import pytest

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.obs.journal import (
    SCHEMA_VERSION,
    JsonlJournal,
    iter_events,
    replay_journal,
    verify_journal,
)
from repro.obs.metrics import MetricsRegistry
from repro.sched.crash import CrashingScheduler, CrashPlan
from repro.sched.simple import RandomScheduler, RoundRobinScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner


def journaled_batch(tmp_path, protocol_factory, inputs, n_runs=20, seed=4):
    """Run a batch with both a live registry and a journal attached."""
    path = str(tmp_path / "run.jsonl")
    live = MetricsRegistry()
    journal = JsonlJournal(path)
    runner = ExperimentRunner(
        protocol_factory=protocol_factory,
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: inputs,
        seed=seed,
        sinks=(live, journal),
    )
    stats = runner.run_many(n_runs, max_steps=4000)
    journal.close()
    return path, live, stats


class TestSchema:
    def test_header_and_line_validity(self, tmp_path):
        path, _, _ = journaled_batch(
            tmp_path, lambda: TwoProcessProtocol(), ("a", "b"), n_runs=3)
        with open(path) as fh:
            lines = [json.loads(l) for l in fh if l.strip()]
        assert lines[0] == {"t": "journal", "v": SCHEMA_VERSION,
                            "mem": "atomic"}
        kinds = {l["t"] for l in lines[1:]}
        assert kinds == {"run_start", "step", "run_end"}
        assert sum(1 for l in lines if l["t"] == "run_start") == 3
        assert sum(1 for l in lines if l["t"] == "run_end") == 3

    def test_step_events_carry_op_fields(self, tmp_path):
        path, _, _ = journaled_batch(
            tmp_path, lambda: TwoProcessProtocol(), ("a", "b"), n_runs=1)
        steps = [e for e in iter_events(path) if e["t"] == "step"]
        reads = [e for e in steps if e["op"] == "read"]
        writes = [e for e in steps if e["op"] == "write"]
        assert reads and writes
        assert all("reg" in e and "result" in e for e in reads)
        assert all("reg" in e and "value" in e for e in writes)
        decided = [e for e in steps if "dec" in e]
        assert len(decided) == 2
        assert all(isinstance(e["act"], int) for e in decided)

    def test_prefnum_serialized_structurally(self, tmp_path):
        path, _, _ = journaled_batch(
            tmp_path, lambda: ThreeUnboundedProtocol(), ("a", "b", "a"),
            n_runs=1)
        writes = [e for e in iter_events(path)
                  if e["t"] == "step" and e["op"] == "write"]
        assert all(isinstance(e["value"], dict) and "num" in e["value"]
                   for e in writes)

    def test_crash_events_journaled(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        journal = JsonlJournal(path)
        rng = ReplayableRng(0)
        scheduler = CrashingScheduler(RoundRobinScheduler(),
                                      CrashPlan(at_step={2: 1}))
        sim = Simulation(TwoProcessProtocol(), ("a", "b"), scheduler,
                         rng.child("kernel"), sinks=(journal,))
        sim.run(100)
        journal.close()
        events = list(iter_events(path))
        crashes = [e for e in events if e["t"] == "crash"]
        assert crashes == [{"t": "crash", "i": 2, "pid": 1}]
        end = [e for e in events if e["t"] == "run_end"][0]
        assert end["crashed"] == [1]

    def test_header_validation(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t":"step"}\n')
        with pytest.raises(ValueError, match="header"):
            list(iter_events(str(bad)))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            list(iter_events(str(empty)))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"t":"journal","v":999}\n')
        with pytest.raises(ValueError, match="version"):
            list(iter_events(str(wrong)))

    def test_unknown_event_rejected_on_replay(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"t":"journal","v":1}\n{"t":"mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            replay_journal(str(path))


class TestReplayParity:
    def test_replay_reproduces_live_metrics_two_process(self, tmp_path):
        path, live, _ = journaled_batch(
            tmp_path, lambda: TwoProcessProtocol(), ("a", "b"), n_runs=30)
        replayed = replay_journal(path)
        assert replayed.to_dict() == live.to_dict()

    def test_replay_reproduces_live_metrics_three_process(self, tmp_path):
        # Exercises the num-depth path through the dict round trip.
        path, live, _ = journaled_batch(
            tmp_path, lambda: ThreeUnboundedProtocol(), ("a", "b", "a"),
            n_runs=15)
        replayed = replay_journal(path)
        assert replayed.to_dict() == live.to_dict()
        assert replayed.gauges["max_num_depth"].maximum >= 1

    def test_replay_into_existing_registry_accumulates(self, tmp_path):
        path, live, _ = journaled_batch(
            tmp_path, lambda: TwoProcessProtocol(), ("a", "b"), n_runs=5)
        reg = replay_journal(path)
        reg = replay_journal(path, registry=reg)
        assert reg.counters["runs"].value == 2 * live.counters["runs"].value

    def test_journal_does_not_retain_events(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JsonlJournal(path)
        rng = ReplayableRng(1)
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RandomScheduler(rng.child("sched")),
                         rng.child("kernel"), sinks=(journal,))
        sim.run(4000)
        assert journal.events_written > 0
        # The only Python-side state is the in-flight step scratch.
        assert journal._pending == {}
        journal.close()

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "cm.jsonl")
        with JsonlJournal(path) as journal:
            rng = ReplayableRng(2)
            sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                             RandomScheduler(rng.child("sched")),
                             rng.child("kernel"), sinks=(journal,))
            sim.run(4000)
        assert journal._fh.closed
        assert list(iter_events(path))


class TestCrashSafeFinalization:
    """The tmp-file + atomic-rename contract of path-owning journals."""

    def test_final_name_appears_only_on_close(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        journal = JsonlJournal(str(path))
        rng = ReplayableRng(3)
        sim = Simulation(TwoProcessProtocol(), ("a", "b"),
                         RandomScheduler(rng.child("sched")),
                         rng.child("kernel"), sinks=(journal,))
        sim.run(4000)
        # Mid-write: only the .tmp exists; the final name never holds
        # a partial journal.
        assert not path.exists()
        assert path.with_suffix(".jsonl.tmp").exists()
        journal.close()
        assert path.exists()
        assert not path.with_suffix(".jsonl.tmp").exists()
        assert list(iter_events(str(path)))

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = JsonlJournal(path)
        journal.close()
        journal.close()  # second close must not re-rename or raise
        assert list(iter_events(path)) == []

    def test_borrowed_handle_not_renamed(self, tmp_path):
        path = tmp_path / "borrowed.jsonl"
        with open(path, "w") as fh:
            journal = JsonlJournal(fh)
            journal.close()
            assert not fh.closed  # caller keeps ownership
        assert not path.with_suffix(".jsonl.tmp").exists()
        assert list(iter_events(str(path))) == []


class TestVerifyJournal:
    def complete_journal(self, tmp_path, n_runs=3):
        path, _, _ = journaled_batch(
            tmp_path, lambda: TwoProcessProtocol(), ("a", "b"),
            n_runs=n_runs)
        return path

    def test_complete_journal_verifies_ok(self, tmp_path):
        verdict = verify_journal(self.complete_journal(tmp_path))
        assert verdict.ok
        assert verdict.version == SCHEMA_VERSION
        assert verdict.memory == "atomic"
        assert verdict.runs == 3
        assert verdict.open_runs == 0
        assert not verdict.truncated
        assert verdict.problems == []
        assert "OK" in verdict.render()

    def test_truncated_tail_detected_not_raised(self, tmp_path):
        path = self.complete_journal(tmp_path)
        with open(path) as fh:
            text = fh.read()
        cut = tmp_path / "cut.jsonl"
        # A writer that died mid-line leaves a no-newline fragment.
        cut.write_text(text + '{"t":"step","i":')
        verdict = verify_journal(str(cut))
        assert not verdict.ok
        assert verdict.truncated
        assert verdict.runs == 3  # everything before the damage counts
        assert any("truncated tail" in p for p in verdict.problems)
        assert "DAMAGED" in verdict.render()

    def test_unterminated_run_detected(self, tmp_path):
        orphan = tmp_path / "orphan.jsonl"
        orphan.write_text(
            '{"t":"journal","v":3,"mem":"atomic"}\n'
            '{"t":"run_start","protocol":"two","n":2,"inputs":["a","b"]}\n'
        )
        verdict = verify_journal(str(orphan))
        assert not verdict.ok
        assert verdict.open_runs == 1
        assert verdict.runs == 0
        assert any("unterminated run" in p for p in verdict.problems)

    def test_missing_header_and_empty_file(self, tmp_path):
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"t":"step"}\n')
        verdict = verify_journal(str(headless))
        assert not verdict.ok
        assert any("missing journal header" in p for p in verdict.problems)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert not verify_journal(str(empty)).ok
        missing = verify_journal(str(tmp_path / "nope.jsonl"))
        assert not missing.ok
        assert any("unreadable" in p for p in missing.problems)

    def test_v1_journal_defaults_atomic(self, tmp_path):
        v1 = tmp_path / "v1.jsonl"
        v1.write_text(
            '{"t":"journal","v":1}\n'
            '{"t":"run_start","protocol":"two","n":2,"inputs":["a","b"]}\n'
            '{"t":"run_end","completed":true,"steps":1,"consults":1,'
            '"crashed":[]}\n'
        )
        verdict = verify_journal(str(v1))
        assert verdict.ok
        assert verdict.version == 1
        assert verdict.memory == "atomic"
        assert verdict.runs == 1

"""E8 — fail-stop tolerance: t = n − 1 crashes.

Section 1: "we account to fail/stop type errors of up to all but one
of the system processors", explicitly contrasted with the
message-passing model where "no agreement (even randomized) can be
achieved if more than half of the processors are faulty" [Bracha-Toueg].

The benchmark crashes 0..n−1 processors at adversarial times (right
after each victim's first step — candidacies written, then silence) and
verifies the survivors always decide, measuring how the survivors' cost
scales with the number of crashes.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.core.n_process import NProcessProtocol
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


N = 6
N_RUNS = 150


def batch_with_crashes(t: int, seed: int = 717):
    """Crash the first t processors after one step each."""

    def scheduler_factory(rng):
        plan = CrashPlan(after_activations={pid: 1 for pid in range(t)})
        return CrashingScheduler(RandomScheduler(rng), plan)

    runner = ExperimentRunner(
        protocol_factory=lambda: NProcessProtocol(N),
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(N)
        ),
        seed=seed,
    )
    return runner.run_many(N_RUNS, max_steps=400_000)


def test_bench_crash_sweep(benchmark, report):
    stats_by_t = benchmark.pedantic(
        lambda: {t: batch_with_crashes(t) for t in range(N)},
        rounds=1, iterations=1,
    )
    rows = []
    for t, stats in stats_by_t.items():
        survivor_costs = []
        undecided_survivors = 0
        for run in stats.runs:
            for pid in range(N):
                if pid in run.crashed:
                    continue
                cost = run.steps_to_decide.get(pid)
                if cost is None:
                    undecided_survivors += 1
                else:
                    survivor_costs.append(cost)
        s = summarize(survivor_costs)
        rows.append((t, N - t, f"{s.mean:.1f}", f"{s.p99:.0f}",
                     undecided_survivors,
                     stats.n_consistency_violations))
        assert undecided_survivors == 0
        assert stats.n_consistency_violations == 0
        assert stats.n_nontriviality_violations == 0
    report.add_table(
        f"E8: fail-stop sweep, n = {N} (crash after first step)",
        header=("crashes t", "survivors", "survivor mean steps", "p99",
                "undecided survivors", "cons.viol"),
        rows=rows,
        note=(f"{N_RUNS} runs per t.  Paper: tolerates t = n-1 (vs the "
              "t < n/2 impossibility in the\nmessage-passing model).  "
              "Measured: survivors always decide, for every t up to "
              f"{N - 1};\nwith more crashes the survivors race ahead of "
              "the frozen registers and finish\n*faster* — crashed "
              "processors are just very slow ones in this model."),
    )


def test_bench_lone_survivor(benchmark, report):
    stats = benchmark.pedantic(
        lambda: batch_with_crashes(N - 1), rounds=1, iterations=1
    )
    costs = []
    for run in stats.runs:
        for pid in range(N):
            if pid not in run.crashed:
                costs.append(run.steps_to_decide[pid])
    s = summarize(costs)
    report.add_section(
        "E8: the lone survivor (t = n-1)",
        [f"survivor decided in mean {s.mean:.1f} steps "
         f"(p99 {s.p99:.0f}) over {len(costs)} runs",
         "wait-freedom means no survivor ever waits on the dead."],
    )
    assert s.mean < 20 * N

"""E10 — the model contrast: shared registers vs message passing.

Section 1: "in the message passing model of [FLP] no agreement (even
randomized) can be achieved if more than half of the processors are
faulty [Bracha–Toueg].  Our protocols, on the other hand, reach such
agreement even in the case of t = n−1 possible crashes among n
processors."

The benchmark puts the two models side by side at every failure budget:

* **registers** — the n-processor CIL protocol with t processors
  actually crashed (t = 0 .. n−1);
* **messages** — Ben-Or (the paper's reference [1]) with assumed budget
  t, under a fair network with min(t, correctness cap) crashes, and
  under the partition adversary at t ≥ n/2, where its two possible
  threshold disciplines lose liveness and safety respectively.
"""

from __future__ import annotations

import pytest

from repro.core.n_process import NProcessProtocol
from repro.msgpass import (
    BenOrProtocol,
    MPSimulation,
    PartitionAdversary,
    RandomDelivery,
)
from repro.sched.crash import CrashPlan, CrashingScheduler
from repro.sched.simple import RandomScheduler
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner


N = 4
N_RUNS = 60


def registers_at(t: int) -> float:
    """Fraction of runs where every survivor decided, registers, t crashes."""

    def scheduler_factory(rng):
        plan = CrashPlan(after_activations={pid: 1 for pid in range(t)})
        return CrashingScheduler(RandomScheduler(rng), plan)

    runner = ExperimentRunner(
        protocol_factory=lambda: NProcessProtocol(N),
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(N)
        ),
        seed=818 + t,
    )
    ok = 0
    for i in range(N_RUNS):
        result = runner.run_one(i, 300_000)
        survivors_decided = all(
            pid in result.decisions
            for pid in range(N) if pid not in result.crashed
        )
        ok += survivors_decided and result.consistent
    return ok / N_RUNS


def benor_at(t: int, thresholds: str = "absolute",
             partition: bool = False, budget: int = 3_000):
    """(live fraction, inconsistent fraction) for Ben-Or at budget t."""
    live = bad = 0
    crashes = list(range(min(t, (N - 1) // 2)))  # actual crashes <= cap
    for seed in range(N_RUNS):
        rng = ReplayableRng(9_000 + 97 * t + seed)
        if partition:
            # The adversary also picks the inputs: one unanimous value
            # per side of the split (its best play).
            scheduler = PartitionAdversary([[0, 1], [2, 3]])
            inputs = (0, 0, 1, 1)
        else:
            scheduler = RandomDelivery(rng.child("net"), crash=crashes)
            inp_rng = rng.child("inp")
            inputs = tuple(inp_rng.choice([0, 1]) for _ in range(N))
        sim = MPSimulation(BenOrProtocol(N, t, thresholds=thresholds),
                           inputs, scheduler, rng)
        result = sim.run(budget)
        live += result.all_live_decided
        bad += not result.consistent
    return live / N_RUNS, bad / N_RUNS


def test_bench_model_contrast(benchmark, report):
    def run_all():
        rows = []
        for t in range(N):
            reg_ok = registers_at(t)
            mp_live, mp_bad = benor_at(t)
            rows.append((t, f"{reg_ok:.2f}", f"{mp_live:.2f}",
                         f"{mp_bad:.2f}",
                         "both OK" if t * 2 < N else
                         "registers only (Bracha-Toueg wall)"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.add_table(
        f"E10: crash budget t vs model, n = {N} "
        "(fraction of runs where all survivors decide)",
        header=("t", "registers: survivors decide",
                "Ben-Or: survivors decide", "Ben-Or: inconsistent",
                "regime"),
        rows=rows,
        note=(f"{N_RUNS} runs per cell.  Paper: the register protocols "
              "tolerate t = n−1, while in\nmessage passing 'no agreement "
              "(even randomized) can be achieved if more than half\nthe "
              "processors are faulty'.  Registers stay at 1.00 "
              "throughout; Ben-Or's waiting\nthresholds become "
              "unsatisfiable once t ≥ n/2 (liveness collapses even "
              "with zero\nactual crashes — waiting for n−t votes can't "
              "produce a majority of n)."),
    )
    # Registers: perfect at every t.
    for row in rows:
        assert row[1] == "1.00"
    # Ben-Or: live below the wall, dead at and above it.
    assert float(rows[1][2]) == 1.0          # t=1 < n/2
    assert float(rows[2][2]) == 0.0          # t=2 = n/2
    assert float(rows[3][2]) == 0.0          # t=3


def test_bench_partition_failure_shapes(benchmark, report):
    def run_both():
        return {
            "absolute": benor_at(2, thresholds="absolute", partition=True),
            "relative": benor_at(2, thresholds="relative", partition=True),
        }

    shapes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ("absolute (real Ben-Or)", f"{shapes['absolute'][0]:.2f}",
         f"{shapes['absolute'][1]:.2f}", "loses liveness, keeps safety"),
        ("relative (broken variant)", f"{shapes['relative'][0]:.2f}",
         f"{shapes['relative'][1]:.2f}", "keeps liveness, loses safety"),
    ]
    report.add_table(
        f"E10: the two failure shapes at t = n/2 under a partition "
        f"(n = {N}, groups 2+2)",
        header=("threshold discipline", "survivors decide",
                "inconsistent runs", "failure shape"),
        rows=rows,
        note=("Bracha-Toueg says no protocol gets both properties at "
              "t ≥ n/2; Ben-Or's two\nthreshold disciplines lose one "
              "each, and the partition adversary exhibits both\nfates "
              "on every run.  The shared-register protocols have no "
              "such wall: E8 shows\nt = n−1 with all survivors "
              "deciding."),
    )
    assert shapes["absolute"][1] == 0.0   # never inconsistent
    assert shapes["absolute"][0] == 0.0   # never live
    assert shapes["relative"][1] == 1.0   # always split


def test_bench_benor_throughput(benchmark):
    """Raw cost of one fair-network Ben-Or run (timing)."""
    counter = {"i": 0}

    def once():
        counter["i"] += 1
        rng = ReplayableRng(counter["i"])
        sim = MPSimulation(BenOrProtocol(5, 2), (0, 1, 0, 1, 1),
                           RandomDelivery(rng.child("net")), rng)
        return sim.run(100_000)

    result = benchmark(once)
    assert result.consistent
"""E1 — Theorem 4 (Section 3): deterministic coordination is impossible.

The paper's "result" here is qualitative: every deterministic protocol
admits a safety violation or an infinite non-deciding schedule.  The
benchmark sweeps the deterministic zoo through the mechanized Lemma 2 /
Lemma 3 pipeline, times the certificate construction, and reports one
certificate per protocol — the reproduction of the theorem on concrete
instances.
"""

from __future__ import annotations

import pytest

from repro.checker import analyze_deterministic, find_bivalent_initial
from repro.core.deterministic import zoo


def certificates():
    return [analyze_deterministic(p) for p in zoo()]


def test_bench_theorem4_certificates(benchmark, report):
    reports = benchmark.pedantic(certificates, rounds=3, iterations=1)

    rows = []
    for r in reports:
        if r.lasso_cycle is not None:
            witness = (f"repeat {list(r.lasso_cycle)} after "
                       f"{len(r.lasso_prefix)}-step prefix"
                       + (" (fair)" if r.fair else ""))
        else:
            witness = r.consistency_violation or r.nontriviality_violation
        rows.append((r.protocol_name.replace("Deterministic", "det"),
                     r.inputs, r.verdict, witness, r.states_explored))

    report.add_table(
        "E1 (Theorem 4): every deterministic protocol fails",
        header=("protocol", "inputs", "verdict", "witness", "configs"),
        rows=rows,
        note=("Paper claim: for every consistent nontrivial deterministic "
              "protocol there is an\ninfinite schedule on which no "
              "processor terminates.  Measured: each zoo member\nyields an "
              "explicit certificate; none satisfies all three properties."),
    )
    assert len(reports) == len(zoo())
    for r in reports:
        assert r.verdict in (
            "violates consistency", "violates nontriviality",
            "admits an infinite non-deciding schedule",
        )


def test_bench_lemma2_bivalent_initial(benchmark, report):
    def find_all():
        return [(p.name, find_bivalent_initial(p)) for p in zoo()]

    found = benchmark.pedantic(find_all, rounds=3, iterations=1)
    rows = []
    for name, hit in found:
        if hit is None:
            rows.append((name, "none (fails safety instead)", "-"))
        else:
            inputs, graph, _ = hit
            rows.append((name, inputs, graph.n_states))
    report.add_table(
        "E1 (Lemma 2): bivalent initial configurations",
        header=("protocol", "bivalent inputs", "reachable configs"),
        rows=rows,
        note=("Paper claim: every coordination protocol has a bivalent "
              "initial configuration\n(the proof uses the mixed-input "
              "assignment I_ab).  Measured: found for every\nconsistent "
              "zoo member, at mixed inputs as the proof predicts."),
    )
    assert any(hit is not None for _n, hit in found)

"""E-store — warm-cache sweeps answered without kernel execution.

PR 7's tentpole added the content-addressed run store
(:mod:`repro.store`): every committed shard is keyed by
``(spec_hash, root_seed, index_range)``, so repeating an identical
sweep is pure deserialization — zero kernel steps.  This benchmark
times one instrumented sweep cold (empty store, every shard executed
and committed) and the same sweep warm (every shard answered from
cache), asserts the warm results are *bit-identical* to the cold ones
(RunStats fields, metrics snapshot, journal bytes), gates on a minimum
warm-over-cold speedup, and emits ``BENCH_store.json`` on the shared
envelope so future PRs inherit the store's perf trajectory.

Methodology: both sweeps run through the same ``run_many(...,
store=...)`` entry point with identical shard geometry; the only
variable is store occupancy.  Exactness — including journal bytes — is
asserted on an untimed cold/warm pair first; the timed pairs then run
without a journal so the gate measures the cache path itself rather
than journal-segment IO (which both sides pay identically).  Cold/warm
wall times are best-of-``REPS`` (each cold rep starts from a fresh
store root) to shed scheduler-noise outliers.  The gate is in-process —
cold and warm are measured in the same session on the same host, so no
cross-host baseline skip is needed; exactness is asserted
unconditionally.
"""

from __future__ import annotations

import shutil
import tempfile
from time import perf_counter

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.obs.metrics import MetricsRegistry
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.runner import ExperimentRunner
from repro.store import RunStore

N_RUNS = 2_000
SHARD = 250
MAX_STEPS = 4_000
REPS = 2
SEED = 2025
# The reference machine measures ~400x (a warm sweep is pickle loads,
# not kernel steps); 20x leaves a wide margin for slow CI disks while
# still failing if the cache path ever silently falls back to
# re-execution.
MIN_SPEEDUP = 20.0

INPUTS = ("a", "b", "b")


def make_runner():
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("three-bounded", 3),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(INPUTS),
        seed=SEED,
        sinks=(MetricsRegistry(),),
    )


def timed_sweep(store, journal_path=None):
    """One store-backed sweep; returns (seconds, stats, journal, metrics)."""
    runner = make_runner()
    t0 = perf_counter()
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS, shard_size=SHARD,
                            journal_path=journal_path, store=store)
    seconds = perf_counter() - t0
    journal = None
    if journal_path is not None:
        with open(journal_path, "rb") as fh:
            journal = fh.read()
    return seconds, stats, journal, runner.metrics.to_dict()


def assert_bit_identical(cold, warm):
    _, cold_stats, cold_journal, cold_metrics = cold
    _, warm_stats, warm_journal, warm_metrics = warm
    assert warm_stats.runs == cold_stats.runs
    assert warm_journal == cold_journal
    assert warm_metrics == cold_metrics


def test_bench_store_warm_cache(benchmark, report, tmp_path):
    # Untimed exactness pair (with journal): "served from cache" must
    # mean bit-identical stats, metrics, and journal bytes.  This also
    # warms the kernel caches and allocator before the clock starts.
    exact_root = tempfile.mkdtemp(dir=str(tmp_path))
    exact_store = RunStore(exact_root)
    exact_cold = timed_sweep(exact_store, str(tmp_path / "exact-cold.jsonl"))
    exact_warm = timed_sweep(exact_store, str(tmp_path / "exact-warm.jsonl"))
    assert_bit_identical(exact_cold, exact_warm)
    assert exact_warm[1].store.fully_cached
    shutil.rmtree(exact_root)

    def run_all():
        best_cold = best_warm = None
        first_cold = first_warm = None
        for rep in range(REPS):
            root = str(tmp_path / f"store-{rep}")
            store = RunStore(root)
            cold = timed_sweep(store)
            warm = timed_sweep(store)
            if first_cold is None:
                first_cold, first_warm = cold, warm
            if best_cold is None or cold[0] < best_cold:
                best_cold = cold[0]
            if best_warm is None or warm[0] < best_warm:
                best_warm = warm[0]
        return best_cold, best_warm, first_cold, first_warm

    t_cold, t_warm, cold, warm = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    # The timed (journal-free) pair must agree too.
    assert_bit_identical(cold, warm)
    cold_store, warm_store_stats = cold[1].store, warm[1].store
    assert cold_store.hits == 0
    assert cold_store.runs_executed == N_RUNS
    assert warm_store_stats.fully_cached
    assert warm_store_stats.runs_executed == 0
    assert warm_store_stats.runs_from_cache == N_RUNS

    ratio = t_cold / t_warm
    record = ExperimentRecord(
        experiment="store_warm_cache",
        protocol="three_bounded",
        scheduler="random",
        inputs=",".join(INPUTS),
        seed=SEED,
        n_runs=N_RUNS,
        max_steps=MAX_STEPS,
        metrics={
            "timing": {
                "seconds_cold": t_cold,
                "seconds_warm": t_warm,
                "speedup_ratio": ratio,
                "n_shards": N_RUNS // SHARD,
                "shard_size": SHARD,
                "reps": REPS,
            },
            "store": {
                "cold_misses": cold_store.misses,
                "warm_hits": warm_store_stats.hits,
                "warm_runs_executed": warm_store_stats.runs_executed,
            },
            "bit_identical": True,
        },
    )

    report.add_table(
        f"E-store: warm-cache sweep vs cold ({N_RUNS:,} runs, "
        f"{N_RUNS // SHARD} shards)",
        header=("sweep", "seconds", "runs executed", "speedup"),
        rows=[
            ("cold (empty store)", f"{t_cold:.3f}",
             f"{cold_store.runs_executed:,}", "1.00x"),
            ("warm (fully cached)", f"{t_warm:.3f}",
             f"{warm_store_stats.runs_executed:,}", f"{ratio:.0f}x"),
        ],
        note=("The warm sweep is asserted bit-identical to the cold one "
              "(RunStats, metrics\nsnapshot, journal bytes) before timing "
              f"is reported.  Gate: >= {MIN_SPEEDUP:.0f}x in-process; "
              "the measured ratio lands in BENCH_store.json."),
    )

    dump_bench([record], "store")

    # CI regression gate (see .github/workflows/ci.yml store-smoke).
    assert ratio >= MIN_SPEEDUP, (
        f"warm-cache sweep only {ratio:.1f}x over cold "
        f"(gate {MIN_SPEEDUP:.0f}x)"
    )

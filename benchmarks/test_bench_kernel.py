"""E-kernel — fast-path throughput over the reference kernel.

PR 3's tentpole rebuilt the kernel hot path around a per-protocol
:class:`~repro.sim.transitions.TransitionCache` and mutable run-local
buffers; the reference path (``Simulation(..., engine="reference")``)
preserves
the seed kernel verbatim.  This benchmark measures Monte-Carlo batch
throughput (steps/second) on both engines for a two-processor and a
three-processor bounded protocol under the random scheduler, asserts
the batches are *bit-identical* (same decisions, coin flips, scheduler
consultations, final configurations), gates on a minimum in-process
speedup, and emits ``BENCH_kernel.json`` so future PRs inherit a perf
trajectory (schema in docs/PERFORMANCE.md).

Methodology: the per-run seed derivation (one scheduler stream + one
kernel stream per run, Mersenne construction pre-forced via
``prime()``) is rebuilt *outside* the timed region for every
repetition — the timed loop measures Simulation construction,
``run()``, and ``result()``, which is what a batch actually pays per
run.  Wall time is best-of-``REPS`` to shed scheduler-noise outliers.
"""

from __future__ import annotations

from time import perf_counter

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache

N_RUNS = 8_000
MAX_STEPS = 4_000
REPS = 2
SEED = 2025
# In-process gate: the reference machine measures ~4x (two-processor)
# and ~8x (three-processor bounded) — recorded in BENCH_kernel.json;
# 2.0x leaves headroom for noisy CI hosts while still failing on a
# real fast-path regression.
MIN_SPEEDUP = 2.0


CASES = {
    "two_process": (lambda: TwoProcessProtocol(), ("a", "b")),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b")),
}


def build_streams(seed=SEED, n_runs=N_RUNS):
    """Per-run RNG pairs, Mersenne state pre-built outside the clock."""
    root = ReplayableRng(seed)
    streams = []
    for i in range(n_runs):
        run_rng = root.child("run", i)
        streams.append((run_rng.child("sched").prime(),
                        run_rng.child("kernel")))
    return streams


def timed_batch(protocol, inputs, streams, engine, cache=None):
    """Run one batch over prebuilt streams; returns (seconds, results)."""
    results = []
    append = results.append
    t0 = perf_counter()
    for sched_rng, kernel_rng in streams:
        sim = Simulation(protocol, inputs, RandomScheduler(sched_rng),
                         kernel_rng, engine=engine, cache=cache)
        append(sim.run(MAX_STEPS))
    return perf_counter() - t0, results


def best_of(protocol, inputs, engine, cache=None):
    """Best-of-REPS batch time; results come from the first repetition."""
    best_t, first_results = None, None
    for _ in range(REPS):
        streams = build_streams()  # fresh (stateful) streams per rep
        t, results = timed_batch(protocol, inputs, streams, engine, cache)
        if first_results is None:
            first_results = results
        if best_t is None or t < best_t:
            best_t = t
    return best_t, first_results


def assert_bit_identical(fast_results, ref_results):
    assert len(fast_results) == len(ref_results)
    for f, r in zip(fast_results, ref_results):
        assert f.decisions == r.decisions
        assert f.activations == r.activations
        assert f.coin_flips == r.coin_flips
        assert f.total_steps == r.total_steps
        assert f.sched_consults == r.sched_consults
        assert f.final_configuration == r.final_configuration


def test_bench_kernel_fast_path(benchmark, report):
    # Warmup: populate transition caches, warm allocator and dicts.
    for name, (factory, inputs) in CASES.items():
        protocol = factory()
        warm = build_streams(seed=7, n_runs=300)
        timed_batch(protocol, inputs, warm, engine="fast",
                    cache=TransitionCache(protocol))

    def run_all():
        out = {}
        for name, (factory, inputs) in CASES.items():
            protocol = factory()
            cache = TransitionCache(protocol)
            t_fast, res_fast = best_of(protocol, inputs, engine="fast",
                                       cache=cache)
            t_ref, res_ref = best_of(protocol, inputs,
                                     engine="reference")
            out[name] = (t_fast, t_ref, res_fast, res_ref)
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    records = []
    for name, (t_fast, t_ref, res_fast, res_ref) in measured.items():
        assert_bit_identical(res_fast, res_ref)
        total_steps = sum(r.total_steps for r in res_fast)
        sps_fast = total_steps / t_fast
        sps_ref = total_steps / t_ref
        ratio = sps_fast / sps_ref
        rows.append((name, f"{sps_ref:,.0f}", f"{sps_fast:,.0f}",
                     f"{ratio:.2f}x"))
        records.append(ExperimentRecord(
            experiment="kernel_fast_path",
            protocol=name,
            scheduler="random",
            inputs=",".join(map(str, CASES[name][1])),
            seed=SEED,
            n_runs=N_RUNS,
            max_steps=MAX_STEPS,
            metrics={
                "timing": {
                    "seconds_fast": t_fast,
                    "seconds_reference": t_ref,
                    "steps_per_second_fast": sps_fast,
                    "steps_per_second_reference": sps_ref,
                    "speedup_ratio": ratio,
                    "total_steps": total_steps,
                    "reps": REPS,
                },
                "bit_identical": True,
            },
        ))
        # CI regression gate (see .github/workflows/ci.yml kernel-bench).
        assert ratio >= MIN_SPEEDUP, (
            f"{name}: fast path only {ratio:.2f}x over reference "
            f"(gate {MIN_SPEEDUP}x)"
        )

    report.add_table(
        "E-kernel: fast-path throughput vs reference kernel "
        f"({N_RUNS:,}-run random-scheduler batches)",
        header=("protocol", "reference steps/s", "fast steps/s", "speedup"),
        rows=rows,
        note=("Both engines consume identical RNG streams; the batches "
              "above are asserted\nbit-identical (decisions, coin flips, "
              "consults, final configurations) before\ntiming is "
              f"reported.  Gate: >= {MIN_SPEEDUP:.0f}x in-process; the "
              "measured ratios land in BENCH_kernel.json."),
    )

    dump_bench(records, "kernel")

"""Ablations — design choices DESIGN.md calls out, measured.

1. Coin bias: Figure 1/2 use fair coins.  How does the install
   probability affect expected decision cost (and does any bias break
   safety)?  Theory says 1/2 is near-optimal against the symmetric
   adversary; extreme biases slow the symmetry-breaking down.
2. Adversary strength: oblivious vs adaptive schedulers — the paper's
   bounds hold for the adaptive one, so the gap measures how much the
   adversary's knowledge actually buys.
3. The footnote-2 rewrite: Figure 1's heads-branch rewrites the old
   value "only for ease of analysis" — the skip variant should be
   strictly cheaper.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.adversary import DisagreementAdversary, SplitVoteAdversary
from repro.sched.simple import ObliviousScheduler, RandomScheduler, RoundRobinScheduler
from repro.sim.runner import ExperimentRunner


def mean_steps(protocol_factory, scheduler_factory, n_runs=600, seed=99,
               inputs=("a", "b")):
    runner = ExperimentRunner(
        protocol_factory=protocol_factory,
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: inputs,
        seed=seed,
    )
    stats = runner.run_many(n_runs, max_steps=60_000)
    assert stats.completion_rate == 1.0
    assert stats.n_consistency_violations == 0
    return summarize(stats.per_processor_costs()).mean


def test_bench_coin_bias(benchmark, report):
    biases = (0.1, 0.25, 0.5, 0.75, 0.9)

    def sweep():
        return {
            p: mean_steps(
                lambda p=p: ThreeUnboundedProtocol(p_heads=p),
                lambda rng: SplitVoteAdversary(),
                inputs=("a", "b", "a"),
            )
            for p in biases
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(p, f"{c:.1f}") for p, c in costs.items()]
    report.add_table(
        "Ablation: install-coin bias (three-processor protocol)",
        header=("P(install new value)", "mean steps/proc"),
        rows=rows,
        note=("Safety holds at every bias (asserted per run); the cost "
              "curve shows the coin is a\nliveness knob only.  Extreme "
              "biases slow convergence — retaining too often stalls\n"
              "progress, installing too often lets the adversary keep "
              "prefs split."),
    )
    assert costs[0.5] <= min(costs[0.1], costs[0.9]) * 3


def test_bench_adversary_strength(benchmark, report):
    from repro.sched.lookahead import LookaheadAdversary
    from repro.sched.optimal import OptimalAdversary, solve_game

    optimal = solve_game(TwoProcessProtocol(), ("a", "b"),
                         cost_model="total")
    schedulers = (
        ("round-robin (fair)", lambda rng: RoundRobinScheduler()),
        ("random (fair)", lambda rng: RandomScheduler(rng)),
        ("oblivious bursts", lambda rng: ObliviousScheduler(rng)),
        ("adaptive disagreement", lambda rng: DisagreementAdversary()),
        ("adaptive split-vote", lambda rng: SplitVoteAdversary()),
        ("expectimax lookahead h=4", lambda rng: LookaheadAdversary(4)),
        ("optimal (value iteration)", lambda rng: OptimalAdversary(optimal)),
    )

    def sweep():
        return {
            label: mean_steps(lambda: TwoProcessProtocol(), f)
            for label, f in schedulers
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(label, f"{c:.2f}", "<= 10 OK" if c <= 10 else "EXCEEDED")
            for label, c in costs.items()]
    report.add_table(
        "Ablation: scheduler knowledge vs two-processor cost",
        header=("scheduler", "mean steps/proc", "vs paper bound"),
        rows=rows,
        note=("The paper's 10-step bound is for the *adaptive* "
              "adversary; every weaker\nscheduler must sit below it too. "
              " The ladder shows what knowledge buys: the\nhand-written "
              "heuristics barely beat fair randomness, expectimax "
              "lookahead\nclimbs to ~8, and the exactly solved "
              "total-cost game tops out at 16/2 = 8\npooled (the "
              "per-victim game value is the tight 10 of finding F4)."),
    )
    for c in costs.values():
        assert c <= 10.0


def test_bench_footnote2_rewrite(benchmark, report):
    def sweep():
        return {
            "figure-1 verbatim (heads rewrites)": mean_steps(
                lambda: TwoProcessProtocol(),
                lambda rng: RandomScheduler(rng), n_runs=1500),
            "footnote-2 variant (heads skips)": mean_steps(
                lambda: TwoProcessProtocol(skip_redundant_rewrite=True),
                lambda rng: RandomScheduler(rng), n_runs=1500),
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(label, f"{c:.2f}") for label, c in costs.items()]
    verbatim = costs["figure-1 verbatim (heads rewrites)"]
    skipped = costs["footnote-2 variant (heads skips)"]
    report.add_table(
        "Ablation: the superfluous rewrite (Figure 1, footnote 2)",
        header=("variant", "mean steps/proc"),
        rows=rows,
        note=("Paper: 'this rewriting action is actually superfluous and "
              "is used only for ease\nof analysis.'  Measured saving: "
              f"{verbatim - skipped:.2f} steps/processor "
              f"({100 * (verbatim - skipped) / verbatim:.0f}%)."),
    )
    assert skipped <= verbatim

"""E-robustness — supervision overhead and crash-recovery latency.

PR 10's tentpole added the fault-tolerant sweep supervisor
(:mod:`repro.parallel.supervisor`): per-shard watchdogs, bounded
deterministic retries, and quarantine.  Supervision must be close to
free when nothing goes wrong — the supervisor replaces the pool's
``imap_unordered`` with per-shard processes plus a polling reaper, and
this benchmark gates that the fault-free supervised sweep stays within
``MAX_OVERHEAD`` of the plain parallel engine on the same geometry.
It also measures (without gating — recovery cost depends on where in
the shard the crash lands) the wall-clock price of one injected worker
crash: the supervisor detects the dead process, re-executes the shard,
and still merges a bit-identical result.

Methodology: one untimed supervised sweep first asserts bit-identical
runs/metrics against the plain engine and warms caches.  Timed sweeps
then run journal- and telemetry-free on the fork context (worker
startup is process creation, which is what supervision could plausibly
tax; fork keeps the non-supervision share of it small and equal on
both sides).  Wall times are best-of-``REPS``; the overhead gate is
in-process (both sides measured in the same session on the same host).
Recovery latency is reported as (crashy supervised walltime) minus
(best clean supervised walltime) for a crash injected at shard 0's
first attempt, retried with near-zero backoff.
"""

from __future__ import annotations

import multiprocessing
from time import perf_counter

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.faults import FaultAction, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.parallel.supervisor import SupervisorPolicy
from repro.sim.runner import ExperimentRunner

N_RUNS = 800
SHARD = 100
MAX_STEPS = 2_000
WORKERS = 2
REPS = 3
SEED = 2026
# ISSUE 10 acceptance gate: fault-free supervised sweeps cost at most
# 5% over the plain parallel engine.
MAX_OVERHEAD = 1.05

INPUTS = ("a", "b", "b")

MP = "fork" if "fork" in multiprocessing.get_all_start_methods() \
    else "spawn"


def make_runner():
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("three-bounded", 3),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(INPUTS),
        seed=SEED,
        sinks=(MetricsRegistry(),),
    )


def timed_sweep(supervise, fault_plan=None):
    """One parallel sweep; returns (seconds, stats, metrics dict)."""
    runner = make_runner()
    policy = None
    if fault_plan is not None:
        # Near-zero backoff so the measured recovery latency is
        # detection + re-execution, not a sleep we chose ourselves.
        policy = SupervisorPolicy(backoff_base=0.001, backoff_cap=0.002)
    t0 = perf_counter()
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS, workers=WORKERS,
                            shard_size=SHARD, mp_context=MP,
                            supervise=supervise, policy=policy,
                            fault_plan=fault_plan)
    seconds = perf_counter() - t0
    return seconds, stats, runner.metrics.to_dict()


def test_bench_supervision_overhead(benchmark, report):
    # Untimed exactness pair: supervision must not change any result.
    plain = timed_sweep(supervise=False)
    supervised = timed_sweep(supervise=True)
    assert supervised[1].runs == plain[1].runs
    assert supervised[2] == plain[2]
    assert supervised[1].faults is not None and supervised[1].faults.ok

    def run_all():
        best_plain = best_sup = None
        for _rep in range(REPS):
            t_plain = timed_sweep(supervise=False)[0]
            t_sup = timed_sweep(supervise=True)[0]
            if best_plain is None or t_plain < best_plain:
                best_plain = t_plain
            if best_sup is None or t_sup < best_sup:
                best_sup = t_sup
        # One crash at shard 0's first attempt; the supervisor reaps
        # the dead process and re-executes the shard.
        crash_plan = FaultPlan.build({(0, 0): FaultAction("crash")})
        t_crash, crash_stats, crash_metrics = timed_sweep(
            supervise=True, fault_plan=crash_plan)
        return best_plain, best_sup, t_crash, crash_stats, crash_metrics

    t_plain, t_sup, t_crash, crash_stats, crash_metrics = \
        benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The crashed-and-retried sweep still merges bit-identical.
    assert crash_stats.runs == plain[1].runs
    assert crash_metrics == plain[2]
    assert crash_stats.faults.counts() == {"crash": 1}

    overhead = t_sup / t_plain
    recovery = t_crash - t_sup
    record = ExperimentRecord(
        experiment="supervision_overhead",
        protocol="three_bounded",
        scheduler="random",
        inputs=",".join(INPUTS),
        seed=SEED,
        n_runs=N_RUNS,
        max_steps=MAX_STEPS,
        metrics={
            "timing": {
                "seconds_plain": t_plain,
                "seconds_supervised": t_sup,
                "overhead_ratio": overhead,
                "workers": WORKERS,
                "n_shards": N_RUNS // SHARD,
                "mp_context": MP,
                "reps": REPS,
            },
            "recovery": {
                "seconds_with_one_crash": t_crash,
                "recovery_latency_seconds": recovery,
                "faults_observed": crash_stats.faults.counts(),
            },
            "bit_identical": True,
        },
    )

    report.add_table(
        f"E-robustness: supervised vs plain parallel sweep "
        f"({N_RUNS:,} runs, {WORKERS} workers)",
        header=("sweep", "seconds", "vs plain"),
        rows=[
            ("plain run_many", f"{t_plain:.3f}", "1.00x"),
            ("supervised, fault-free", f"{t_sup:.3f}",
             f"{overhead:.2f}x"),
            ("supervised, one worker crash", f"{t_crash:.3f}",
             f"(+{recovery:.3f}s recovery)"),
        ],
        note=("Supervised and crash-retried sweeps are asserted "
              "bit-identical to the plain\nengine before timing is "
              f"reported.  Gate: fault-free overhead <= "
              f"{MAX_OVERHEAD:.2f}x in-process;\nrecovery latency is "
              "recorded in BENCH_robustness.json, not gated."),
    )

    dump_bench([record], "robustness")

    # CI regression gate (see .github/workflows/ci.yml chaos-smoke).
    assert overhead <= MAX_OVERHEAD, (
        f"fault-free supervised sweep costs {overhead:.3f}x over the "
        f"plain engine (gate {MAX_OVERHEAD:.2f}x)"
    )

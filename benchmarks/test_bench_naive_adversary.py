"""E4 — the Section 5 counterexample: the naive protocol vs the real one.

The paper's contrast, reproduced quantitatively: under the adaptive
strategy that freezes a manufactured disagreement and starves the third
processor,

* the naive "flip until unanimous" protocol never lets the victim
  decide, no matter the budget (its termination probability is 0, not
  merely slow), while
* the Figure 2 protocol's victim out-races the frozen pair and decides
  in a handful of steps.

Under benign (fair random) scheduling both protocols terminate — the
difference is adversary-robustness, which is the paper's whole point.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.core.naive import NaiveProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.sched.adversary import NaiveKillerAdversary
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


BUDGET = 5_000
N_RUNS = 300


def victim_outcomes(protocol_factory, scheduler_factory, seed=77):
    runner = ExperimentRunner(
        protocol_factory=protocol_factory,
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(3)
        ),
        seed=seed,
    )
    decided = 0
    costs = []
    activations = []
    for i in range(N_RUNS):
        result = runner.run_one(i, BUDGET)
        if 2 in result.decisions:
            decided += 1
            costs.append(result.decision_activation[2])
        activations.append(result.activations[2])
    return decided, costs, activations


def test_bench_killer_adversary_contrast(benchmark, report):
    def run_all():
        return {
            "naive / killer": victim_outcomes(
                lambda: NaiveProtocol(3),
                lambda rng: NaiveKillerAdversary()),
            "figure-2 / killer": victim_outcomes(
                lambda: ThreeUnboundedProtocol(),
                lambda rng: NaiveKillerAdversary()),
            "naive / fair random": victim_outcomes(
                lambda: NaiveProtocol(3),
                lambda rng: RandomScheduler(rng)),
            "figure-2 / fair random": victim_outcomes(
                lambda: ThreeUnboundedProtocol(),
                lambda rng: RandomScheduler(rng)),
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (decided, costs, activations) in outcomes.items():
        mean_cost = (f"{summarize(costs).mean:.1f}" if costs else "—")
        mean_act = summarize(activations).mean
        rows.append((label, f"{decided}/{N_RUNS}", mean_cost,
                     f"{mean_act:.0f}"))
    report.add_table(
        "E4 (Section 5): victim decision rate under the killer adversary",
        header=("protocol / scheduler", "victim decided",
                "mean steps to decide", "mean victim activations"),
        rows=rows,
        note=(f"{N_RUNS} runs each, budget {BUDGET} steps; 'victim' = the "
              "processor the adversary\nstarves last.  Paper: the naive "
              "protocol 'fails' — no decision can ever be reached\nby the "
              "victim; the real protocol decides regardless.  Measured "
              "shape matches:\n0% vs 100% under the killer, both fine "
              "under fair scheduling."),
    )

    naive_killer = outcomes["naive / killer"]
    real_killer = outcomes["figure-2 / killer"]
    assert naive_killer[0] == 0, "naive victim must never decide"
    assert real_killer[0] == N_RUNS, "figure-2 victim must always decide"
    # The starved naive victim is activated essentially the whole budget.
    assert summarize(naive_killer[2]).mean > BUDGET * 0.8

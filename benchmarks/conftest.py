"""Shared infrastructure for the reproduction benchmarks.

Each benchmark measures one experiment from DESIGN.md's index (E1-E9 +
ablations) and registers a human-readable table of *paper claim vs
measured value* with the session :class:`ExperimentReport`.  The tables
are printed in pytest's terminal summary (so they land in
``bench_output.txt``) and also written to ``benchmarks/latest_report.txt``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

# -- shared BENCH_*.json schema ---------------------------------------
#
# Every benchmark artifact in this directory is written through
# dump_bench() so the files share one envelope:
#
#   {"schema_version": 1,
#    "git_describe": "<describe or short sha>",
#    "host": {"node": ..., "machine": ..., "cpus": ...},
#    "environment": {...},            # library/python/platform stamp
#    "metrics": {"<experiment>/<protocol>": {...}},  # flat summary
#    "records": [...]}                # full ExperimentRecord dicts
#
# "metrics" duplicates each record's metrics under a stable flat key so
# cross-PR tooling (and the tracing bench's overhead gate) can diff two
# BENCH files without walking the record list; "host" lets perf gates
# skip themselves when the baseline came from different hardware.

BENCH_SCHEMA_VERSION = 1


def bench_path(name: str) -> str:
    """Absolute path of ``benchmarks/BENCH_<name>.json``."""
    return os.path.join(os.path.dirname(__file__), f"BENCH_{name}.json")


def git_describe() -> str:
    """``git describe`` of the working tree, or a short-sha fallback."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for cmd in (["git", "describe", "--always", "--dirty", "--tags"],
                ["git", "rev-parse", "--short", "HEAD"]):
        try:
            out = subprocess.run(cmd, cwd=root, capture_output=True,
                                 text=True, timeout=10)
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    return "unknown"


def host_stamp() -> Dict[str, Any]:
    """Hardware identity for conditional perf gates."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def same_host(doc: Dict[str, Any]) -> bool:
    """Whether a loaded BENCH doc was measured on this machine."""
    return doc.get("host") == host_stamp()


def dump_bench(records: Sequence, name: str) -> str:
    """Write ``BENCH_<name>.json`` in the shared schema; returns path."""
    from repro.analysis.reporting import environment_stamp

    metrics: Dict[str, Any] = {}
    for record in records:
        key = f"{record.experiment}/{record.protocol}/{record.scheduler}"
        n = 2
        while key in metrics:  # repeated cell: disambiguate stably
            key = (f"{record.experiment}/{record.protocol}/"
                   f"{record.scheduler}#{n}")
            n += 1
        metrics[key] = record.metrics
    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_describe": git_describe(),
        "host": host_stamp(),
        "environment": environment_stamp(),
        "metrics": metrics,
        "records": [r.to_dict() for r in records],
    }
    path = bench_path(name)
    with open(path, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True, default=str)
                 + "\n")
    return path


def load_bench(name: str) -> Optional[Dict[str, Any]]:
    """Load a BENCH doc; ``None`` if absent.

    Legacy files (pre-envelope ``{environment, records}``) are lifted
    into the shared shape with ``schema_version`` 0 and no host — so
    consumers can treat every baseline uniformly and host-conditional
    gates automatically skip legacy baselines.
    """
    path = bench_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        doc = json.load(fh)
    if "schema_version" not in doc:
        doc = {
            "schema_version": 0,
            "git_describe": "unknown",
            "host": None,
            "environment": doc.get("environment", {}),
            "metrics": {
                f"{r['experiment']}/{r['protocol']}/{r['scheduler']}":
                    r["metrics"]
                for r in doc.get("records", ())
            },
            "records": doc.get("records", []),
        }
    return doc


class ExperimentReport:
    """Collects experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self.sections: List[Tuple[str, List[str]]] = []

    def add_section(self, title: str, lines: Iterable[str]) -> None:
        self.sections.append((title, list(lines)))

    def add_table(self, title: str, header: Sequence[str],
                  rows: Iterable[Sequence[object]],
                  note: str = "") -> None:
        rows = [list(map(str, row)) for row in rows]
        widths = [
            max(len(str(header[i])), *(len(r[i]) for r in rows)) if rows
            else len(str(header[i]))
            for i in range(len(header))
        ]

        def fmt(cells):
            return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

        lines = [fmt(header), fmt("-" * w for w in widths)]
        lines += [fmt(r) for r in rows]
        if note:
            lines += ["", note]
        self.add_section(title, lines)

    def render(self) -> str:
        out = []
        for title, lines in self.sections:
            out.append("")
            out.append("=" * 78)
            out.append(title)
            out.append("=" * 78)
            out.extend(lines)
        return "\n".join(out)


REPORT = ExperimentReport()


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    return REPORT


REGEN_NOTE = (
    "# Experiment tables: paper claim vs measured value.\n"
    "# Regenerate the full report (all E1..E10 + ablations + "
    "infrastructure rows) with:\n"
    "#   PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only\n"
    "# Running a subset rewrites this file with only that subset's "
    "sections.\n"
    "# See docs/EXPERIMENTS.md for the benchmark-to-theorem map.\n"
)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORT.sections:
        return
    text = REPORT.render()
    terminalreporter.write_line(text)
    path = os.path.join(os.path.dirname(__file__), "latest_report.txt")
    with open(path, "w") as fh:
        fh.write(REGEN_NOTE + text + "\n")
    terminalreporter.write_line(f"\n[experiment tables saved to {path}]")

"""Shared infrastructure for the reproduction benchmarks.

Each benchmark measures one experiment from DESIGN.md's index (E1-E9 +
ablations) and registers a human-readable table of *paper claim vs
measured value* with the session :class:`ExperimentReport`.  The tables
are printed in pytest's terminal summary (so they land in
``bench_output.txt``) and also written to ``benchmarks/latest_report.txt``.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence, Tuple

import pytest


class ExperimentReport:
    """Collects experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self.sections: List[Tuple[str, List[str]]] = []

    def add_section(self, title: str, lines: Iterable[str]) -> None:
        self.sections.append((title, list(lines)))

    def add_table(self, title: str, header: Sequence[str],
                  rows: Iterable[Sequence[object]],
                  note: str = "") -> None:
        rows = [list(map(str, row)) for row in rows]
        widths = [
            max(len(str(header[i])), *(len(r[i]) for r in rows)) if rows
            else len(str(header[i]))
            for i in range(len(header))
        ]

        def fmt(cells):
            return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

        lines = [fmt(header), fmt("-" * w for w in widths)]
        lines += [fmt(r) for r in rows]
        if note:
            lines += ["", note]
        self.add_section(title, lines)

    def render(self) -> str:
        out = []
        for title, lines in self.sections:
            out.append("")
            out.append("=" * 78)
            out.append(title)
            out.append("=" * 78)
            out.extend(lines)
        return "\n".join(out)


REPORT = ExperimentReport()


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    return REPORT


REGEN_NOTE = (
    "# Experiment tables: paper claim vs measured value.\n"
    "# Regenerate the full report (all E1..E10 + ablations + "
    "infrastructure rows) with:\n"
    "#   PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only\n"
    "# Running a subset rewrites this file with only that subset's "
    "sections.\n"
    "# See docs/EXPERIMENTS.md for the benchmark-to-theorem map.\n"
)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORT.sections:
        return
    text = REPORT.render()
    terminalreporter.write_line(text)
    path = os.path.join(os.path.dirname(__file__), "latest_report.txt")
    with open(path, "w") as fh:
        fh.write(REGEN_NOTE + text + "\n")
    terminalreporter.write_line(f"\n[experiment tables saved to {path}]")

"""E-checker — fingerprinted state-space engine vs the objects BFS.

The PR-8 tentpole replaces the checker's dict-of-Configurations BFS
with the fingerprinted table-IR engine
(:mod:`repro.checker.statespace`).  This benchmark is its honesty
harness (docs/CHECKER.md §6):

* **Exactness gate (always on):** before any timing is reported, the
  fingerprint engine's visited set — mapped through the same
  canonicalization + fingerprint function the search used — is
  asserted *identical* to the objects BFS's reachable set on small
  protocol×memory cells, with reductions off and on (POR must preserve
  the set exactly; symmetry must preserve the verdict and quotient
  coverage).  A hash-collision regression or an unsound reduction
  fails here, not in the throughput table.
* **Speedup gate:** visited-states/sec of the fingerprint engine vs
  the objects BFS on the n_process(4) depth-bounded cell.  Both
  engines run back-to-back in this process, so the ratio needs no
  stored-baseline host check (same reasoning as the ir-bench's
  in-process gate) — the ISSUE's >= 10x floor binds unconditionally.
* **Scale cells (recorded, asserted exhaustive):** the paper's
  three-processor bounded protocol — 17.36M reachable configurations,
  far beyond the objects BFS's practical reach — explored exhaustively
  with safety verified inline, and two_process under regular/safe
  register semantics (the HHT weak-memory cells), also exhaustive.

Emits ``BENCH_checker.json`` in the shared envelope
(docs/PERFORMANCE.md); the CI ``checker-bench`` job uploads it.
"""

from __future__ import annotations

from time import perf_counter

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.checker import explore, explore_fast
from repro.core.n_process import NProcessProtocol
from repro.core.naive import NaiveProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol

SEED = 2025
MIN_SPEEDUP = 10.0
GATE_CELL = ("n_process_4", "depth_14")

# Exactness cells: (label, factory, inputs, memory)
EXACT_CELLS = [
    ("two_atomic", lambda: TwoProcessProtocol(), ("a", "b"), None),
    ("two_regular", lambda: TwoProcessProtocol(), ("a", "b"), "regular"),
    ("naive3_atomic", lambda: NaiveProtocol(3), ("a", "b", "a"), None),
]


def _record(protocol, inputs, cell, metrics):
    return ExperimentRecord(
        experiment="checker_statespace",
        protocol=protocol,
        scheduler="exhaustive",  # the checker quantifies over schedulers
        inputs=",".join(map(str, inputs)),
        seed=SEED,
        n_runs=1,
        max_steps=0,
        metrics=dict(metrics, cell=cell),
    )


def _assert_exactness(records):
    """The always-on gate: fingerprint sets == objects BFS, and the
    reductions preserve what they claim to preserve."""
    for label, factory, inputs, memory in EXACT_CELLS:
        graph = explore(factory(), inputs, memory=memory)
        assert graph.complete
        base = explore_fast(factory(), inputs, memory=memory,
                            keep_fingerprints=True,
                            fingerprint_seed=SEED)
        object_set = {base.fingerprint_of(c) for c in graph.depth_of}
        assert base.exhausted and base.ok
        assert object_set == base.fingerprints, (
            f"{label}: fingerprint engine visited a different set "
            f"than the objects BFS")
        checks = {"objects_set_identical": True}
        if memory is None:
            red = explore_fast(factory(), inputs, por=True,
                               keep_fingerprints=True,
                               fingerprint_seed=SEED)
            assert red.por and red.fingerprints == base.fingerprints, (
                f"{label}: POR changed the visited-state set")
            checks["por_set_identical"] = True
            checks["por_pruned_edges"] = red.pruned
        sym = explore_fast(factory(), inputs, memory=memory,
                           symmetry=True, fingerprint_seed=SEED)
        assert sym.ok == base.ok and sym.exhausted, (
            f"{label}: symmetry changed the safety verdict")
        checks["symmetry_verdict_identical"] = True
        checks["symmetry_order"] = sym.symmetry_order
        records.append(_record(
            factory().name, inputs, f"exactness/{label}",
            {"memory": memory or "atomic", "visited": base.visited,
             "gates": checks, "gated": True}))


def test_bench_checker_statespace(benchmark, report):
    records = []
    _assert_exactness(records)

    def run_all():
        out = {}

        # -- speedup gate: n_process(4) depth-bounded, both engines --
        inputs, depth = ("a", "b", "a", "b"), 14
        t0 = perf_counter()
        graph = explore(NProcessProtocol(4), inputs, max_depth=depth)
        t_obj = perf_counter() - t0
        rep = explore_fast(NProcessProtocol(4), inputs, max_depth=depth,
                           fingerprint_seed=SEED)
        assert rep.visited == len(graph.depth_of), (
            "gate cell: engines disagree on the reachable set")
        out["gate"] = (rep, len(graph.depth_of) / t_obj, t_obj)

        # -- scale: three_bounded exhaustive (the paper's 9-counter) --
        out["three_bounded"] = explore_fast(
            ThreeBoundedProtocol(), ("a", "a", "a"),
            fingerprint_seed=SEED)

        # -- scale: weak-memory exhaustive cells --
        for memory in ("regular", "safe"):
            out[f"two_{memory}"] = explore_fast(
                TwoProcessProtocol(), ("a", "b"), memory=memory,
                fingerprint_seed=SEED)
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep, sps_obj, t_obj = measured["gate"]
    ratio = rep.states_per_sec / sps_obj
    records.append(_record(
        "NProcessProtocol(4)", ("a", "b", "a", "b"),
        "speedup/" + "/".join(GATE_CELL),
        {"memory": "atomic", "visited": rep.visited,
         "max_depth": 14,
         "timing": {
             "seconds_fingerprints": rep.seconds,
             "seconds_objects": t_obj,
             "states_per_second_fingerprints": rep.states_per_sec,
             "states_per_second_objects": sps_obj,
             "speedup_ratio": ratio,
         },
         "gated": True}))
    # CI gate (see .github/workflows/ci.yml checker-bench): in-process
    # ratio, so no same_host() conditioning is needed.
    assert ratio >= MIN_SPEEDUP, (
        f"fingerprint engine only {ratio:.2f}x over the objects BFS "
        f"(gate {MIN_SPEEDUP}x)")

    rows = [("n_process(4)/depth14", "atomic", f"{rep.visited:,}",
             f"{sps_obj:,.0f}", f"{rep.states_per_sec:,.0f}",
             f"{ratio:.2f}x", "yes")]

    tb = measured["three_bounded"]
    assert tb.exhausted and tb.ok, (
        "three_bounded must verify exhaustively (ISSUE-8 acceptance)")
    records.append(_record(
        tb.protocol, tb.inputs, "scale/three_bounded_exhaustive",
        {"memory": "atomic", "visited": tb.visited, "edges": tb.edges,
         "depth": tb.depth, "exhausted": True, "ok": tb.ok,
         "timing": {"seconds": tb.seconds,
                    "states_per_second": tb.states_per_sec},
         "gated": False}))
    rows.append(("three_bounded (exhaustive)", "atomic",
                 f"{tb.visited:,}", "-", f"{tb.states_per_sec:,.0f}",
                 "-", "no"))

    for memory in ("regular", "safe"):
        cell = measured[f"two_{memory}"]
        assert cell.exhausted and cell.ok
        records.append(_record(
            cell.protocol, cell.inputs, f"scale/two_{memory}_exhaustive",
            {"memory": memory, "visited": cell.visited,
             "edges": cell.edges, "depth": cell.depth,
             "exhausted": True, "ok": cell.ok,
             "timing": {"seconds": cell.seconds,
                        "states_per_second": cell.states_per_sec},
             "gated": False}))
        rows.append((f"two_process ({memory}, exhaustive)", memory,
                     f"{cell.visited:,}", "-",
                     f"{cell.states_per_sec:,.0f}", "-", "no"))

    report.add_table(
        "E-checker: fingerprinted state-space engine vs objects BFS",
        header=("cell", "memory", "visited", "objects st/s",
                "fingerprints st/s", "speedup", "gated"),
        rows=rows,
        note=("Exactness asserted before timing: fingerprint sets == "
              "objects BFS on every small cell,\nPOR preserves the "
              "visited set, symmetry preserves the verdict "
              f"(docs/CHECKER.md).  Gate: >= {MIN_SPEEDUP:.0f}x\non "
              "the n_process(4) depth-14 cell only; the in-process "
              "ratio needs no host conditioning."),
    )

    dump_bench(records, "checker")

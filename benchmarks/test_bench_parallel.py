"""E-par — sharded Monte-Carlo batch engine: speedup and exactness.

Two claims are on trial.  **Exactness**: a batch sharded across worker
processes must be bit-identical to the serial batch with the same root
seed — same per-run stats, same merged metrics snapshot, same journal
bytes (runs are keyed by ``derive_seed(root, "run", i)``, never by
execution order).  **Speed**: the whole point of the engine is that the
paper's tail estimates (Theorem 7's ≤ (1/4)^(k/2), Theorem 9's (3/4)^k)
need run counts that are slow in one process; at 4 workers on the
two-process batch the engine must recover ≥ 2x of wall clock.

Exactness is asserted unconditionally.  The speedup assertion needs
hardware parallelism, so it is gated on ≥ 4 usable CPUs — but the
measured ratio (and the CPU budget it was measured under) is always
recorded in ``BENCH_parallel.json`` for the perf trajectory.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from conftest import dump_bench
from repro.analysis.reporting import record_batch
from repro.obs import MetricsRegistry
from repro.parallel import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.runner import ExperimentRunner

N_RUNS = 12_000
JOURNAL_RUNS = 1_000
MAX_STEPS = 4_000
WORKERS = 4
SEED = 2025
SPEEDUP_FLOOR = 2.0



def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def pick_context() -> str:
    """Fastest available start method (what a perf-minded caller picks)."""
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def make_runner(registry=None):
    return ExperimentRunner(
        protocol_factory=ProtocolSpec("two", 2),
        scheduler_factory=SchedulerSpec("random"),
        inputs_factory=ConstantInputs(("a", "b")),
        seed=SEED,
        sinks=(registry,) if registry is not None else (),
    )


def test_bench_parallel_speedup_and_exactness(benchmark, report, tmp_path):
    cpus = usable_cpus()
    mp_context = pick_context()
    make_runner().run_many(500, max_steps=MAX_STEPS)  # warmup

    def run_both():
        serial_reg = MetricsRegistry()
        t0 = time.perf_counter()
        serial_stats = make_runner(serial_reg).run_many(
            N_RUNS, max_steps=MAX_STEPS)
        t_serial = time.perf_counter() - t0

        parallel_reg = MetricsRegistry()
        t0 = time.perf_counter()
        parallel_stats = make_runner(parallel_reg).run_many(
            N_RUNS, max_steps=MAX_STEPS, workers=WORKERS,
            mp_context=mp_context)
        t_parallel = time.perf_counter() - t0
        return (serial_stats, serial_reg, t_serial,
                parallel_stats, parallel_reg, t_parallel)

    (serial_stats, serial_reg, t_serial,
     parallel_stats, parallel_reg, t_parallel) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)

    # -- exactness: the tentpole contract, asserted on every host ------
    assert parallel_stats.runs == serial_stats.runs
    assert parallel_reg.to_dict() == serial_reg.to_dict()
    assert serial_stats.completion_rate == 1.0
    assert serial_stats.n_consistency_violations == 0

    # Journal shards must concatenate to the serial journal, byte for
    # byte (smaller batch: journals are IO-bound).
    ser_path = str(tmp_path / "serial.jsonl")
    par_path = str(tmp_path / "parallel.jsonl")
    js = make_runner().run_many(JOURNAL_RUNS, max_steps=MAX_STEPS,
                                journal_path=ser_path)
    jp = make_runner().run_many(JOURNAL_RUNS, max_steps=MAX_STEPS,
                                workers=WORKERS, journal_path=par_path,
                                mp_context=mp_context)
    with open(ser_path, "rb") as fh:
        serial_journal = fh.read()
    with open(par_path, "rb") as fh:
        parallel_journal = fh.read()
    assert parallel_journal == serial_journal
    assert jp.journal_events == js.journal_events

    # -- speed ---------------------------------------------------------
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    total_steps = sum(r.total_steps for r in serial_stats.runs)

    report.add_table(
        f"E-par: sharded batch engine, {N_RUNS}-run two-processor batch "
        f"({WORKERS} workers, {mp_context} start, {cpus} CPUs usable)",
        header=("configuration", "wall time", "steps/s", "speedup"),
        rows=[
            ("serial (workers=1)", f"{t_serial:.3f}s",
             f"{total_steps / t_serial:,.0f}", "1.00x"),
            (f"sharded (workers={WORKERS})", f"{t_parallel:.3f}s",
             f"{total_steps / t_parallel:,.0f}", f"{speedup:.2f}x"),
        ],
        note=(f"Merged run stats, metrics snapshot, and journal are "
              f"bit-identical to serial\n(asserted). Speedup floor of "
              f"{SPEEDUP_FLOOR:.0f}x at {WORKERS} workers is enforced "
              f"when >= 4 CPUs are usable."),
    )

    if cpus >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKERS}-worker batch only {speedup:.2f}x faster than "
            f"serial on {cpus} CPUs (floor {SPEEDUP_FLOOR}x)"
        )

    # -- machine-readable perf trajectory ------------------------------
    record = record_batch(
        experiment="parallel_speedup",
        protocol="two",
        scheduler="random",
        inputs="a,b",
        seed=SEED,
        stats=parallel_stats,
    )
    record.metrics["timing"] = {
        "n_runs": N_RUNS,
        "total_steps": total_steps,
        "workers": WORKERS,
        "mp_context": mp_context,
        "usable_cpus": cpus,
        "seconds_serial": t_serial,
        "seconds_parallel": t_parallel,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": cpus >= 4,
        "steps_per_second_serial": total_steps / t_serial,
        "steps_per_second_parallel": total_steps / t_parallel,
        "bit_identical_run_stats": True,
        "bit_identical_metrics": True,
        "bit_identical_journal": True,
        "journal_runs": JOURNAL_RUNS,
        "journal_events": jp.journal_events,
    }
    dump_bench([record], "parallel")

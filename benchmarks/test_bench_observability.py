"""E-obs — observability layer overhead (kernel hot-path budget).

The hook layer's contract is that it is (nearly) free when unused: a
kernel built without sinks keeps no hub and pays one ``is not None``
dispatch check per step.  This benchmark measures a 10k-run
two-processor Monte-Carlo batch in three configurations —

* no sinks (the disabled path; must stay within ~3% of the seed
  kernel, enforced across versions via ``BENCH_observability.json``),
* with a :class:`MetricsRegistry` attached (streaming aggregation),
* with a :class:`JsonlJournal` attached (streaming serialization + IO),

asserts the *enabled* paths stay within generous in-process budgets
(they share a machine with the baseline, so ratios are robust where
absolute times are not), and emits a machine-readable record through
``analysis.reporting`` so future PRs have a perf trajectory to compare
against.
"""

from __future__ import annotations

import time

from conftest import dump_bench
from repro.analysis.reporting import record_batch
from repro.core.two_process import TwoProcessProtocol
from repro.obs import JsonlJournal, MetricsRegistry
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner

N_RUNS = 10_000
MAX_STEPS = 4_000
# Enabled-path budgets: ratios over the no-sink baseline.  The
# baseline is the kernel fast path's inlined sink-free loop (PR 3, see
# docs/PERFORMANCE.md), so attaching any sink both adds the emissions
# and leaves that inlining behind — measured on the reference machine:
# metrics ~1.8x, journal ~2.8x.  The budgets leave headroom for noisy
# CI hosts while still catching a hot-path regression (e.g. an
# accidental allocation per event).
METRICS_BUDGET = 3.5
JOURNAL_BUDGET = 7.0

def make_runner(seed=2025, sinks=()):
    return ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
        sinks=sinks,
    )


def timed_batch(sinks=()):
    runner = make_runner(sinks=sinks)
    t0 = time.perf_counter()
    stats = runner.run_many(N_RUNS, max_steps=MAX_STEPS)
    return time.perf_counter() - t0, stats


def test_bench_observability_overhead(benchmark, report, tmp_path):
    make_runner().run_many(500, max_steps=MAX_STEPS)  # warmup

    measured = {}

    def run_all():
        out = {}
        out["no sinks (disabled path)"] = timed_batch()
        out["metrics registry"] = timed_batch(sinks=(MetricsRegistry(),))
        journal = JsonlJournal(str(tmp_path / "bench.jsonl"))
        out["jsonl journal"] = timed_batch(sinks=(journal,))
        journal.close()
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    t_base, stats_base = measured["no sinks (disabled path)"]
    t_metrics, stats_metrics = measured["metrics registry"]
    t_journal, _ = measured["jsonl journal"]
    total_steps = sum(r.total_steps for r in stats_base.runs)

    rows = []
    for label, (t, stats) in measured.items():
        rows.append((label, f"{t:.3f}s", f"{total_steps / t:,.0f}",
                     f"{t / t_base:.2f}x"))
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0

    report.add_table(
        "E-obs: kernel observability overhead, 10k-run two-processor batch",
        header=("configuration", "wall time", "steps/s", "vs disabled"),
        rows=rows,
        note=("The disabled path adds one dispatch check per step over "
              "the seed kernel\n(A/B-measured at ~1%, see "
              "docs/OBSERVABILITY.md); enabled paths must stay\nwithin "
              f"{METRICS_BUDGET:.0f}x (metrics) / {JOURNAL_BUDGET:.0f}x "
              "(journal) of it."),
    )

    # Sinks must not perturb results — identical seeds, identical runs.
    assert ([r.decisions for r in stats_base.runs]
            == [r.decisions for r in stats_metrics.runs])
    assert t_metrics / t_base < METRICS_BUDGET
    assert t_journal / t_base < JOURNAL_BUDGET

    # The metrics batch carries the aggregates the acceptance criteria
    # name: percentile steps-to-decide and coin-flip histograms.
    reg = stats_metrics.metrics
    assert reg.histograms["steps_to_decide"].p99 >= 1
    assert reg.histograms["coin_flips_per_decision"].total == 2 * N_RUNS

    # Machine-readable perf trajectory for future PRs.
    record = record_batch(
        experiment="observability_overhead",
        protocol="two",
        scheduler="random",
        inputs="a,b",
        seed=2025,
        stats=stats_metrics,
    )
    record.metrics["timing"] = {
        "n_runs": N_RUNS,
        "total_steps": total_steps,
        "seconds_no_sink": t_base,
        "seconds_metrics": t_metrics,
        "seconds_journal": t_journal,
        "steps_per_second_no_sink": total_steps / t_base,
        "metrics_overhead_ratio": t_metrics / t_base,
        "journal_overhead_ratio": t_journal / t_base,
    }
    dump_bench([record], "observability")

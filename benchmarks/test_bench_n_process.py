"""E7 — systems of arbitrary size n: polynomial expected run time.

The abstract claims protocols "achieve fast coordination for systems of
arbitrary number of processors n ... their expected run-time is
polynomial in n" and that "the probability that a processor does not
terminate after taking kn steps is bounded above by an exponentially
decreasing function of k".

The benchmark sweeps n, measures mean per-processor steps (phases are
n−1 reads + 1 write, so linear-in-n phases ⇒ ~quadratic steps at
worst), and measures the tail in units of kn steps.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import empirical_tail, summarize
from repro.core.n_process import NProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


NS = (2, 3, 4, 6, 8, 12)


def batch(n: int, n_runs: int = 200, seed: int = 515):
    runner = ExperimentRunner(
        protocol_factory=lambda: NProcessProtocol(n),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(n)
        ),
        seed=seed,
    )
    return runner.run_many(n_runs, max_steps=400_000)


def test_bench_polynomial_scaling(benchmark, report):
    stats_by_n = benchmark.pedantic(
        lambda: {n: batch(n) for n in NS}, rounds=1, iterations=1
    )
    rows = []
    means = {}
    for n, stats in stats_by_n.items():
        s = summarize(stats.per_processor_costs())
        means[n] = s.mean
        rows.append((n, f"{s.mean:.1f}", f"{s.mean / n:.2f}",
                     f"{s.p99:.0f}", stats.n_consistency_violations))
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
    report.add_table(
        "E7: per-processor decision cost vs system size n",
        header=("n", "mean steps/proc", "steps / n", "p99", "cons.viol"),
        rows=rows,
        note=("200 runs per n, random binary inputs, fair random "
              "scheduler.  Paper: expected\nrun-time polynomial in n.  "
              "Measured: steps/n is near-flat (phases cost n steps\nand "
              "the number of phases stays ~constant), i.e. roughly "
              "*linear* total steps —\ncomfortably inside the "
              "polynomial claim."),
    )
    # Polynomial (indeed ~linear) growth: fit exponent from the sweep.
    lo, hi = means[2], means[12]
    exponent = math.log(hi / lo) / math.log(12 / 2)
    report.add_section(
        "E7: growth exponent",
        [f"fitted steps ~ n^{exponent:.2f} between n=2 and n=12 "
         "(1 = linear, 2 = quadratic; the abstract only needs "
         "polynomial)"],
    )
    assert exponent < 2.5


def test_bench_kn_tail(benchmark, report):
    n = 6
    stats = benchmark.pedantic(lambda: batch(n, n_runs=600),
                               rounds=1, iterations=1)
    costs = stats.per_processor_costs()
    ks = [1, 2, 3, 4, 6, 8]
    tails = empirical_tail(costs, [k * n for k in ks])
    rows = [
        (k, k * n, f"{t:.4f}") for k, t in zip(ks, tails)
    ]
    report.add_table(
        f"E7 (abstract): P(not decided after k·n steps), n={n}",
        header=("k", "k·n steps", "measured tail"),
        rows=rows,
        note=("600 runs.  Paper: 'the probability that a processor does "
              "not terminate after\ntaking kn steps is bounded above by "
              "an exponentially decreasing function of k'\n— the "
              "measured column should (and does) fall at least "
              "geometrically in k."),
    )
    positive = [t for t in tails if t > 0]
    # Exponential decrease: each doubling of k crushes the tail.
    assert tails[-1] == 0 or tails[-1] < tails[0] / 8

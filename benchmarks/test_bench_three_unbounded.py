"""E3 — the three-processor unbounded protocol (Section 5, Theorems 8/9).

Paper numbers to reproduce:

* Theorem 9: P(num = k in any register) ≤ (3/4)^k — the num fields are
  "unbounded" only with exponentially vanishing probability;
* corollary: constant expected running time;
* Theorem 8 (consistency) — plus finding F1: the *literal* Figure 2
  decision rule is inconsistent, and this harness regenerates the
  violation side by side with the corrected rule's clean record.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.analysis.theory import three_unbounded_num_tail_bound
from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.sched.adversary import LaggardFreezer, SplitVoteAdversary
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


def batch(decision_rule="own-leader", scheduler=None, n_runs=1500,
          seed=2026, max_steps=30_000, collect_nums=False):
    nums = []

    def protocol_factory():
        return ThreeUnboundedProtocol(decision_rule=decision_rule)

    runner = ExperimentRunner(
        protocol_factory=protocol_factory,
        scheduler_factory=scheduler or (lambda rng: RandomScheduler(rng)),
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(3)
        ),
        seed=seed,
    )
    if not collect_nums:
        return runner.run_many(n_runs, max_steps), nums
    stats_runs = []
    for i in range(n_runs):
        result = runner.run_one(i, max_steps)
        stats_runs.append(result)
        for reg in result.final_configuration.registers:
            nums.append(reg.num)
    return stats_runs, nums


def test_bench_num_field_tail(benchmark, report):
    _, nums = benchmark.pedantic(
        lambda: batch(n_runs=2000, collect_nums=True),
        rounds=1, iterations=1,
    )
    n = len(nums)
    ks = [1, 2, 3, 4, 6, 8, 10, 12]
    rows = []
    measured_by_k = {}
    for k in ks:
        measured = sum(1 for x in nums if x >= k) / n
        measured_by_k[k] = measured
        envelope = three_unbounded_num_tail_bound(max(0, k - 2))
        rows.append((k, f"{measured:.4f}",
                     f"{three_unbounded_num_tail_bound(k):.4f}",
                     f"{envelope:.4f}",
                     "OK" if measured <= envelope + 1e-9 else "ABOVE"))
    # The theorem's content is the geometric *rate*: fit it over the
    # non-trivial ks (every register trivially reaches num = 1 via the
    # initial write, so the raw (3/4)^k curve cannot bind at k <= 2).
    from repro.analysis.stats import fit_geometric_rate

    fit_points = [(k, m) for k, m in measured_by_k.items()
                  if k >= 2 and m > 0]
    rate = fit_geometric_rate([k for k, _ in fit_points],
                              [m for _, m in fit_points])
    report.add_table(
        "E3 (Theorem 9): P(num >= k in a register), geometric envelope",
        header=("k", "measured", "(3/4)^k", "(3/4)^(k-2)", "vs envelope"),
        rows=rows,
        note=(f"{n} final register values over 2000 runs (random "
              "scheduler, random binary inputs).\nPaper: P(num = k) <= "
              "(3/4)^k — the *rate* claim; at k <= 2 the raw curve "
              "cannot bind\n(every register reaches num 1 by its "
              "initial write), so we compare against the\n2-shifted "
              f"envelope.  Fitted per-round decay: {rate:.3f} vs the "
              "paper's 0.75 — the\nmeasured tail decays considerably "
              "faster than the theorem requires."),
    )
    for k, m in measured_by_k.items():
        assert m <= three_unbounded_num_tail_bound(max(0, k - 2)) + 1e-9
    assert rate <= 0.75 + 0.02
    assert max(nums) < 40


def test_bench_expected_running_time(benchmark, report):
    schedulers = (
        ("random", lambda rng: RandomScheduler(rng)),
        ("adaptive split-vote", lambda rng: SplitVoteAdversary()),
        ("adaptive laggard-freezer", lambda rng: LaggardFreezer()),
    )

    def run_all():
        return {
            label: batch(scheduler=factory, n_runs=600)[0]
            for label, factory in schedulers
        }

    stats_by = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, stats in stats_by.items():
        s = summarize(stats.per_processor_costs())
        rows.append((label, f"{s.mean:.1f}", f"{s.mean / 3:.1f}",
                     f"{s.p99:.0f}", stats.n_consistency_violations))
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert s.mean < 60  # "a small constant" number of phases
    report.add_table(
        "E3 (corollary): expected running time is a small constant",
        header=("scheduler", "mean steps/proc", "≈ phases (3 steps each)",
                "p99 steps", "cons.viol"),
        rows=rows,
        note=("600 runs per scheduler.  Paper: 'the expected running "
              "time of the protocol is a\nsmall constant' — measured: a "
              "handful of phases per processor, adversary or not."),
    )


def test_bench_finding_f1_literal_rule(benchmark, report):
    def violations_for(rule):
        stats, _ = batch(decision_rule=rule, n_runs=3000, seed=29)
        return stats

    literal = benchmark.pedantic(
        lambda: violations_for("literal"), rounds=1, iterations=1
    )
    corrected = violations_for("own-leader")
    rows = [
        ("literal Figure 2 wording", 3000, literal.n_consistency_violations,
         "INCONSISTENT" if literal.n_consistency_violations else "no hit"),
        ("corrected (decider leads)", 3000,
         corrected.n_consistency_violations, "consistent"),
    ]
    report.add_table(
        "E3 / finding F1: literal vs corrected decision rule",
        header=("decision rule", "runs", "consistency violations",
                "verdict"),
        rows=rows,
        note=("The extended abstract's Figure 2 lets any processor decide "
              "upon *observing*\nunanimous leaders two ahead; with "
              "non-atomic phase reads a trailing processor\ncan decide "
              "off a stale view while the laggard races to an opposite "
              "lead.\nThe corrected rule (decider must itself lead — as "
              "in the journal version)\npasses the identical search."),
    )
    assert literal.n_consistency_violations > 0
    assert corrected.n_consistency_violations == 0


def test_bench_srsw_vs_mrsw_layout(benchmark, report):
    def run_layout(layout):
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeUnboundedProtocol(layout=layout),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b", "a"),
            seed=31,
        )
        return runner.run_many(400, 40_000)

    both = benchmark.pedantic(
        lambda: {lay: run_layout(lay) for lay in ("mrsw", "srsw")},
        rounds=1, iterations=1,
    )
    rows = []
    for lay, stats in both.items():
        s = summarize(stats.per_processor_costs())
        rows.append((lay, f"{s.mean:.1f}", stats.n_consistency_violations,
                     f"{stats.completion_rate:.3f}"))
        assert stats.n_consistency_violations == 0
        assert stats.completion_rate == 1.0
    report.add_table(
        "E3 (register classes): 1W2R vs the full paper's 1W1R layout",
        header=("layout", "mean steps/proc", "cons.viol", "completion"),
        rows=rows,
        note=("Paper: 'In the full paper we prove that the same protocol "
              "also works with\n1-writer 1-reader registers.'  The 1W1R "
              "variant duplicates each register per\nreader (two writes "
              "per phase) — measured: correct, at the expected extra "
              "cost."),
    )

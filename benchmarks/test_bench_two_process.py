"""E2 — the two-processor protocol (Section 4, Theorems 6/7 + corollary).

Paper numbers to reproduce:

* expected steps to decide ≤ 10 (corollary: 2 + 4·2),
* P(not decided after k own steps) ≤ (1/4)^(k/2) against any adaptive
  adversary,
* consistency always.

The benchmark runs large seeded batches under schedulers of increasing
hostility and compares the measured mean and tail against the bounds.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import empirical_tail, fit_geometric_rate, summarize
from repro.analysis.theory import (
    two_process_expected_steps_bound,
    two_process_tail_bound,
    two_process_tail_paper_stated,
)
from repro.core.two_process import TwoProcessProtocol
from repro.sched.adversary import DisagreementAdversary, SplitVoteAdversary
from repro.sched.simple import ObliviousScheduler, RandomScheduler
from repro.sim.rng import ReplayableRng
from repro.sim.runner import ExperimentRunner


N_RUNS = 1500
SCHEDULERS = (
    ("round-robin-ish random", lambda rng: RandomScheduler(rng)),
    ("oblivious bursts", lambda rng: ObliviousScheduler(rng)),
    ("adaptive disagreement", lambda rng: DisagreementAdversary()),
    ("adaptive split-vote", lambda rng: SplitVoteAdversary()),
)


def batch(scheduler_factory, n_runs=N_RUNS, seed=2025):
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=seed,
    )
    return runner.run_many(n_runs, max_steps=4000)


def test_bench_expected_steps(benchmark, report):
    stats_by_sched = {}

    def run_all():
        out = {}
        for label, factory in SCHEDULERS:
            out[label] = batch(factory)
        return out

    stats_by_sched = benchmark.pedantic(run_all, rounds=1, iterations=1)

    bound = two_process_expected_steps_bound()
    rows = []
    for label, stats in stats_by_sched.items():
        s = summarize(stats.per_processor_costs())
        rows.append((label, f"{s.mean:.2f}", f"{s.p99:.0f}", f"{s.maximum:.0f}",
                     f"≤ {bound:.0f}",
                     "OK" if s.mean <= bound else "EXCEEDED",
                     stats.n_consistency_violations))
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
        assert s.mean <= bound
    report.add_table(
        "E2 (Corollary to Thm 7): two-processor expected steps vs bound 10",
        header=("scheduler", "mean steps", "p99", "max", "paper bound",
                "verdict", "cons.viol"),
        rows=rows,
        note=(f"{N_RUNS} runs per scheduler, inputs ('a','b'). Paper: "
              "expected ≤ 2 + 4·2 = 10 steps\nper processor against any "
              "adaptive adversary; measured means sit well inside it."),
    )


def test_bench_termination_tail(benchmark, report):
    stats = benchmark.pedantic(
        lambda: batch(lambda rng: DisagreementAdversary(), n_runs=4000),
        rounds=1, iterations=1,
    )
    costs = stats.per_processor_costs()
    ks = [2, 4, 6, 8, 10, 12, 14]
    measured = empirical_tail(costs, ks)
    implied = [two_process_tail_bound(k) for k in ks]
    stated = [two_process_tail_paper_stated(k) for k in ks]
    rows = [
        (k, f"{m:.4f}", f"{t:.4f}",
         "OK" if m <= t + 1e-9 else "ABOVE",
         f"{s:.4f}",
         "OK" if m <= s + 1e-9 else "ABOVE (finding F2)")
        for k, m, t, s in zip(ks, measured, implied, stated)
    ]
    positive = [(k, m) for k, m in zip(ks, measured) if m > 0]
    fitted = (fit_geometric_rate([k for k, _ in positive],
                                 [m for _, m in positive])
              if len(positive) >= 2 else float("nan"))
    report.add_table(
        "E2 (Theorem 7): P(not decided after k steps), measured vs bounds",
        header=("k", "measured", "(3/4)^((k-2)/2)", "vs proof",
                "(1/4)^((k-2)/2)", "vs stated"),
        rows=rows,
        note=("8000 per-processor samples under the adaptive disagreement "
              f"adversary; fitted per-step decay {fitted:.3f}.\n"
              "Finding F2: the theorem's printed (1/4)^(k/2) does not "
              "follow from its own proof\n(pair-success ≥ 1/4 compounds "
              "to (3/4)^(k/2)); the measured tail confirms it —\nit "
              "violates the printed curve yet sits below the "
              "proof-implied one at every k."),
    )
    for m, t in zip(measured, implied):
        assert m <= t + 1e-9
    # F2's teeth: the printed bound really is violated somewhere.
    assert any(m > s + 1e-9 for m, s in zip(measured, stated))


def test_bench_exact_game_value(benchmark, report):
    """F4: solve the scheduling game exactly — the corollary is tight."""
    from repro.sched.optimal import OptimalAdversary, solve_game

    def solve_all():
        return {
            "P0 steps, inputs (a,b)": solve_game(
                TwoProcessProtocol(), ("a", "b"), cost_model="processor:0"),
            "total steps, inputs (a,b)": solve_game(
                TwoProcessProtocol(), ("a", "b"), cost_model="total"),
            "P0 steps, unanimous (a,a)": solve_game(
                TwoProcessProtocol(), ("a", "a"), cost_model="processor:0"),
            "P0 steps, footnote-2 variant": solve_game(
                TwoProcessProtocol(skip_redundant_rewrite=True),
                ("a", "b"), cost_model="processor:0"),
            "P0 steps, biased coin p=0.9": solve_game(
                TwoProcessProtocol(p_heads=0.9), ("a", "b"),
                cost_model="processor:0"),
        }

    solutions = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = [
        (label, f"{sol.value:.4f}", len(sol.values), sol.iterations)
        for label, sol in solutions.items()
    ]

    # Monte-Carlo under the computed optimal policy must approach the
    # exact value.
    sol = solutions["P0 steps, inputs (a,b)"]
    runner = ExperimentRunner(
        protocol_factory=lambda: TwoProcessProtocol(),
        scheduler_factory=lambda rng: OptimalAdversary(sol),
        inputs_factory=lambda i, rng: ("a", "b"),
        seed=5,
    )
    stats = runner.run_many(3000, 4000)
    measured = (sum(r.steps_to_decide[0] for r in stats.runs)
                / len(stats.runs))

    report.add_table(
        "E2 / finding F4: the exact scheduling game (value iteration)",
        header=("game", "exact worst-case E[cost]", "configs",
                "sweeps"),
        rows=rows,
        note=("The adversary-vs-coins interaction solved exactly on the "
              "finite configuration\ngraph.  The per-processor value is "
              "10.0000: the corollary's bound 2 + 4*2 = 10 is\n*tight* — "
              "the optimal adaptive adversary achieves it (heuristic "
              "adversaries only\nreach ~4).  Monte-Carlo under the "
              f"computed optimal policy: {measured:.2f} steps\n(3000 "
              "runs), matching the game value within sampling error."),
    )
    assert sol.value == pytest.approx(10.0, abs=1e-9)
    assert 9.0 <= measured <= 11.0


def test_bench_single_run_latency(benchmark):
    """Raw kernel throughput: one full two-processor consensus."""
    counter = {"i": 0}

    def one_run():
        counter["i"] += 1
        runner = ExperimentRunner(
            protocol_factory=lambda: TwoProcessProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: ("a", "b"),
            seed=counter["i"],
        )
        return runner.run_one(0, max_steps=4000)

    result = benchmark(one_run)
    assert result.completed

"""E-memory — the memory-semantics layer must not tax the atomic path.

PR 4 routed all kernel register access through a pluggable
:class:`~repro.sim.memory.MemoryModel`.  The refactor's perf contract:
under the default :class:`AtomicMemory` the fast path keeps its inlined
``registers[slot]`` access, so batch throughput may regress at most 10%
against the *PR-3* kernel.  Since the PR-3 loop no longer exists in the
tree, this file carries a frozen replica of its ``_run_fast`` body
(verbatim minus the memory-layer branches) and races the live engine
against it in-process, interleaved best-of-``REPS`` — same host, same
warmup, same prebuilt RNG streams, bit-identical results asserted
before any timing is trusted.

``regular`` / ``safe`` throughput is reported as informational rows
(they pay for pending-write bookkeeping by design and gate nothing).
Results land in ``BENCH_memory.json`` (schema in docs/PERFORMANCE.md).
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.kernel import Activate, Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache

N_RUNS = 5_000
MAX_STEPS = 4_000
REPS = 3
SEED = 2026
#: Acceptance gate: atomic-path throughput >= 90% of the PR-3 replica.
MAX_ATOMIC_OVERHEAD = 0.10


CASES = {
    "two_process": (lambda: TwoProcessProtocol(), ("a", "b")),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b")),
}


def pr3_run_fast(sim: Simulation, max_steps: int) -> None:
    """Frozen replica of the PR-3 ``Simulation._run_fast`` loop.

    The pre-memory-layer hot loop, kept verbatim except that the crash
    cold-branch is reduced to what a random-scheduler batch can reach.
    Runs against a live (atomic) Simulation's internals, so its results
    are directly comparable — and asserted bit-identical — to
    ``sim.run()`` on an identically-seeded twin.
    """
    max_consults = max_steps + sim.protocol.n_processes
    n = sim.protocol.n_processes
    cache = sim._cache
    entries = cache.entries
    build_entry = cache.entry
    resolve_outcome = cache.outcome
    states = sim._states
    registers = sim._registers
    proc_rngs = sim._proc_rngs
    choose = sim.scheduler.choose
    view = sim._view
    activations = sim.activations
    coin_flips = sim.coin_flips
    decisions = sim.decisions
    cur_entries: List[Optional[object]] = [None] * n
    step_index = sim.step_index
    consults = sim.sched_consults
    crashed = sim.crashed

    while sim._enabled and step_index < max_steps \
            and consults < max_consults:
        consults += 1
        sim.sched_consults = consults
        action = choose(view)
        cls = action.__class__
        if cls is int:
            pid = action
        elif cls is Activate:
            pid = action.pid
        else:
            pid = sim._normalize_action(action)
        if pid.__class__ is not int or not 0 <= pid < n:
            sim._check_pid(pid)
        if pid in crashed or pid in decisions:
            raise RuntimeError(f"scheduled ineligible processor {pid}")
        entry = cur_entries[pid]
        if entry is None:
            state = states[pid]
            entry = entries.get((pid, state))
            if entry is None:
                entry = build_entry(pid, state)
        weights = entry.weights
        if weights is None:
            branch_index = 0
        else:
            branch_index = proc_rngs[pid].choice_index(
                weights, entry.total)
            coin_flips[pid] += 1
        op, is_read, slot, value = entry.execs[branch_index]
        if is_read:
            result = registers[slot]
        else:
            registers[slot] = value
            result = None
        outcome = entry.outcomes[branch_index].get(result)
        if outcome is None:
            outcome = resolve_outcome(pid, states[pid], entry,
                                      branch_index, result)
        states[pid] = outcome[0]
        cur_entries[pid] = outcome[2]
        sim._config_cache = None
        activations[pid] += 1
        step_index += 1
        sim.step_index = step_index
        decided = outcome[1]
        if decided is not None:
            sim._record_decision(pid, decided)


def build_streams(seed=SEED, n_runs=N_RUNS):
    """Per-run RNG pairs, Mersenne state pre-built outside the clock."""
    root = ReplayableRng(seed)
    streams = []
    for i in range(n_runs):
        run_rng = root.child("run", i)
        streams.append((run_rng.child("sched").prime(),
                        run_rng.child("kernel")))
    return streams


def timed_batch(protocol, inputs, streams, cache, *, engine,
                memory=None):
    """One batch over prebuilt streams; returns (seconds, results)."""
    results = []
    append = results.append
    t0 = perf_counter()
    if engine == "pr3":
        for sched_rng, kernel_rng in streams:
            sim = Simulation(protocol, inputs, RandomScheduler(sched_rng),
                             kernel_rng, cache=cache)
            pr3_run_fast(sim, MAX_STEPS)
            append(sim.result())
    else:
        for sched_rng, kernel_rng in streams:
            sim = Simulation(protocol, inputs, RandomScheduler(sched_rng),
                             kernel_rng, cache=cache, memory=memory)
            append(sim.run(MAX_STEPS))
    return perf_counter() - t0, results


def assert_bit_identical(a_results, b_results):
    assert len(a_results) == len(b_results)
    for a, b in zip(a_results, b_results):
        assert a.decisions == b.decisions
        assert a.activations == b.activations
        assert a.coin_flips == b.coin_flips
        assert a.total_steps == b.total_steps
        assert a.sched_consults == b.sched_consults
        assert a.final_configuration == b.final_configuration


def test_bench_memory_atomic_overhead(benchmark, report):
    # Warmup both engines (transition caches, allocator, dict sizing).
    for name, (factory, inputs) in CASES.items():
        protocol = factory()
        cache = TransitionCache(protocol)
        warm = build_streams(seed=7, n_runs=300)
        timed_batch(protocol, inputs, warm, cache, engine="pr3")
        warm = build_streams(seed=7, n_runs=300)
        timed_batch(protocol, inputs, warm, cache, engine="live")

    def run_all():
        out = {}
        for name, (factory, inputs) in CASES.items():
            protocol = factory()
            cache = TransitionCache(protocol)
            times = {"pr3": None, "atomic": None}
            results = {}
            # Interleave repetitions so host noise hits both engines
            # evenly; keep the best wall time of each.
            for _ in range(REPS):
                for cell in ("pr3", "atomic"):
                    streams = build_streams()
                    t, res = timed_batch(
                        protocol, inputs, streams, cache,
                        engine="pr3" if cell == "pr3" else "live",
                        memory=None)
                    if cell not in results:
                        results[cell] = res
                    if times[cell] is None or t < times[cell]:
                        times[cell] = t
            # Informational: the weak models' bookkeeping cost.
            weak = {}
            for semantics in ("regular", "safe"):
                streams = build_streams()
                t, res = timed_batch(protocol, inputs, streams, cache,
                                     engine="live", memory=semantics)
                weak[semantics] = (t, res)
            out[name] = (times, results, weak)
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    records = []
    for name, (times, results, weak) in measured.items():
        assert_bit_identical(results["pr3"], results["atomic"])
        total_steps = sum(r.total_steps for r in results["atomic"])
        sps_pr3 = total_steps / times["pr3"]
        sps_atomic = total_steps / times["atomic"]
        ratio = sps_atomic / sps_pr3
        weak_sps = {}
        for semantics, (t, res) in weak.items():
            weak_sps[semantics] = sum(r.total_steps for r in res) / t
            # Weak semantics may occasionally starve a run past the
            # step budget (in-flight writes slow the dance down);
            # consistency must still hold for everyone who decided.
            assert all(r.consistent for r in res)
        rows.append((name, f"{sps_pr3:,.0f}", f"{sps_atomic:,.0f}",
                     f"{ratio:.2f}x",
                     f"{weak_sps['regular']:,.0f}",
                     f"{weak_sps['safe']:,.0f}"))
        records.append(ExperimentRecord(
            experiment="memory_layer_overhead",
            protocol=name,
            scheduler="random",
            inputs=",".join(map(str, CASES[name][1])),
            seed=SEED,
            n_runs=N_RUNS,
            max_steps=MAX_STEPS,
            metrics={
                "timing": {
                    "seconds_pr3_baseline": times["pr3"],
                    "seconds_atomic": times["atomic"],
                    "steps_per_second_pr3_baseline": sps_pr3,
                    "steps_per_second_atomic": sps_atomic,
                    "atomic_over_baseline_ratio": ratio,
                    "steps_per_second_regular": weak_sps["regular"],
                    "steps_per_second_safe": weak_sps["safe"],
                    "total_steps": total_steps,
                    "reps": REPS,
                },
                "gate_max_overhead": MAX_ATOMIC_OVERHEAD,
                "bit_identical": True,
            },
        ))
        # CI regression gate (see .github/workflows/ci.yml memory-smoke).
        assert ratio >= 1.0 - MAX_ATOMIC_OVERHEAD, (
            f"{name}: atomic path at {ratio:.2f}x of the PR-3 baseline "
            f"(gate {1.0 - MAX_ATOMIC_OVERHEAD:.2f}x)"
        )

    report.add_table(
        "E-memory: memory-layer overhead vs frozen PR-3 kernel "
        f"({N_RUNS:,}-run random-scheduler batches)",
        header=("protocol", "PR-3 steps/s", "atomic steps/s", "ratio",
                "regular steps/s", "safe steps/s"),
        rows=rows,
        note=("The PR-3 column times an in-file frozen replica of the "
              "pre-memory-layer fast\nloop over identical RNG streams; "
              "atomic batches are asserted bit-identical to\nit first.  "
              f"Gate: atomic >= {1.0 - MAX_ATOMIC_OVERHEAD:.2f}x of "
              "baseline.  Regular/safe rows are informational\n(pending-"
              "write bookkeeping is a semantic feature, not a "
              "regression)."),
    )

    dump_bench(records, "memory")

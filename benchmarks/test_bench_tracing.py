"""E-tracing — span tracer overhead and the zero-cost-when-off gate.

The tracing tentpole's perf contract has two halves:

* **Off is free.**  A kernel with no sinks attached must run the same
  inlined hot path it ran before the tracer existed.  This benchmark
  re-measures the kernel bench's two-processor cell (same workload,
  same seed discipline, same best-of-``REPS`` clocking) and gates the
  no-tracer throughput against the ``steps_per_second_fast`` recorded
  in ``BENCH_kernel.json`` — within ``MAX_PLAIN_REGRESSION`` — whenever
  that baseline was measured on this same host (cross-host wall-clock
  comparison is noise, so the gate skips itself on foreign baselines;
  the in-file differential assertions still run everywhere).
* **On is bounded and honest.**  With a :class:`Tracer` attached, the
  batch is asserted run-for-run identical to the plain batch
  (decisions, steps, consults — the differential contract of
  ``tests/test_obs_tracing.py`` at benchmark scale), and the slowdown
  must stay inside ``TRACER_BUDGET`` — tracing is expected to cost
  (it materializes a span per step), but not to explode.

Results land in ``BENCH_tracing.json`` (shared schema, see
``benchmarks/conftest.py``) for the cross-PR perf trajectory.
"""

from __future__ import annotations

from time import perf_counter

from conftest import dump_bench, load_bench, same_host
from repro.analysis.reporting import ExperimentRecord
from repro.core.two_process import TwoProcessProtocol
from repro.obs.tracing import Tracer
from repro.sched.simple import RandomScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache

# The no-tracer cell replicates BENCH_kernel's two-processor workload
# exactly so the two files' steps/s are directly comparable.
N_RUNS = 8_000
MAX_STEPS = 4_000
REPS = 2
SEED = 2025
INPUTS = ("a", "b")
# Traced cell: smaller batch (spans accumulate on the tracer), rates
# are intensive so steps/s comparison is unaffected.
N_RUNS_TRACED = 2_000
# Cross-version gate: no-tracer hot path within 5% of the recorded
# kernel baseline (enforced only on the baseline's own host).
MAX_PLAIN_REGRESSION = 0.05
# In-process gate: attached tracer <= this factor over no sinks.  The
# reference machine measures ~5-6x (a Span dataclass + id derivation
# per step beats the inlined loop's per-step cost by design); the
# budget leaves room for noisy hosts while catching a blow-up.
TRACER_BUDGET = 12.0

BASELINE_KEY = "kernel_fast_path/two_process/random"


def build_streams(seed=SEED, n_runs=N_RUNS):
    """Per-run RNG pairs, Mersenne state pre-built outside the clock."""
    root = ReplayableRng(seed)
    streams = []
    for i in range(n_runs):
        run_rng = root.child("run", i)
        streams.append((run_rng.child("sched").prime(),
                        run_rng.child("kernel")))
    return streams


def timed_batch(streams, cache, sink_factory=None):
    """One timed batch; ``sink_factory`` builds the per-batch sink."""
    protocol = TwoProcessProtocol()
    sinks = (sink_factory(),) if sink_factory is not None else None
    results = []
    append = results.append
    t0 = perf_counter()
    for sched_rng, kernel_rng in streams:
        sim = Simulation(protocol, INPUTS, RandomScheduler(sched_rng),
                         kernel_rng, engine="fast", cache=cache,
                         sinks=sinks)
        append(sim.run(MAX_STEPS))
    return perf_counter() - t0, results


def best_of(n_runs, cache, sink_factory=None):
    best_t, first_results = None, None
    for _ in range(REPS):
        streams = build_streams(n_runs=n_runs)
        t, results = timed_batch(streams, cache, sink_factory)
        if first_results is None:
            first_results = results
        if best_t is None or t < best_t:
            best_t = t
    return best_t, first_results


def test_bench_tracing_overhead(benchmark, report):
    protocol = TwoProcessProtocol()
    cache = TransitionCache(protocol)
    # Warmup: transition cache, allocator, branch predictors.
    timed_batch(build_streams(seed=7, n_runs=300), cache)

    def run_all():
        t_plain, res_plain = best_of(N_RUNS, cache)
        t_traced, res_traced = best_of(N_RUNS_TRACED, cache,
                                       sink_factory=Tracer)
        return t_plain, res_plain, t_traced, res_traced

    t_plain, res_plain, t_traced, res_traced = benchmark.pedantic(
        run_all, rounds=1, iterations=1)

    # Differential contract at benchmark scale: the traced batch's runs
    # are a prefix of the plain batch's and must match it exactly.
    for plain, traced in zip(res_plain, res_traced):
        assert plain.decisions == traced.decisions
        assert plain.total_steps == traced.total_steps
        assert plain.sched_consults == traced.sched_consults
        assert plain.final_configuration == traced.final_configuration

    steps_plain = sum(r.total_steps for r in res_plain)
    steps_traced = sum(r.total_steps for r in res_traced)
    sps_plain = steps_plain / t_plain
    sps_traced = steps_traced / t_traced
    traced_ratio = sps_plain / sps_traced

    # In-process gate: attached-tracer slowdown stays in budget.
    assert traced_ratio < TRACER_BUDGET, (
        f"tracer costs {traced_ratio:.1f}x over the sink-free path "
        f"(budget {TRACER_BUDGET}x)"
    )

    # Cross-version gate: the no-tracer hot path against the kernel
    # baseline, only when the baseline came from this host.
    kernel_doc = load_bench("kernel")
    baseline_sps = None
    gate_enforced = False
    if kernel_doc is not None:
        timing = kernel_doc["metrics"].get(BASELINE_KEY, {}).get("timing")
        if timing:
            baseline_sps = timing["steps_per_second_fast"]
        if baseline_sps and same_host(kernel_doc):
            gate_enforced = True
            floor = (1.0 - MAX_PLAIN_REGRESSION) * baseline_sps
            assert sps_plain >= floor, (
                f"no-tracer hot path at {sps_plain:,.0f} steps/s is "
                f">{MAX_PLAIN_REGRESSION:.0%} below the recorded "
                f"kernel baseline {baseline_sps:,.0f} "
                "(BENCH_kernel.json, same host)"
            )

    rows = [
        ("no sinks", f"{t_plain:.3f}s", f"{sps_plain:,.0f}", "1.00x"),
        ("tracer attached", f"{t_traced:.3f}s", f"{sps_traced:,.0f}",
         f"{traced_ratio:.2f}x"),
    ]
    if baseline_sps:
        rows.append((
            "BENCH_kernel baseline",
            "-", f"{baseline_sps:,.0f}",
            "gated" if gate_enforced else "other host (not gated)",
        ))
    report.add_table(
        "E-tracing: span tracer overhead, two-processor random batches",
        header=("configuration", "wall time", "steps/s", "slowdown"),
        rows=rows,
        note=(f"Traced batch asserted run-identical to plain first.  "
              f"Gates: tracer <= {TRACER_BUDGET:.0f}x in-process; "
              f"no-tracer within {MAX_PLAIN_REGRESSION:.0%} of "
              "BENCH_kernel.json on the same host."),
    )

    record = ExperimentRecord(
        experiment="tracing_overhead",
        protocol="two_process",
        scheduler="random",
        inputs=",".join(INPUTS),
        seed=SEED,
        n_runs=N_RUNS,
        max_steps=MAX_STEPS,
        metrics={
            "timing": {
                "reps": REPS,
                "seconds_no_tracer": t_plain,
                "seconds_traced": t_traced,
                "n_runs_traced": N_RUNS_TRACED,
                "total_steps": steps_plain,
                "total_steps_traced": steps_traced,
                "steps_per_second_no_tracer": sps_plain,
                "steps_per_second_traced": sps_traced,
                "tracer_overhead_ratio": traced_ratio,
            },
            "differential_identical": True,
            "kernel_baseline_steps_per_second": baseline_sps,
            "kernel_gate_enforced": gate_enforced,
            "max_plain_regression": MAX_PLAIN_REGRESSION,
        },
    )
    dump_bench([record], "tracing")

"""E-ir — vector mega-batch throughput over the PR-3 fast path.

This PR's tentpole lowers finite protocols to integer tables
(:mod:`repro.ir`) and steps whole Monte-Carlo batches in lockstep NumPy
(``engine="vector"``).  The benchmark measures batch throughput
(steps/second) for the vector engine against the *honest* fast-path
baseline — shared protocol instance, shared
:class:`~repro.sim.transitions.TransitionCache`, RNG streams prebuilt
outside the clock, exactly as ``test_bench_kernel.py`` times it —
asserts every cell's batch is bit-identical across engines before any
timing is reported, gates on the lockstep-friendly cell, and emits
``BENCH_ir.json`` in the shared envelope (docs/PERFORMANCE.md).

Cell design: the random scheduler makes every coin and every consult a
rejection-sampled scalar-width draw, which caps vector wins (the
per-cell ratios land honestly below the headline); the round-robin
scheduler consumes no scheduler randomness at all, so refill waves
consolidate and the six-processor three-value naive protocol — widest
tables, longest runs — shows what the lockstep backend is for.  The
>= 10x gate therefore binds on ``naive_6_3v/round_robin`` only; the
other cells are recorded, not gated (docs/IR.md §5).
"""

from __future__ import annotations

from time import perf_counter

import pytest

np = pytest.importorskip(
    "numpy", reason="the vector-engine benchmark times the numpy backend")

from conftest import dump_bench
from repro.analysis.reporting import ExperimentRecord
from repro.core.naive import NaiveProtocol
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.ir import VectorKernel, compile_protocol
from repro.sched.simple import RandomScheduler, RoundRobinScheduler
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache

N_RUNS = 8_000
REPS = 2
SEED = 2025
# The reference machine measures ~16x on the gate cell (recorded in
# BENCH_ir.json); 10x is the ISSUE's acceptance floor.  The gate is
# in-process (vector vs fast measured back-to-back on the same host in
# the same run), so it needs no stored-baseline host check — it simply
# requires numpy, which the importorskip above already enforces.
MIN_SPEEDUP = 10.0
GATE_CELL = ("naive_6_3v", "round_robin")

# name -> (protocol factory, inputs, scheduler name, max_steps)
CASES = {
    "two_process": (lambda: TwoProcessProtocol(), ("a", "b"),
                    "random", 4_000),
    "three_bounded": (lambda: ThreeBoundedProtocol(), ("a", "b", "b"),
                      "random", 4_000),
    "naive_6_3v#random": (lambda: NaiveProtocol(6, values=("a", "b", "c")),
                          ("a", "b", "c", "a", "b", "c"), "random", 2_000),
    "naive_6_3v": (lambda: NaiveProtocol(6, values=("a", "b", "c")),
                   ("a", "b", "c", "a", "b", "c"), "round_robin", 2_000),
}

SCHED_SPECS = {"random": ("random",), "round_robin": ("round_robin", 0)}


def build_streams(n_runs, seed=SEED):
    """Per-run RNG pairs, Mersenne state pre-built outside the clock."""
    root = ReplayableRng(seed)
    streams = []
    for i in range(n_runs):
        run_rng = root.child("run", i)
        streams.append((run_rng.child("sched").prime(),
                        run_rng.child("kernel")))
    return streams


def make_scheduler(name, sched_rng):
    if name == "random":
        return RandomScheduler(sched_rng)
    return RoundRobinScheduler()


def timed_fast_batch(protocol, inputs, sched_name, streams, cache,
                     max_steps):
    """One fast-path batch over prebuilt streams; (seconds, results)."""
    results = []
    append = results.append
    t0 = perf_counter()
    for sched_rng, kernel_rng in streams:
        sim = Simulation(protocol, inputs,
                         make_scheduler(sched_name, sched_rng),
                         kernel_rng, engine="fast", cache=cache)
        append(sim.run(max_steps))
    return perf_counter() - t0, results


def best_fast(protocol, inputs, sched_name, cache, max_steps):
    best_t, first_results = None, None
    for _ in range(REPS):
        streams = build_streams(N_RUNS)  # fresh stateful streams per rep
        t, results = timed_fast_batch(protocol, inputs, sched_name,
                                      streams, cache, max_steps)
        if first_results is None:
            first_results = results
        if best_t is None or t < best_t:
            best_t = t
    return best_t, first_results


def best_vector(vk, inputs, max_steps):
    indices = list(range(N_RUNS))
    inputs_by_run = [tuple(inputs)] * N_RUNS
    best_t, first_results = None, None
    for _ in range(REPS):
        t0 = perf_counter()
        batch = vk.run_batch(SEED, indices, inputs_by_run,
                             max_steps=max_steps)
        t = perf_counter() - t0
        if first_results is None:
            first_results = batch.results
        if best_t is None or t < best_t:
            best_t = t
    return best_t, first_results


def assert_bit_identical(vec_results, fast_results):
    assert len(vec_results) == len(fast_results)
    for v, f in zip(vec_results, fast_results):
        assert v.decisions == f.decisions
        assert v.activations == f.activations
        assert v.coin_flips == f.coin_flips
        assert v.total_steps == f.total_steps
        assert v.sched_consults == f.sched_consults
        assert v.final_configuration == f.final_configuration


def test_bench_ir_vector_engine(benchmark, report):
    def run_all():
        out = {}
        for name, (factory, inputs, sched_name, max_steps) in CASES.items():
            protocol = factory()
            vk = VectorKernel(compile_protocol(protocol),
                              SCHED_SPECS[sched_name], backend="numpy")
            # Warmup batch: lazy lowering, _Tables sync, allocator.
            vk.run_batch(7, list(range(64)), [tuple(inputs)] * 64,
                         max_steps=200)
            t_vec, res_vec = best_vector(vk, inputs, max_steps)
            cache = TransitionCache(protocol)
            t_fast, res_fast = best_fast(protocol, inputs, sched_name,
                                         cache, max_steps)
            out[name] = (t_vec, t_fast, res_vec, res_fast,
                         vk.compiled.describe())
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    records = []
    for name, (t_vec, t_fast, res_vec, res_fast, tables) \
            in measured.items():
        assert_bit_identical(res_vec, res_fast)
        protocol_name, _, sched_name = name.partition("#")
        sched_name = sched_name or CASES[name][2]
        total_steps = sum(r.total_steps for r in res_vec)
        sps_vec = total_steps / t_vec
        sps_fast = total_steps / t_fast
        ratio = sps_vec / sps_fast
        rows.append((protocol_name, sched_name, f"{sps_fast:,.0f}",
                     f"{sps_vec:,.0f}", f"{ratio:.2f}x"))
        records.append(ExperimentRecord(
            experiment="ir_vector_engine",
            protocol=protocol_name,
            scheduler=sched_name,
            inputs=",".join(map(str, CASES[name][1])),
            seed=SEED,
            n_runs=N_RUNS,
            max_steps=CASES[name][3],
            metrics={
                "timing": {
                    "seconds_vector": t_vec,
                    "seconds_fast": t_fast,
                    "steps_per_second_vector": sps_vec,
                    "steps_per_second_fast": sps_fast,
                    "speedup_ratio": ratio,
                    "total_steps": total_steps,
                    "reps": REPS,
                },
                "backend": "numpy",
                "compiled_tables": tables,
                "bit_identical": True,
                "gated": (protocol_name, sched_name) == GATE_CELL,
            },
        ))
        if (protocol_name, sched_name) == GATE_CELL:
            # CI gate (see .github/workflows/ci.yml ir-bench).
            assert ratio >= MIN_SPEEDUP, (
                f"{name}: vector engine only {ratio:.2f}x over the fast "
                f"path (gate {MIN_SPEEDUP}x)"
            )

    report.add_table(
        "E-ir: vector-engine throughput vs fast path "
        f"({N_RUNS:,}-run lockstep batches)",
        header=("protocol", "scheduler", "fast steps/s",
                "vector steps/s", "speedup"),
        rows=rows,
        note=("Every cell's batch is asserted bit-identical (decisions, "
              "coin flips, consults,\nfinal configurations) across "
              "engines before timing is reported.  Gate: >= "
              f"{MIN_SPEEDUP:.0f}x\non {'/'.join(GATE_CELL)} only — "
              "random-scheduler cells pay scalar rejection sampling\n"
              "and are recorded ungated (docs/IR.md §5, "
              "docs/PERFORMANCE.md)."),
    )

    dump_bench(records, "ir")

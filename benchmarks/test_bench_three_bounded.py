"""E5 — the bounded-register protocol (Section 6, Figure 3).

Paper claims to reproduce:

* correctness with *bounded* registers — we measure the set of distinct
  register values ever written (must stay inside the finite Figure 3
  value table) and the window invariant (all live registers within a
  width-5 section);
* termination at constant expected cost, including under the
  leader/laggard gaps the checkpoint machinery exists for;
* consistency, checked per run and exhaustively to a depth budget.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.checker import verify_safety
from repro.core.three_bounded import ThreeBoundedProtocol, ahead
from repro.sched.adversary import LaggardFreezer, SplitVoteAdversary
from repro.sched.simple import BlockScheduler, RandomScheduler
from repro.sim.runner import ExperimentRunner


def batch(scheduler_factory, n_runs=500, seed=909):
    runner = ExperimentRunner(
        protocol_factory=lambda: ThreeBoundedProtocol(),
        scheduler_factory=scheduler_factory,
        inputs_factory=lambda i, rng: tuple(
            rng.choice(["a", "b"]) for _ in range(3)
        ),
        seed=seed,
    )
    return runner.run_many(n_runs, max_steps=60_000)


def test_bench_bounded_termination(benchmark, report):
    schedulers = (
        ("random", lambda rng: RandomScheduler(rng)),
        ("adaptive split-vote", lambda rng: SplitVoteAdversary()),
        ("adaptive laggard-freezer", lambda rng: LaggardFreezer()),
        ("block-of-9 bursts", lambda rng: BlockScheduler(9)),
    )

    def run_all():
        return {label: batch(f) for label, f in schedulers}

    stats_by = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, stats in stats_by.items():
        s = summarize(stats.per_processor_costs())
        rows.append((label, f"{s.mean:.1f}", f"{s.p99:.0f}",
                     stats.n_consistency_violations,
                     f"{stats.completion_rate:.3f}"))
        assert stats.completion_rate == 1.0
        assert stats.n_consistency_violations == 0
    report.add_table(
        "E5 (Section 6): bounded-register protocol under adversaries",
        header=("scheduler", "mean steps/proc", "p99", "cons.viol",
                "completion"),
        rows=rows,
        note=("500 runs per scheduler, random binary inputs.  The "
              "bounded protocol pays a\nmodest premium over the "
              "unbounded one (re-reads + checkpoint waits) and stays\n"
              "correct and fast against every scheduler we field."),
    )


def test_bench_register_value_domain(benchmark, report):
    def collect_domain():
        runner = ExperimentRunner(
            protocol_factory=lambda: ThreeBoundedProtocol(),
            scheduler_factory=lambda rng: RandomScheduler(rng),
            inputs_factory=lambda i, rng: tuple(
                rng.choice(["a", "b"]) for _ in range(3)
            ),
            seed=11,
        )
        seen = set()
        window_ok = True
        for i in range(300):
            result = runner.run_one(i, 60_000, record_trace=True)
            for step in result.trace:
                if step.op.kind == "write":
                    seen.add(step.op.value)
            regs = [r for r in result.final_configuration.registers
                    if r.mode != "dec" and r.val is not None]
            for x in regs:
                for y in regs:
                    window_ok = window_ok and abs(ahead(x.pos, y.pos)) <= 4
        return seen, window_ok

    seen, window_ok = benchmark.pedantic(collect_domain, rounds=1,
                                         iterations=1)
    by_mode = {}
    for v in seen:
        by_mode[v.mode] = by_mode.get(v.mode, 0) + 1
    # Figure 3's value table: 9 positions x 2 values in run mode (each
    # with a third field), pref states at the 3 checkpoints, 2 dec
    # values.
    theoretical = 9 * 2 * 4 + 3 * 2 * 4 + 2
    report.add_table(
        "E5 (boundedness): distinct register values ever written",
        header=("mode", "distinct values observed"),
        rows=sorted(by_mode.items()),
        note=(f"Total distinct values: {len(seen)} (finite ceiling "
              f"{theoretical}; the paper's table\nlists [1,a]..[9,b], "
              "[3|6|9, pref-a|b], dec-a, dec-b plus the third field).\n"
              f"Width-5 window invariant held on every inspected "
              f"configuration: {window_ok}."),
    )
    assert len(seen) <= theoretical
    assert window_ok


@pytest.mark.parametrize("inputs", [("a", "b", "a"), ("a", "b", "b")])
def test_bench_exhaustive_safety(benchmark, report, inputs):
    result = benchmark.pedantic(
        lambda: verify_safety(ThreeBoundedProtocol(), inputs,
                              max_depth=12, max_states=150_000),
        rounds=1, iterations=1,
    )
    report.add_section(
        f"E5 (exhaustive safety) inputs {inputs}",
        [result.guarantee(),
         "(the test suite pushes the same check to depth 20; "
         "all schedules x coin outcomes)"],
    )
    assert result.ok

"""E9 — register implementability (Lamport [5]).

The paper's hardware claim: bounded single-writer single-reader atomic
registers "can be implemented from existing low level hardware".  The
benchmark climbs the construction tower under adversarial
interleavings, grades every level against the formal safe / regular /
atomic conditions, and prices each rung in primitive events per logical
operation — correctness and cost of the substrate the whole model
stands on.
"""

from __future__ import annotations

import pytest

from repro.registers.workload import run_register_workload


LEVELS = (
    ("safe-cell", "safe", {}),
    ("regular-cell", "regular", {}),
    ("atomic-cell", "atomic", {}),
    ("regular-from-safe", "regular", {}),
    ("unary-regular", "regular", {}),
    ("srsw-atomic", "atomic", {"n_readers": 1}),
    ("mrsw-atomic", "atomic", {"n_readers": 3, "n_reads": 6}),
)

ORDER = {"broken": 0, "safe": 1, "regular": 2, "atomic": 3}
N_SEEDS = 40


def sweep():
    results = {}
    for level, claimed, kw in LEVELS:
        worst = "atomic"
        cost = 0.0
        for seed in range(N_SEEDS):
            r = run_register_workload(level, seed=seed, **kw)
            if ORDER[r.grade()] < ORDER[worst]:
                worst = r.grade()
            cost += r.events_per_op
        results[level] = (claimed, worst, cost / N_SEEDS)
    return results


def test_bench_register_tower(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for level, (claimed, worst, cost) in results.items():
        verdict = "OK" if ORDER[worst] >= ORDER[claimed] else "BROKEN"
        rows.append((level, claimed, worst, f"{cost:.1f}", verdict))
        assert ORDER[worst] >= ORDER[claimed], (level, worst)
    report.add_table(
        "E9 (Lamport): the register construction tower, graded",
        header=("level", "claimed", "worst grade observed",
                "events/op", "verdict"),
        rows=rows,
        note=(f"{N_SEEDS} adversarial interleavings per level; 'worst "
              "grade' is the weakest semantics\nany seed exhibited.  The "
              "bare safe/regular cells degrade exactly as their "
              "semantics\nallow (which validates the checkers), while "
              "every construction holds its claimed\nlevel — at the "
              "events-per-op price of each rung.  This is the executable "
              "form of\nthe paper's 'implementable in existing "
              "technology' claim."),
    )
    # The baselines must really be weaker (the checkers have teeth).
    assert results["safe-cell"][1] == "safe"
    assert results["regular-cell"][1] == "regular"
    # And the tower's costs are ordered as theory predicts.
    assert results["mrsw-atomic"][2] > results["srsw-atomic"][2]
    assert results["unary-regular"][2] > results["regular-from-safe"][2]


@pytest.mark.parametrize("level,kw", [
    ("atomic-cell", {}),
    ("srsw-atomic", {"n_readers": 1}),
    ("mrsw-atomic", {"n_readers": 3, "n_reads": 6}),
])
def test_bench_single_workload_latency(benchmark, level, kw):
    """Raw cost of one graded workload per level (timing benchmark)."""
    counter = {"i": 0}

    def once():
        counter["i"] += 1
        return run_register_workload(level, seed=counter["i"], **kw)

    report = benchmark(once)
    assert report.atomic.ok

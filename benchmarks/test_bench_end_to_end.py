"""E9b — consensus on constructed registers, end to end.

E9 grades the register constructions in isolation; this benchmark
closes the loop by running the paper's *protocols* on top of them in
the interval-time world, where logical operations genuinely overlap.
It measures correctness and the primitive-event cost of each backing —
the full price of "implementable in existing technology" — and records
finding F5 (safe bits preserve the two-processor protocol's
consistency).
"""

from __future__ import annotations

import pytest

from repro.core.three_unbounded import ThreeUnboundedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.registers.adapter import (
    atomic_backing,
    mrsw_atomic_backing,
    regular_backing,
    run_on_constructed_registers,
    safe_backing_for,
    seqnum_atomic_backing,
)


N_RUNS = 120


def sweep(protocol_factory, inputs, backing, n_runs=N_RUNS):
    consistent = nontrivial = completed = 0
    events = 0
    for seed in range(n_runs):
        r = run_on_constructed_registers(
            protocol_factory(), inputs, seed=seed, backing=backing,
        )
        consistent += r.consistent
        nontrivial += r.nontrivial
        completed += r.completed
        events += r.primitive_events
    return {
        "consistent": consistent / n_runs,
        "nontrivial": nontrivial / n_runs,
        "completed": completed / n_runs,
        "events": events / n_runs,
    }


def test_bench_two_process_on_backings(benchmark, report):
    backings = (
        ("atomic cell (reference)", atomic_backing),
        ("seqnum atomic (regular + ts)", seqnum_atomic_backing),
        ("bare regular cell", regular_backing),
        ("bare safe cell (!)", safe_backing_for(("a", "b"))),
    )

    def run_all():
        return {
            label: sweep(lambda: TwoProcessProtocol(), ("a", "b"), b)
            for label, b in backings
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (label, f"{r['consistent']:.2f}", f"{r['completed']:.2f}",
         f"{r['events']:.0f}")
        for label, r in results.items()
    ]
    report.add_table(
        "E9b: the two-processor protocol on constructed registers "
        f"({N_RUNS} interval-world runs each)",
        header=("register backing", "consistent", "completed",
                "primitive events/run"),
        rows=rows,
        note=("Logical reads and writes genuinely overlap here; the "
              "serialized kernel's\natomicity assumption is *earned*, "
              "not assumed.  Finding F5: even the bare safe\ncell — "
              "garbage under overlap — preserves consistency (the "
              "frozen-final-register\nargument of Theorem 6 needs no "
              "atomicity), at the price of extra coin-flip\nrounds.  "
              "The seqnum construction costs more primitive events per "
              "run than the\nreference cell: that is the measured price "
              "of building atomicity from regularity."),
    )
    for label, r in results.items():
        assert r["consistent"] == 1.0, label
        assert r["completed"] == 1.0, label


def test_bench_three_process_on_backings(benchmark, report):
    cases = (
        ("srsw layout / seqnum atomic",
         lambda: ThreeUnboundedProtocol(layout="srsw"),
         seqnum_atomic_backing),
        ("mrsw layout / gossip MRSW",
         lambda: ThreeUnboundedProtocol(),
         mrsw_atomic_backing),
        ("mrsw layout / atomic cell",
         lambda: ThreeUnboundedProtocol(),
         atomic_backing),
    )

    def run_all():
        return {
            label: sweep(pf, ("a", "b", "a"), b, n_runs=60)
            for label, pf, b in cases
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (label, f"{r['consistent']:.2f}", f"{r['completed']:.2f}",
         f"{r['events']:.0f}")
        for label, r in results.items()
    ]
    report.add_table(
        "E9b: the three-processor protocol on constructed registers "
        "(60 interval-world runs each)",
        header=("layout / backing", "consistent", "completed",
                "primitive events/run"),
        rows=rows,
        note=("The srsw layout rides the single-reader seqnum "
              "construction directly (the\nfull paper's configuration); "
              "the mrsw layout needs the reader-gossip MRSW\n"
              "construction, whose n^2 sub-registers dominate the "
              "event bill."),
    )
    for label, r in results.items():
        assert r["consistent"] == 1.0, label
        assert r["completed"] == 1.0, label
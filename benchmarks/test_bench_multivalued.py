"""E6 — Theorem 5: k-valued coordination costs ⌈log₂ k⌉ × binary.

The benchmark sweeps k over {2, 4, 8, 16, 32} with a two-processor
binary base, measures the mean per-processor decision cost, and checks
the paper's shape: cost grows with the instance count ⌈log₂ k⌉ (an
affine fit against the instance count should explain the growth — the
additive announce/scan overhead is also ~linear in the width).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.analysis.theory import multivalued_instance_count
from repro.core.multivalued import MultiValuedProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.sched.simple import RandomScheduler
from repro.sim.runner import ExperimentRunner


KS = (2, 4, 8, 16, 32)
N_RUNS = 250


def mean_cost(k: int, seed: int = 313) -> float:
    values = tuple(range(k))
    runner = ExperimentRunner(
        protocol_factory=lambda: MultiValuedProtocol(
            base_factory=lambda: TwoProcessProtocol(values=(0, 1)),
            values=values,
        ),
        scheduler_factory=lambda rng: RandomScheduler(rng),
        inputs_factory=lambda i, rng: (
            rng.choice(values), rng.choice(values)
        ),
        seed=seed,
    )
    stats = runner.run_many(N_RUNS, max_steps=200_000)
    assert stats.completion_rate == 1.0
    assert stats.n_consistency_violations == 0
    assert stats.n_nontriviality_violations == 0
    return summarize(stats.per_processor_costs()).mean


def test_bench_log_k_scaling(benchmark, report):
    costs = benchmark.pedantic(
        lambda: {k: mean_cost(k) for k in KS}, rounds=1, iterations=1
    )
    base = costs[2]
    rows = []
    for k in KS:
        w = multivalued_instance_count(k)
        rows.append((k, w, f"{costs[k]:.1f}", f"{costs[k] / base:.2f}",
                     f"{costs[k] / w:.1f}"))
    report.add_table(
        "E6 (Theorem 5): k-valued cost vs ceil(log2 k) binary instances",
        header=("k", "instances", "mean steps/proc", "vs k=2",
                "steps per instance"),
        rows=rows,
        note=(f"{N_RUNS} runs per k, two processors, random inputs from "
              "the k-set.  Paper: 'the\ncomplexity of CP_k is log k "
              "times larger than the complexity of CP_2' — the\n"
              "steps-per-instance column should be roughly flat, and it "
              "is."),
    )
    # Shape assertions: monotone growth, roughly linear in the width.
    assert costs[32] > costs[2]
    per_instance = [costs[k] / multivalued_instance_count(k) for k in KS]
    assert max(per_instance) < 3.5 * min(per_instance)

"""Batched Mersenne Twister: CPython's ``random.Random`` vectorized.

The bit-identical determinism contract (docs/IR.md §4) pins every
engine to the exact draw sequences of :class:`random.Random` — which is
MT19937 seeded through ``init_by_array`` over the 32-bit little-endian
chunks of the seed.  Constructing one ``random.Random`` per stream
costs ~100µs of scalar seeding each, and a mega-batch needs
``(n_processes + 1)`` streams *per run*; this module instead keeps the
MT states of all streams of a batch in one ``[S, 624]`` uint32 matrix
and runs the seeding recurrences and the twist across all streams at
once with NumPy.

Verified equivalences (``tests/test_ir_lowering.py::TestMtEquivalence``):

* :meth:`MtRuns.take_words` reproduces successive
  ``random.Random(seed).getrandbits(32)`` words per stream;
* ``random()`` is two words: ``((w0 >> 5) * 67108864.0 + (w1 >> 6)) /
  9007199254740992.0`` (CPython's ``random_random``);
* ``getrandbits(k)``, k ≤ 32, is one word ``>> (32 - k)``;
* :meth:`MtRuns.handoff` round-trips a stream's exact mid-sequence
  state into a live ``random.Random`` via ``setstate`` — the vector
  engine uses this to finish straggler runs on the scalar path without
  perturbing a single draw.

This module imports NumPy unconditionally; the pure-Python fallback
engine never needs it (it uses :class:`~repro.sim.rng.ReplayableRng`
directly).
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

N = 624
M = 397
MATRIX_A = np.uint32(0x9908B0DF)
UPPER_MASK = np.uint32(0x80000000)
LOWER_MASK = np.uint32(0x7FFFFFFF)

_MASK32 = 0xFFFFFFFF
_MASK64 = (1 << 64) - 1

#: Streams per twist chunk (~2.5 MB of state + temporaries per 1024
#: streams): keeps the refill working set cache-resident.
_TWIST_CHUNK = 1024

#: ``init_genrand(19650218)`` — the constant base state every
#: ``init_by_array`` seeding starts from; computed once.
_BASE_STATE: List[int] = []


def _init_genrand_base() -> np.ndarray:
    if not _BASE_STATE:
        mt = [19650218 & _MASK32]
        for i in range(1, N):
            prev = mt[i - 1]
            mt.append((1812433253 * (prev ^ (prev >> 30)) + i) & _MASK32)
        _BASE_STATE.extend(mt)
    return np.array(_BASE_STATE, dtype=np.uint32)


def seed_keys(seeds):
    """CPython seeding keys of 64-bit seeds: 32-bit LE chunks of abs().

    Returns ``(key, key_len)``: ``key`` is ``[S, 2]`` uint32 and
    ``key_len[s]`` is 1 for seeds < 2**32 (CPython drops the leading
    zero chunk) else 2.  Seeds here come from SplitMix64 derivation so
    they are already non-negative 64-bit values.
    """
    if isinstance(seeds, np.ndarray):
        s = seeds.astype(np.uint64, copy=False)
    else:
        s = np.asarray([x & _MASK64 for x in seeds], dtype=np.uint64)
    key = np.empty((len(s), 2), dtype=np.uint32)
    key[:, 0] = (s & np.uint64(_MASK32)).astype(np.uint32)
    key[:, 1] = (s >> np.uint64(32)).astype(np.uint32)
    key_len = np.where(key[:, 1] == 0, 1, 2).astype(np.int64)
    return key, key_len


def init_by_array(key: np.ndarray, key_len: np.ndarray) -> np.ndarray:
    """Vectorized ``init_by_array`` over S streams; returns [624, S].

    The two seeding recurrences are sequential in the state index but
    independent across streams, so each of the 624 + 623 iterations is
    one vector operation over all streams.  The state is laid out
    *transposed* — word index major, stream minor — so each iteration
    touches one contiguous row instead of a 2.5 kB-strided column (the
    strided variant is bound by one cache miss per stream per word and
    is ~20x slower at batch scale).  Key cycling (``j`` wraps at the
    per-stream key length) only ever takes two shapes here — a
    length-1 key pins ``j = 0``, a length-2 key alternates 0, 1 — so
    the per-iteration key term is a precomputed 2-phase select.
    """
    S = key.shape[0]
    mt = np.tile(_init_genrand_base()[:, None], (1, S))
    # Key value and j-addend for even (j=0) and odd (j=1) iterations.
    kv_even = key[:, 0].copy()
    kv_odd = np.where(key_len == 2, key[:, 1], key[:, 0]).astype(np.uint32)
    j_odd = np.where(key_len == 2, 1, 0).astype(np.uint32)
    j_even = np.zeros(S, dtype=np.uint32)
    i = 1
    for t in range(N):
        prev = mt[i - 1]
        kv, ja = (kv_even, j_even) if t % 2 == 0 else (kv_odd, j_odd)
        mt[i] = (
            (mt[i] ^ ((prev ^ (prev >> np.uint32(30)))
                      * np.uint32(1664525))) + kv + ja)
        i += 1
        if i >= N:
            mt[0] = mt[N - 1]
            i = 1
    for t in range(N - 1):
        prev = mt[i - 1]
        mt[i] = (
            (mt[i] ^ ((prev ^ (prev >> np.uint32(30)))
                      * np.uint32(1566083941))) - np.uint32(i))
        i += 1
        if i >= N:
            mt[0] = mt[N - 1]
            i = 1
    mt[0] = np.uint32(0x80000000)
    return mt


def twist(mt: np.ndarray) -> None:
    """One in-place MT19937 state transition over [S, 624] streams.

    The C reference updates ``mt[i]`` in ascending ``i`` and reads
    ``mt[i + M mod N]``, which for ``i >= N - M`` is an entry updated
    earlier in the same pass — so the vectorization goes in the
    standard three segments whose reads are respectively all-old,
    freshly-updated-head, and the wrap element.  Every ``y`` value
    reads only *old* entries (the C loop reads ``mt[i]``/``mt[i+1]``
    before writing index ``i``), so the whole ``yy`` block is
    precomputed up front.

    The block is stream-major (one contiguous 624-word row per
    stream): every operand below then shares one stride pattern, so no
    ufunc has to materialize a transposed temporary — with word-major
    blocks each mixed-layout assignment becomes a full cache-hostile
    transposition once the block outgrows L3.
    """
    one = np.uint32(1)
    y = np.empty_like(mt)
    y[:, :N - 1] = mt[:, 1:] & LOWER_MASK
    y[:, N - 1] = mt[:, 0] & LOWER_MASK
    y |= mt & UPPER_MASK
    mag = np.where((y & one).astype(bool), MATRIX_A, np.uint32(0))
    yy = (y >> one) ^ mag
    # Segment 1: i in [0, N-M): reads mt[i+M] from the old state.
    mt[:, :N - M] = mt[:, M:] ^ yy[:, :N - M]
    # Segment 2: i in [N-M, N-1): reads mt[i+M-N] — entries updated
    # earlier in this same pass, so go in chunks of N-M (each chunk
    # only reads chunks already written: [227,454) reads [0,227) from
    # segment 1, [454,623) reads [227,396) from the previous chunk).
    mt[:, N - M:2 * (N - M)] = mt[:, :N - M] ^ yy[:, N - M:2 * (N - M)]
    mt[:, 2 * (N - M):N - 1] = mt[:, N - M:M - 1] ^ yy[:, 2 * (N - M):N - 1]
    # Segment 3: i = N-1: y uses the *updated* mt[0]; reads mt[M-1].
    y_last = (mt[:, N - 1] & UPPER_MASK) | (mt[:, 0] & LOWER_MASK)
    mag_last = np.where((y_last & one).astype(bool), MATRIX_A, np.uint32(0))
    mt[:, N - 1] = mt[:, M - 1] ^ ((y_last >> one) ^ mag_last)


def temper(block: np.ndarray) -> np.ndarray:
    """MT19937 output tempering of a generated block (any shape)."""
    y = block.copy()
    y ^= y >> np.uint32(11)
    y ^= (y << np.uint32(7)) & np.uint32(0x9D2C5680)
    y ^= (y << np.uint32(15)) & np.uint32(0xEFC60000)
    y ^= y >> np.uint32(18)
    return y


class MtRuns:
    """The word streams of a batch: one MT19937 per stream.

    ``take_words(rows)`` draws the next 32-bit output word of each
    listed stream (rows must be distinct within one call — a stream
    needing two words, e.g. for one ``random()``, takes twice).  Words
    are produced block-wise: a 624-word block per twist, tempered on
    refill and buffered per stream with an independent cursor, exactly
    mirroring CPython's ``genrand_uint32``.

    Streams are seeded **lazily** at their first refill: a stream never
    drawn from (a round-robin batch's scheduler streams, a decided
    processor's coin stream) costs nothing but its seed value.

    Layout: per-stream storage is ``[S, 624]`` (stream-major) because
    NumPy's axis-0 fancy indexing is the fast gather/scatter path, but
    the twist *computes* on the ``[624, k]`` transposed view so each
    word-index operation runs over a contiguous-ish inner axis — the
    micro-benchmarked combination (axis-1 fancy indexing or a strided
    twist are each 5–6x slower at batch scale).
    """

    def __init__(self, seeds) -> None:
        self.key, self.key_len = seed_keys(seeds)
        self.n_streams = self.key.shape[0]
        self.state = np.empty((self.n_streams, N), dtype=np.uint32)
        self.buf = np.empty((self.n_streams, N), dtype=np.uint32)
        self.seeded = np.zeros(self.n_streams, dtype=bool)
        # Cursor == N means "block exhausted, twist before next word";
        # a fresh init starts exhausted, as CPython's mti = N does.
        self.pos = np.full(self.n_streams, N, dtype=np.int64)

    def _refill(self, rows: np.ndarray) -> None:
        # Consolidate: any already-seeded stream sitting exhausted will
        # need its twist soon anyway (exhausted streams have no
        # buffered words to lose, so twisting early changes nothing) —
        # fold them in to amortize the per-call fixed cost instead of
        # paying it again for every few streams that exhaust one tick
        # apart.
        extra = np.nonzero(self.seeded & (self.pos >= N))[0]
        if extra.size:
            rows = np.union1d(rows, extra)
        fresh = rows[~self.seeded[rows]]
        if fresh.size:
            self.state[fresh] = init_by_array(
                self.key[fresh], self.key_len[fresh]).T
            self.seeded[fresh] = True
        # Chunked so block + twist temporaries stay cache-resident —
        # one monolithic block is ~2.5x slower once it spills L3.
        for i in range(0, len(rows), _TWIST_CHUNK):
            r = rows[i:i + _TWIST_CHUNK]
            block = self.state[r]
            twist(block)
            self.state[r] = block
            self.buf[r] = temper(block)
        self.pos[rows] = 0

    def prefill(self, rows: np.ndarray) -> None:
        """Seed + produce the first block of ``rows`` in one shot.

        Engines call this at batch start with every stream the
        scheduler/protocol mix is expected to draw from: one big
        ``init_by_array`` + one big twist beats the same work arriving
        as hundreds of small first-use refills.  Only streams still at
        the exhausted cursor are touched, so it is always exact.
        """
        rows = rows[self.pos[rows] >= N]
        if rows.size:
            self._refill(rows)

    def take_words(self, rows: np.ndarray) -> np.ndarray:
        """Next output word of each (distinct) stream in ``rows``."""
        pos = self.pos[rows]
        exhausted = pos >= N
        if exhausted.any():
            self._refill(rows[exhausted])
            pos = self.pos[rows]
        words = self.buf[rows, pos]
        self.pos[rows] = pos + 1
        return words

    def take_word_one(self, row: int) -> int:
        """Next output word of one stream, scalar-fast.

        Used by the schedulers' rejection-tail fallback: once only a
        handful of streams are still rejecting, per-row Python beats
        the fixed cost of another batched gather/scatter round.
        """
        p = self.pos[row]
        if p >= N:
            self._refill(np.array([row], dtype=np.int64))
            p = 0
        w = int(self.buf[row, p])
        self.pos[row] = p + 1
        return w

    def take_pairs(self, rows: np.ndarray):
        """Next two output words of each stream (one ``random()`` each).

        Fast path for the all-words-buffered case; any stream near its
        block boundary falls back to two sequential :meth:`take_words`
        calls, which handle the refill split exactly.
        """
        pos = self.pos[rows]
        if (pos <= N - 2).all():
            w0 = self.buf[rows, pos]
            w1 = self.buf[rows, pos + 1]
            self.pos[rows] = pos + 2
            return w0, w1
        return self.take_words(rows), self.take_words(rows)

    def handoff(self, row: int) -> random.Random:
        """A live ``random.Random`` continuing stream ``row`` exactly.

        CPython's ``getstate``/``setstate`` tuple is the raw MT state
        plus the block cursor — precisely what this class keeps — so a
        straggler run can leave the vectorized path mid-sequence and
        keep drawing scalar words with zero divergence.  A never-drawn
        stream hands off as a fresh ``random.Random(seed)``.
        """
        if not self.seeded[row]:
            seed = (int(self.key[row, 1]) << 32) | int(self.key[row, 0])
            return random.Random(seed)
        state = tuple(int(x) for x in self.state[row])
        rnd = random.Random()
        rnd.setstate((3, state + (int(self.pos[row]),), None))
        return rnd


# ----------------------------------------------------------------------
# Vectorized seed derivation (repro.sim.rng contract)
# ----------------------------------------------------------------------

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)
_FNV_PRIME = np.uint64(0x100000001B3)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vector twin of :func:`repro.sim.rng._splitmix64` (uint64 in/out)."""
    x = (x + _SPLITMIX_GAMMA)
    x = (x ^ (x >> np.uint64(30))) * _SPLITMIX_M1
    x = (x ^ (x >> np.uint64(27))) * _SPLITMIX_M2
    return x ^ (x >> np.uint64(31))


def mix_str(acc: np.ndarray, token: str) -> np.ndarray:
    """Vector twin of :func:`repro.sim.rng._mix_str`."""
    h = acc
    for byte in token.encode("utf-8"):
        h = (h ^ np.uint64(byte)) * _FNV_PRIME
    return splitmix64(h)


def derive_run_streams(root_seed: int, run_indices: Sequence[int],
                       n_processes: int) -> np.ndarray:
    """All stream seeds of a batch, derived as the runner derives them.

    Returns ``[R, n_processes + 1]`` uint64: column ``pid`` is run
    ``r``'s processor-``pid`` coin stream
    (``root.child("run", i).child("kernel").children("proc", n)[pid]``)
    and the last column is its scheduler stream
    (``root.child("run", i).child("sched")``).  Bit-for-bit equal to
    the scalar :func:`repro.sim.rng.derive_seed` chain — asserted by
    ``test_ir_lowering.py::TestMtEquivalence::
    test_seed_derivation_matches_scalar_chain``.
    """
    from repro.sim.rng import _mix_str, _splitmix64

    idx = np.asarray(run_indices, dtype=np.uint64)
    run_base = np.uint64(_mix_str(_splitmix64(root_seed & _MASK64), "run"))
    run_seed = splitmix64(run_base ^ idx)
    sched_seed = mix_str(splitmix64(run_seed), "sched")
    kernel_seed = mix_str(splitmix64(run_seed), "kernel")
    proc_base = mix_str(splitmix64(kernel_seed), "proc")
    out = np.empty((len(idx), n_processes + 1), dtype=np.uint64)
    for pid in range(n_processes):
        out[:, pid] = splitmix64(proc_base ^ np.uint64(pid))
    out[:, n_processes] = sched_seed
    return out

"""The vectorized mega-batch backend (``engine="vector"``).

A :class:`VectorKernel` steps N independent Monte-Carlo runs of one
compiled protocol (:mod:`repro.ir.lower`) in lockstep: each tick
advances every still-active run by exactly one kernel step using a
handful of NumPy array operations, so thousands of runs progress per
Python-level operation.  Results are **bit-identical** to the
reference and fast interpreted kernels — same decisions, coin-flip
counts, scheduler consults, final configurations, journal bytes — for
the supported matrix (docs/IR.md §5):

* protocols: anything :func:`repro.ir.lower.compile_protocol` accepts
  (finite shared-register automata; the n-process protocol compiles
  lazily and stays exact for any bounded batch),
* schedulers: :class:`~repro.sched.simple.RandomScheduler` and
  :class:`~repro.sched.simple.RoundRobinScheduler` (state-blind, no
  crash injection) — :func:`vectorize_scheduler` refuses the rest,
* memory: atomic registers only (weak semantics hand read resolution
  to the adversary, which is inherently per-run sequential).

Determinism is anchored in :mod:`repro.ir.mt`: every run keeps the
exact per-stream MT19937 word sequences of the interpreted kernels'
:class:`~repro.sim.rng.ReplayableRng` trees, vectorized across the
batch.  When the active set shrinks below :data:`SCALAR_CUTOFF` the
engine hands each straggler's streams off to a scalar table-stepper
mid-sequence (``MtRuns.handoff``) so the lockstep loop never pays
full-batch array overhead for a handful of long-tail runs.

Without NumPy the same class runs a pure-Python table interpreter over
the identical IR (``backend="python"``), keeping ``engine="vector"``
available — and differential-testable — everywhere.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.hooks import BaseSink, make_hub
from repro.sim.config import Configuration
from repro.sim.kernel import RunResult
from repro.sim.memory import MemorySpec, memory_spec
from repro.sim.rng import ReplayableRng
from repro.sim.trace import StepRecord, Trace

from repro.ir.lower import CompiledProtocol, IRUnsupportedError

try:  # NumPy is optional: the python backend interprets the same IR.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

#: Below this many active runs the lockstep loop hands stragglers to
#: the scalar path: per-tick array overhead is constant in batch size,
#: so a long tail of a few runs is cheaper stepped one by one.
SCALAR_CUTOFF = 64

#: Scheduler specs the vector engine implements; see
#: :func:`vectorize_scheduler`.
SUPPORTED_SCHEDULERS = ("random", "round_robin")

#: Runs per lockstep mega-batch when a caller streams an index range
#: through the vector engine (``ExperimentRunner.run_range``).  Caps
#: the resident working set (RNG blocks are ~5 KB per stream) while
#: keeping batches large enough to amortize per-tick dispatch.
BATCH_CHUNK = 4096


def vectorize_scheduler(scheduler) -> Tuple:
    """Lower a scheduler instance to a vectorizable spec tuple.

    Returns ``("random",)`` or ``("round_robin", start)``.  Only exact
    types are accepted (a subclass may override ``choose`` arbitrarily)
    and only state-blind schedulers are vectorizable at all — adaptive
    adversaries inspect per-run configurations mid-flight, crash
    schedulers mutate the live set, and both orders of inspection are
    inherently sequential.  Everything else raises
    :class:`~repro.ir.lower.IRUnsupportedError` (docs/IR.md §6).
    """
    from repro.sched.simple import RandomScheduler, RoundRobinScheduler

    if type(scheduler) is RandomScheduler:
        return ("random",)
    if type(scheduler) is RoundRobinScheduler:
        return ("round_robin", scheduler._next)
    raise IRUnsupportedError(
        f"scheduler {type(scheduler).__name__} is not vectorizable — "
        f"the vector engine supports {SUPPORTED_SCHEDULERS} "
        f"(state-blind, crash-free); use the fast/reference engines "
        f"for adaptive, crash, or custom schedulers (docs/IR.md §6)")


@dataclasses.dataclass
class RunRecord:
    """Step log of one run, for journal/metrics/trace reconstruction.

    One ``(pid, flat_branch, result_vid, decided_vid)`` tuple per
    executed step: ``result_vid`` is the value id a read returned (-1
    for writes) and ``decided_vid`` the decision the step produced (-1
    for none).  Together with the compiled tables this is enough to
    re-emit the full kernel event stream in the exact hook order
    (:func:`replay_run`).
    """

    steps: List[Tuple[int, int, int, int]] = dataclasses.field(
        default_factory=list)


@dataclasses.dataclass
class VectorBatch:
    """Output of :meth:`VectorKernel.run_batch`."""

    results: List[RunResult]
    records: Optional[List[RunRecord]] = None


class VectorKernel:
    """Batched executor for one compiled protocol + scheduler spec.

    Parameters
    ----------
    compiled:
        The protocol's :class:`~repro.ir.lower.CompiledProtocol`
        (shared across batches; it keeps growing lazily).
    sched_spec:
        A spec from :func:`vectorize_scheduler`.
    memory:
        Must resolve to atomic semantics; weak registers refuse.
    backend:
        ``"numpy"``, ``"python"``, or ``None`` to pick NumPy when
        available.  Both backends are bit-identical by construction
        and differentially tested.
    """

    def __init__(self, compiled: CompiledProtocol, sched_spec: Tuple,
                 memory=None, backend: Optional[str] = None) -> None:
        self.compiled = compiled
        if sched_spec[0] not in SUPPORTED_SCHEDULERS:
            raise IRUnsupportedError(
                f"unknown scheduler spec {sched_spec!r}")
        self.sched_spec = tuple(sched_spec)
        spec: MemorySpec = memory_spec(memory)
        if spec.name != "atomic":
            raise IRUnsupportedError(
                f"memory semantics {spec.name!r} are not vectorizable — "
                f"weak-register read resolution consults the adversary "
                f"per run; use the interpreted engines (docs/IR.md §6)")
        self.memory_name = spec.name
        if backend is None:
            backend = "numpy" if _np is not None else "python"
        if backend == "numpy" and _np is None:
            raise IRUnsupportedError(
                "backend='numpy' requested but numpy is not installed")
        if backend not in ("numpy", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self._tables: Optional["_Tables"] = None

    def tables(self) -> "_Tables":
        """The (cached) dense table mirror; numpy backend only."""
        if self._tables is None:
            self._tables = _Tables(self.compiled)
        return self._tables

    # ------------------------------------------------------------------

    def run_batch(self, root_seed: int, run_indices: Sequence[int],
                  inputs_by_run: Sequence[Sequence[Hashable]],
                  max_steps: int,
                  max_consults: Optional[int] = None,
                  record: bool = False,
                  record_trace: bool = False) -> VectorBatch:
        """Execute one run per index; bit-identical to the kernels.

        ``inputs_by_run[i]`` is the input assignment of run
        ``run_indices[i]`` (the runner evaluates its inputs factory —
        including any per-run randomization — before calling here).
        ``record`` keeps per-step logs for sink replay;
        ``record_trace`` additionally materializes each result's
        :class:`~repro.sim.trace.Trace` exactly as
        ``Simulation(record_trace=True)`` would.
        """
        if len(run_indices) != len(inputs_by_run):
            raise ValueError("one inputs tuple per run index required")
        record = record or record_trace
        if max_consults is None:
            eff_max = max_steps
        else:
            # Supported schedulers consume exactly one consult per
            # step (no crash injection), so the kernel's dual budget
            # collapses to the tighter of the two.
            eff_max = min(max_steps, max_consults)
        if self.backend == "numpy" and len(run_indices) > 0:
            state = _NumpyBatch(self, root_seed, list(run_indices),
                                [tuple(i) for i in inputs_by_run],
                                eff_max, record)
            state.run()
            results, records = state.finish(record_trace)
        else:
            results, records = self._run_python(
                root_seed, list(run_indices),
                [tuple(i) for i in inputs_by_run], eff_max, record,
                record_trace)
        return VectorBatch(results=results,
                           records=records if record else None)

    def run_single(self, scheduler, kernel_rng: ReplayableRng,
                   inputs: Sequence[Hashable], max_steps: int,
                   max_consults: Optional[int] = None,
                   record: bool = False,
                   record_trace: bool = False):
        """One run over the compiled tables with caller-supplied streams.

        This is the ``solve()`` entry point: unlike :meth:`run_batch`,
        which derives every stream from the *runner's* seed chain
        (``root.child("run", i)``), the caller hands in the scheduler
        instance (whose own rng, for a random scheduler, is the stream
        the interpreted kernels would consult) and the ``kernel`` rng
        the processor coin streams derive from.  Returns
        ``(RunResult, RunRecord | None)`` bit-identical to
        ``Simulation(...).run(max_steps)`` with the same streams.
        """
        spec = vectorize_scheduler(scheduler)
        sched_rng = scheduler._rng if spec[0] == "random" else None
        proc_rngs = kernel_rng.children("proc", self.compiled.n_processes)
        record = record or record_trace
        if max_consults is None:
            eff_max = max_steps
        else:
            eff_max = min(max_steps, max_consults)
        run = _ScalarRun(self.compiled, spec, tuple(inputs), sched_rng,
                         proc_rngs, record=record)
        run.run(eff_max)
        rec = RunRecord(run.rec_steps) if record else None
        return run.result(self.memory_name, record_trace, rec), rec

    # ------------------------------------------------------------------
    # Pure-Python backend
    # ------------------------------------------------------------------

    def _run_python(self, root_seed, run_indices, inputs_by_run,
                    eff_max, record, record_trace):
        root = ReplayableRng(root_seed)
        results: List[RunResult] = []
        records: List[RunRecord] = []
        for idx, inputs in zip(run_indices, inputs_by_run):
            rng = root.child("run", idx)
            sched_rng = rng.child("sched")
            proc_rngs = rng.child("kernel").children(
                "proc", self.compiled.n_processes)
            run = _ScalarRun(self.compiled, self.sched_spec, inputs,
                             sched_rng, proc_rngs,
                             record=record)
            run.run(eff_max)
            rec = RunRecord(run.rec_steps) if record else None
            results.append(run.result(self.memory_name, record_trace,
                                      rec))
            records.append(rec)
        return results, records


# ----------------------------------------------------------------------
# Scalar table interpreter (python backend + numpy straggler finisher)
# ----------------------------------------------------------------------


class _ScalarRun:
    """One run stepped scalar over the compiled tables.

    Used for the whole run by the python backend, and to finish
    straggler runs mid-flight by the numpy backend (which hands in
    live RNG streams plus the counters accumulated so far).
    """

    def __init__(self, cp: CompiledProtocol, sched_spec, inputs,
                 sched_rng: ReplayableRng,
                 proc_rngs: Sequence[ReplayableRng],
                 record: bool = False) -> None:
        n = cp.n_processes
        self.cp = cp
        self.sched_spec = sched_spec
        self.inputs = tuple(inputs)
        self.sched_rng = sched_rng
        self.proc_rngs = list(proc_rngs)
        self.sids: List[int] = list(cp.initial_sids(self.inputs))
        self.regs: List[int] = list(cp.init_regs)
        self.steps = 0
        self.activations = [0] * n
        self.coin_flips = [0] * n
        self.decisions_vid = [-1] * n
        self.decision_act = [-1] * n
        self.dec_order: List[int] = []
        self.rr_next = sched_spec[1] if sched_spec[0] == "round_robin" else 0
        self.record = record
        self.rec_steps: List[Tuple[int, int, int, int]] = []
        self.enabled: Tuple[int, ...] = tuple(range(n))
        for pid in range(n):
            out = cp.state_out[self.sids[pid]]
            if out >= 0:
                self.decisions_vid[pid] = out
                self.decision_act[pid] = 0
                self.dec_order.append(pid)
        if self.dec_order:
            self.enabled = tuple(p for p in self.enabled
                                 if self.decisions_vid[p] < 0)

    def run(self, eff_max: int) -> None:
        cp = self.cp
        random_sched = self.sched_spec[0] == "random"
        n = cp.n_processes
        while self.enabled and self.steps < eff_max:
            enabled = self.enabled
            if random_sched:
                pid = self.sched_rng.choice(enabled)
            else:
                pid = self.rr_next
                while pid not in enabled:
                    pid = (pid + 1) % n
                self.rr_next = (pid + 1) % n
            sid = self.sids[pid]
            if cp.state_nb[sid] < 0:
                cp.ensure_compiled(sid)
            nb = cp.state_nb[sid]
            base = cp.state_base[sid]
            if nb > 1:
                bi = self.proc_rngs[pid].choice_index(
                    cp.br_prob[base:base + nb], cp.state_total[sid])
                self.coin_flips[pid] += 1
            else:
                bi = 0
            b = base + bi
            if cp.br_is_read[b]:
                rv = self.regs[cp.br_slot[b]]
                nxt = cp.br_read_out[b].get(rv)
                if nxt is None:
                    nxt = cp.read_outcome(b, rv)
            else:
                rv = -1
                self.regs[cp.br_slot[b]] = cp.br_write[b]
                nxt = cp.br_write_next[b]
            self.sids[pid] = nxt
            self.activations[pid] += 1
            self.steps += 1
            out = cp.state_out[nxt]
            if out >= 0:
                self.decisions_vid[pid] = out
                self.decision_act[pid] = self.activations[pid]
                self.dec_order.append(pid)
                self.enabled = tuple(p for p in enabled if p != pid)
            if self.record:
                self.rec_steps.append((pid, b, rv, out))

    def result(self, memory_name: str, record_trace: bool,
               rec: Optional[RunRecord]) -> RunResult:
        cp = self.cp
        n = cp.n_processes
        trace = None
        if record_trace and rec is not None:
            trace = _build_trace(cp, rec)
        return RunResult(
            protocol_name=cp.protocol.name,
            inputs=self.inputs,
            decisions={p: cp.values[self.decisions_vid[p]]
                       for p in self.dec_order},
            activations={p: self.activations[p] for p in range(n)},
            decision_activation={p: self.decision_act[p]
                                 for p in self.dec_order},
            coin_flips={p: self.coin_flips[p] for p in range(n)},
            total_steps=self.steps,
            crashed=frozenset(),
            completed=not self.enabled,
            trace=trace,
            final_configuration=cp.decode_configuration(
                self.sids, self.regs),
            sched_consults=self.steps,
            memory=memory_name,
            read_resolutions=0,
        )


# ----------------------------------------------------------------------
# NumPy backend
# ----------------------------------------------------------------------


class _Tables:
    """Dense NumPy mirrors of a :class:`CompiledProtocol`'s tables.

    All compiler tables are append-only (and read-outcome cell fills
    are journaled in ``read_log``), so the mirror syncs incrementally:
    capacity-doubled arrays absorb new states/branches/values and a
    drain cursor applies new read cells — no full rebuilds on the
    growth path, which matters for lazily-compiled protocols that keep
    discovering states mid-batch.
    """

    #: Ceiling on the dense read-outcome matrix (rows × value ids).
    #: ~256 MB of int32 at the default; a protocol whose lazily grown
    #: tables exceed it refuses rather than swapping the host.
    MAX_READ_CELLS = 1 << 26

    def __init__(self, cp: CompiledProtocol) -> None:
        self.cp = cp
        self.n_states = 0
        self.n_branches = 0
        self.n_read_rows = 0
        self.n_values = 0
        self._read_cursor = 0
        self._compile_cursor = 0
        self.cum_width = 1
        S, B, V = 64, 64, 64
        self.state_nb = _np.full(S, -1, dtype=_np.int64)
        self.state_base = _np.full(S, -1, dtype=_np.int64)
        self.state_out = _np.full(S, -1, dtype=_np.int64)
        self.state_total = _np.zeros(S, dtype=_np.float64)
        self.state_cum = _np.full((S, self.cum_width), _np.inf,
                                  dtype=_np.float64)
        self.br_is_read = _np.zeros(B, dtype=bool)
        self.br_slot = _np.zeros(B, dtype=_np.int64)
        self.br_write = _np.full(B, -1, dtype=_np.int64)
        self.br_write_next = _np.full(B, -1, dtype=_np.int64)
        #: read-branch-local row index (-1 for writes): the dense
        #: outcome matrix only carries rows for read branches.
        self.br_read_row = _np.full(B, -1, dtype=_np.int64)
        self.read_next = _np.full((B, V), -1, dtype=_np.int32)
        self.sync()

    @staticmethod
    def _grow1(arr, need, fill):
        cap = arr.shape[0]
        if need <= cap:
            return arr
        new_cap = max(need, cap * 2)
        out = _np.full((new_cap,) + arr.shape[1:], fill, dtype=arr.dtype)
        out[:cap] = arr
        return out

    def sync(self) -> None:
        """Absorb everything the compiler interned since the last sync.

        Incremental by construction: new state/branch/value rows are
        slice-copied, and rows that *changed in place* (a state's
        ``nb`` flipping -1 → k on lazy compile, a read-outcome cell
        filling) arrive through the compiler's ``compile_log`` /
        ``read_log`` journals, drained from per-mirror cursors.
        """
        cp = self.cp
        S, B, V = cp.n_states, cp.n_branches, cp.n_values
        if S > self.n_states:
            self.state_nb = self._grow1(self.state_nb, S, -1)
            self.state_base = self._grow1(self.state_base, S, -1)
            self.state_out = self._grow1(self.state_out, S, -1)
            self.state_total = self._grow1(self.state_total, S, 0.0)
            lo = self.n_states
            self.state_nb[lo:S] = cp.state_nb[lo:]
            self.state_base[lo:S] = cp.state_base[lo:]
            self.state_out[lo:S] = cp.state_out[lo:]
            self.state_total[lo:S] = cp.state_total[lo:]
            self.n_states = S
        clog = cp.compile_log
        if self._compile_cursor < len(clog):
            new_sids = clog[self._compile_cursor:]
            width = max((cp.state_nb[s] for s in new_sids), default=1)
            if width > self.cum_width or S > self.state_cum.shape[0]:
                cap = max(S, self.state_cum.shape[0] * 2)
                w = max(width, self.cum_width)
                grown = _np.full((cap, w), _np.inf, dtype=_np.float64)
                old = self.state_cum
                grown[:old.shape[0], :old.shape[1]] = old
                self.state_cum = grown
                self.cum_width = w
            for sid in new_sids:
                self.state_nb[sid] = cp.state_nb[sid]
                self.state_base[sid] = cp.state_base[sid]
                self.state_total[sid] = cp.state_total[sid]
                cum = cp.state_cum[sid]
                if cum is not None:
                    self.state_cum[sid, :len(cum)] = cum
            self._compile_cursor = len(clog)
        if B > self.n_branches:
            self.br_is_read = self._grow1(self.br_is_read, B, False)
            self.br_slot = self._grow1(self.br_slot, B, 0)
            self.br_write = self._grow1(self.br_write, B, -1)
            self.br_write_next = self._grow1(self.br_write_next, B, -1)
            self.br_read_row = self._grow1(self.br_read_row, B, -1)
            lo = self.n_branches
            self.br_is_read[lo:B] = cp.br_is_read[lo:]
            self.br_slot[lo:B] = cp.br_slot[lo:]
            self.br_write[lo:B] = cp.br_write[lo:]
            self.br_write_next[lo:B] = cp.br_write_next[lo:]
            for b in range(lo, B):
                if cp.br_is_read[b]:
                    self.br_read_row[b] = self.n_read_rows
                    self.n_read_rows += 1
            self.n_branches = B
        rows_need = max(self.n_read_rows, 1)
        if (rows_need > self.read_next.shape[0]
                or V > self.read_next.shape[1]):
            # Grow only the dimension that overflowed — doubling both
            # unconditionally squares the matrix for nothing.
            rcap, vcap = self.read_next.shape
            if rows_need > rcap:
                rcap = max(rows_need, rcap * 2)
            if V > vcap:
                vcap = max(V, vcap * 2)
            if rcap * vcap > self.MAX_READ_CELLS:
                from repro.ir.lower import IRCompileError
                raise IRCompileError(
                    f"{cp.protocol.name}: dense read-outcome table "
                    f"would exceed {self.MAX_READ_CELLS} cells "
                    f"({rows_need} read branches × {V} values) — the "
                    f"lazily grown state space is too large for the "
                    f"vector engine; use the interpreted engines")
            grown = _np.full((rcap, vcap), -1, dtype=_np.int32)
            old = self.read_next
            grown[:old.shape[0], :old.shape[1]] = old
            self.read_next = grown
        self.n_values = V
        log = cp.read_log
        if self._read_cursor < len(log):
            for b, vid, sid in log[self._read_cursor:]:
                self.read_next[self.br_read_row[b], vid] = sid
            self._read_cursor = len(log)


class _NumpyBatch:
    """State of one vectorized batch execution."""

    def __init__(self, kernel: VectorKernel, root_seed: int,
                 run_indices: List[int],
                 inputs_by_run: List[Tuple[Hashable, ...]],
                 eff_max: int, record: bool) -> None:
        from repro.ir import mt

        cp = kernel.compiled
        n = cp.n_processes
        R = len(run_indices)
        self.kernel = kernel
        self.cp = cp
        self.n = n
        self.R = R
        self.eff_max = eff_max
        self.record = record
        self.run_indices = run_indices
        self.inputs_by_run = inputs_by_run
        self.tables = kernel.tables()
        self.stride = n + 1
        seeds = mt.derive_run_streams(root_seed, run_indices, n)
        self.mt = mt.MtRuns(seeds.reshape(-1))
        self.sid_mat = _np.array(
            [cp.initial_sids(inp) for inp in inputs_by_run],
            dtype=_np.int64).reshape(R, n)
        self.regs = _np.tile(
            _np.array(cp.init_regs, dtype=_np.int64), (R, 1))
        self.steps = _np.zeros(R, dtype=_np.int64)
        self.activations = _np.zeros((R, n), dtype=_np.int64)
        self.coin_flips = _np.zeros((R, n), dtype=_np.int64)
        self.dec_vid = _np.full((R, n), -1, dtype=_np.int64)
        self.dec_act = _np.full((R, n), -1, dtype=_np.int64)
        self.dec_order: List[List[int]] = [[] for _ in range(R)]
        self.enabled = _np.ones((R, n), dtype=bool)
        self.tick_log: List[tuple] = []
        self.scalar_recs: Dict[int, List[tuple]] = {}
        spec = kernel.sched_spec
        self.random_sched = spec[0] == "random"
        self.rr_next = _np.full(
            R, spec[1] if not self.random_sched else 0, dtype=_np.int64)
        # getrandbits(k) for k = n.bit_length(): precomputed shifts.
        self._bitlen = _np.array(
            [0] + [int(c).bit_length() for c in range(1, n + 1)],
            dtype=_np.int64)
        # One big up-front block generation: under a random scheduler
        # every run draws from its scheduler stream on tick one and
        # (for the paper's protocols) from each coin stream shortly
        # after, so seeding them all in one call is strictly cheaper
        # than letting first-use refills trickle in.  Round-robin
        # never touches scheduler streams — leave those unseeded.
        if self.random_sched:
            self.mt.prefill(_np.arange(R * self.stride))
        else:
            cols = _np.arange(R)[:, None] * self.stride + _np.arange(n)
            self.mt.prefill(cols.reshape(-1))
        # Initial decisions (degenerate protocols): recorded at
        # activation 0, exactly as the kernel constructor does.
        self.tables.sync()
        out0 = self.tables.state_out[self.sid_mat]
        if (out0 >= 0).any():
            for r, p in zip(*_np.nonzero(out0 >= 0)):
                r, p = int(r), int(p)
                self.dec_vid[r, p] = int(out0[r, p])
                self.dec_act[r, p] = 0
                self.dec_order[r].append(p)
                self.enabled[r, p] = False
        self.en_count = self.enabled.sum(axis=1)

    # -- vectorized schedulers ----------------------------------------

    def _sched_random(self, act: "_np.ndarray") -> "_np.ndarray":
        """``ReplayableRng.choice(enabled)``, batched.

        One ``getrandbits(k)`` word per rejection round with
        ``k = len(enabled).bit_length()`` — the exact inlined
        rejection loop of the scalar RNG, so word consumption per
        scheduler stream matches draw for draw.
        """
        cnt = self.en_count[act]
        k = self._bitlen[cnt]
        res = _np.empty(len(act), dtype=_np.int64)
        all_rows = act * self.stride + self.n
        pend = _np.arange(len(act))
        while pend.size:
            if pend.size < SCALAR_CUTOFF:
                # Rejection tail: the geometric trickle of still-
                # rejecting streams is cheaper to drain per-row than
                # with more batched gather/scatter rounds.
                take = self.mt.take_word_one
                for j in pend:
                    j = int(j)
                    kk = int(k[j])
                    cc = int(cnt[j])
                    row = int(all_rows[j])
                    while True:
                        r1 = take(row) >> (32 - kk)
                        if r1 < cc:
                            res[j] = r1
                            break
                break
            rows = all_rows[pend]
            words = self.mt.take_words(rows).astype(_np.int64)
            r = words >> (32 - k[pend])
            ok = r < cnt[pend]
            res[pend[ok]] = r[ok]
            pend = pend[~ok]
        # index-among-enabled -> pid (enabled pids ascend, like the
        # kernel's `enabled` tuple).  Runs with every processor still
        # enabled (the common case until a run's closing steps) map
        # index -> pid directly.
        mixed = self.en_count[act] < self.n
        if not mixed.any():
            return res
        csum = _np.cumsum(self.enabled[act[mixed]], axis=1)
        res[mixed] = _np.argmax(
            csum == (res[mixed] + 1)[:, None], axis=1)
        return res

    def _sched_round_robin(self, act: "_np.ndarray") -> "_np.ndarray":
        n = self.n
        pid = self.rr_next[act]
        # With every processor enabled the cursor itself is the next
        # pid; only runs with a decided (disabled) processor need the
        # ring walk.
        mixed = _np.nonzero(self.en_count[act] < n)[0]
        if mixed.size:
            sub = act[mixed]
            offs = (pid[mixed][:, None]
                    + _np.arange(n, dtype=_np.int64)[None, :]) % n
            mask = self.enabled[sub[:, None], offs]
            first = _np.argmax(mask, axis=1)
            pid[mixed] = offs[_np.arange(len(sub)), first]
        self.rr_next[act] = (pid + 1) % n
        return pid

    # -- main loop -----------------------------------------------------

    def run(self) -> None:
        t = self.tables
        cp = self.cp
        act = _np.nonzero((self.en_count > 0) & (self.steps < self.eff_max)
                          )[0]
        while act.size:
            if act.size < SCALAR_CUTOFF:
                self._finish_scalar(act)
                return
            pid = (self._sched_random(act) if self.random_sched
                   else self._sched_round_robin(act))
            sid = self.sid_mat[act, pid]
            nb = t.state_nb[sid]
            if (nb < 0).any():
                for s in _np.unique(sid[nb < 0]):
                    cp.ensure_compiled(int(s))
                t.sync()
                nb = t.state_nb[sid]
            bl = _np.zeros(len(act), dtype=_np.int64)
            multi = nb > 1
            if multi.any():
                rows = act[multi] * self.stride + pid[multi]
                w0, w1 = self.mt.take_pairs(rows)
                w0 = w0.astype(_np.float64)
                w1 = w1.astype(_np.float64)
                # CPython random_random(): 53-bit double from 2 words.
                u = ((_np.floor(w0 / 32.0) * 67108864.0
                      + _np.floor(w1 / 64.0))
                     * (1.0 / 9007199254740992.0))
                sm = sid[multi]
                x = u * t.state_total[sm]
                idx = (t.state_cum[sm] <= x[:, None]).sum(axis=1)
                bl[multi] = _np.minimum(idx, nb[multi] - 1)
                self.coin_flips[act[multi], pid[multi]] += 1
            b = t.state_base[sid] + bl
            isr = t.br_is_read[b]
            nxt = _np.empty(len(act), dtype=_np.int64)
            resv = (_np.full(len(act), -1, dtype=_np.int64)
                    if self.record else None)
            if isr.any():
                ridx = _np.nonzero(isr)[0]
                rb = b[ridx]
                rv = self.regs[act[ridx], t.br_slot[rb]]
                nx = t.read_next[t.br_read_row[rb], rv].astype(_np.int64)
                miss = nx < 0
                if miss.any():
                    for j in _np.nonzero(miss)[0]:
                        cp.read_outcome(int(rb[j]), int(rv[j]))
                    t.sync()
                    nx = t.read_next[t.br_read_row[rb], rv].astype(
                        _np.int64)
                nxt[ridx] = nx
                if resv is not None:
                    resv[ridx] = rv
            wr = ~isr
            if wr.any():
                widx = _np.nonzero(wr)[0]
                wb = b[widx]
                self.regs[act[widx], t.br_slot[wb]] = t.br_write[wb]
                nxt[widx] = t.br_write_next[wb]
            self.sid_mat[act, pid] = nxt
            self.activations[act, pid] += 1
            self.steps[act] += 1
            out = t.state_out[nxt]
            dec = out >= 0
            if self.record:
                decv = _np.where(dec, out, -1)
                self.tick_log.append((act.copy(), pid.copy(), b.copy(),
                                      resv, decv))
            if dec.any():
                for j in _np.nonzero(dec)[0]:
                    r, p = int(act[j]), int(pid[j])
                    self.dec_vid[r, p] = int(out[j])
                    self.dec_act[r, p] = int(self.activations[r, p])
                    self.dec_order[r].append(p)
                    self.enabled[r, p] = False
                    self.en_count[r] -= 1
            live = (self.en_count[act] > 0) & (self.steps[act]
                                               < self.eff_max)
            if not live.all():
                act = act[live]

    def _finish_scalar(self, act: "_np.ndarray") -> None:
        """Step the straggler tail one run at a time.

        Each remaining run's streams continue *mid-sequence* through
        ``MtRuns.handoff`` — the scalar stepper consumes the exact
        words the lockstep loop would have, so the cutover is
        invisible in the results.
        """
        cp = self.cp
        n = self.n
        for r in (int(x) for x in act):
            sched_rng = _rng_from(self.mt.handoff(r * self.stride + n))
            proc_rngs = [_rng_from(self.mt.handoff(r * self.stride + p))
                         for p in range(n)]
            run = _ScalarRun.__new__(_ScalarRun)
            run.cp = cp
            run.sched_spec = self.kernel.sched_spec
            run.inputs = self.inputs_by_run[r]
            run.sched_rng = sched_rng
            run.proc_rngs = proc_rngs
            run.sids = [int(s) for s in self.sid_mat[r]]
            run.regs = [int(v) for v in self.regs[r]]
            run.steps = int(self.steps[r])
            run.activations = [int(a) for a in self.activations[r]]
            run.coin_flips = [int(c) for c in self.coin_flips[r]]
            run.decisions_vid = [int(d) for d in self.dec_vid[r]]
            run.decision_act = [int(d) for d in self.dec_act[r]]
            run.dec_order = self.dec_order[r]
            run.rr_next = int(self.rr_next[r])
            run.record = self.record
            run.rec_steps = []
            run.enabled = tuple(p for p in range(n)
                                if self.enabled[r, p])
            run.run(self.eff_max)
            self.sid_mat[r] = run.sids
            self.regs[r] = run.regs
            self.steps[r] = run.steps
            self.activations[r] = run.activations
            self.coin_flips[r] = run.coin_flips
            self.dec_vid[r] = run.decisions_vid
            self.dec_act[r] = run.decision_act
            self.dec_order[r] = run.dec_order
            self.enabled[r] = [p in run.enabled for p in range(n)]
            self.en_count[r] = len(run.enabled)
            if self.record:
                self.scalar_recs[r] = run.rec_steps

    # -- results -------------------------------------------------------

    def finish(self, record_trace: bool):
        cp = self.cp
        n = self.n
        records: Optional[List[RunRecord]] = None
        if self.record:
            records = [RunRecord() for _ in range(self.R)]
            for a, p, b, rv, dv in self.tick_log:
                for j in range(len(a)):
                    records[int(a[j])].steps.append(
                        (int(p[j]), int(b[j]), int(rv[j]), int(dv[j])))
            for r, tail in self.scalar_recs.items():
                records[r].steps.extend(tail)
        results: List[RunResult] = []
        for r in range(self.R):
            trace = None
            if record_trace and records is not None:
                trace = _build_trace(cp, records[r])
            results.append(RunResult(
                protocol_name=cp.protocol.name,
                inputs=self.inputs_by_run[r],
                decisions={p: cp.values[self.dec_vid[r, p]]
                           for p in self.dec_order[r]},
                activations={p: int(self.activations[r, p])
                             for p in range(n)},
                decision_activation={p: int(self.dec_act[r, p])
                                     for p in self.dec_order[r]},
                coin_flips={p: int(self.coin_flips[r, p])
                            for p in range(n)},
                total_steps=int(self.steps[r]),
                crashed=frozenset(),
                completed=bool(self.en_count[r] == 0),
                trace=trace,
                final_configuration=cp.decode_configuration(
                    [int(s) for s in self.sid_mat[r]],
                    [int(v) for v in self.regs[r]]),
                sched_consults=int(self.steps[r]),
                memory=self.kernel.memory_name,
                read_resolutions=0,
            ))
        return results, records


def _rng_from(rnd) -> ReplayableRng:
    """Wrap a positioned ``random.Random`` as a ReplayableRng stream."""
    rng = ReplayableRng(0)
    rng._random = rnd
    return rng


# ----------------------------------------------------------------------
# Event replay (journals, metrics, traces)
# ----------------------------------------------------------------------


def _decode_step(cp: CompiledProtocol, step):
    """(pid, b, result_vid, dec_vid) -> (pid, op, nb, result, decided)."""
    pid, b, rv, dv = step
    op = cp.br_op[b]
    nb = cp.state_nb[cp.br_state[b]]
    result = cp.values[rv] if rv >= 0 else None
    decided = cp.values[dv] if dv >= 0 else None
    return pid, op, nb, result, decided


def _build_trace(cp: CompiledProtocol, rec: RunRecord) -> Trace:
    trace = Trace()
    for index, step in enumerate(rec.steps):
        pid, op, _, result, decided = _decode_step(cp, step)
        trace.append(StepRecord(index=index, pid=pid, op=op,
                                result=result, decided=decided))
    return trace


def replay_run(cp: CompiledProtocol, result: RunResult, rec: RunRecord,
               sinks: Sequence[BaseSink],
               root_seed: Optional[int] = None,
               run_index: Optional[int] = None) -> None:
    """Re-emit one recorded run's kernel event stream into ``sinks``.

    Event order per step is the kernel's observed-path contract
    (sched → coin-flip → read/write → decision → step; see
    ``Simulation._observed_step_processor``), so journals and metrics
    replayed from a vector batch are byte-identical to a serial
    instrumented batch of the same seeds.
    """
    hub = make_hub(sinks)
    if hub is None:
        return
    if root_seed is not None and run_index is not None:
        hub.run_key(root_seed, run_index)
    protocol = cp.protocol
    hub.run_start(protocol.name, cp.n_processes, result.inputs)
    activations = dict.fromkeys(range(cp.n_processes), 0)
    for index, step in enumerate(rec.steps):
        pid, op, nb, res, decided = _decode_step(cp, step)
        hub.sched(index + 1)
        if nb > 1:
            hub.coin_flip(pid, nb)
        if step[2] >= 0 or cp.br_is_read[step[1]]:
            hub.read(pid, op.register, res)
        else:
            hub.write(pid, op.register, op.value)
        activations[pid] += 1
        if decided is not None:
            hub.decision(pid, decided, activations[pid])
        hub.step(index, pid, op, res, decided)
    hub.run_end(result)

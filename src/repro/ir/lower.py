"""Lowering finite protocols to the integer table IR.

The paper's protocols are finite automata over shared registers: a
processor's next move depends only on its automaton state, and every
register ever holds one of finitely many values.  The kernel's
:class:`~repro.sim.transitions.TransitionCache` already memoizes
per-``(pid, state)`` branch distributions; this module finishes the
thought and lowers the whole protocol to *pure integer arrays*:

* automaton states become dense **state ids** (interned per
  ``(pid, state)`` pair, like the cache's keys),
* register values and decision values become dense **value ids**
  (shared across registers, inputs, and decisions),
* each state's branch distribution becomes a row of a **branch CDF
  matrix** (prefix sums in the exact accumulation order of
  :meth:`~repro.sim.rng.ReplayableRng.choice_index`),
* each branch becomes one row of flat **opcode arrays** (read/write
  flag, register slot, write-value id),
* ``observe``/``output`` become **outcome tables**: a write branch maps
  to one successor state id, a read branch maps each readable value id
  to one successor state id, and every state carries its decided-value
  id (``-1`` while undecided).

The result is a :class:`CompiledProtocol` that any engine can step
without touching a single protocol object — the vectorized mega-batch
backend (:mod:`repro.ir.vector`) advances thousands of runs per Python
operation over these arrays, and the model checker can BFS over integer
configurations.  The full byte-level layout, the lowering rules, and
the determinism contract are specified in docs/IR.md.

Two compilation modes (docs/IR.md §6):

**Lazy** (the default, used by ``engine="vector"``): states and read
outcomes are interned on demand, exactly like the transition cache.
This admits protocols whose *reachable-in-k-steps* space is finite for
every k even when the full space is unbounded (the n-process protocol's
``num`` field grows without bound, but any bounded batch only ever sees
finitely many values).

**Closed** (:meth:`CompiledProtocol.close`, used by the checker and the
refusal tests): eagerly computes the whole joint fixpoint over states
and per-slot value domains.  Protocols with an unbounded reachable
space — the three-process *unbounded* protocol, anything counting — hit
``max_states``/``max_values`` and **refuse to compile** with
:class:`IRCompileError`.  Protocols whose branches perform anything but
shared-register ``ReadOp``/``WriteOp`` (e.g. message-passing ops)
refuse in either mode with :class:`IRUnsupportedError`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton


class IRCompileError(ReproError):
    """A protocol could not be lowered to a finite table IR.

    Raised when interning exceeds the ``max_states``/``max_values``
    budget — the signature of an unbounded protocol (e.g. the
    three-process unbounded protocol's ever-growing ``num`` fields)
    under closed compilation, or of a runaway batch under lazy
    compilation.  See docs/IR.md §6 (refusal cases).
    """


class IRUnsupportedError(ReproError):
    """A protocol, scheduler, or memory model is outside the IR subset.

    The table IR covers shared-register ``ReadOp``/``WriteOp`` automata
    under atomic memory and state-blind schedulers; anything else
    (message-passing ops, adaptive adversaries, weak registers) must
    use the interpreted engines.  See docs/IR.md §6.
    """


#: Default interning budgets.  Lazy compilation is bounded by the batch
#: itself (a B-run, M-step batch can intern at most O(B*M) states), so
#: its cap is a runaway backstop; closed compilation uses the cap as
#: the finiteness test and refuses protocols that exceed it.
MAX_STATES = 1 << 20
MAX_VALUES = 1 << 20


class CompiledProtocol:
    """A protocol lowered to append-only integer tables.

    All tables are plain Python lists (exact ints/floats) so interning
    can grow them in place; the vector backend mirrors them into NumPy
    arrays incrementally (every table is append-only, and read-outcome
    cell fills are journaled in :attr:`read_log`).  Indices:

    ``sid``
        state id — one per interned ``(pid, state)`` pair.
    ``vid``
        value id — one per interned register/input/decision value.
    ``b``
        flat branch id — ``state_base[sid] + branch_index`` for the
        branches of ``sid``, laid out contiguously in branch order.

    See docs/IR.md §2 for the field-by-field layout specification.
    """

    def __init__(self, protocol: Automaton,
                 layout: Optional[RegisterLayout] = None,
                 strict: bool = True,
                 max_states: int = MAX_STATES,
                 max_values: int = MAX_VALUES) -> None:
        self.protocol = protocol
        self.layout = layout if layout is not None \
            else RegisterLayout.for_protocol(protocol)
        self.strict = strict
        self.max_states = max_states
        self.max_values = max_values
        self.n_processes = protocol.n_processes
        self.n_slots = len(self.layout)
        self.slot_names: Tuple[str, ...] = tuple(
            spec.name for spec in self.layout.specs)

        # -- value intern table ---------------------------------------
        self.values: List[Hashable] = []
        self._value_ids: Dict[Hashable, int] = {}

        # -- state tables (one row per sid) ---------------------------
        self.state_pid: List[int] = []
        self.state_obj: List[Hashable] = []
        #: branch count; 0 = decided terminal, -1 = not yet compiled.
        self.state_nb: List[int] = []
        #: first flat branch id (-1 until compiled).
        self.state_base: List[int] = []
        #: decided-value vid, or -1 while undecided.
        self.state_out: List[int] = []
        #: ``float(sum(weights))`` for multi-branch states, else 0.0.
        self.state_total: List[float] = []
        #: branch-CDF prefix sums (None unless multi-branch), in the
        #: exact left-to-right accumulation order of ``choice_index``.
        self.state_cum: List[Optional[Tuple[float, ...]]] = []
        self._state_ids: Dict[Tuple[int, Hashable], int] = {}

        # -- branch tables (one row per flat branch id) ---------------
        self.br_is_read: List[int] = []
        self.br_slot: List[int] = []
        #: written value's vid (writes), -1 (reads).
        self.br_write: List[int] = []
        self.br_prob: List[float] = []
        #: the original Op object (journal/trace reconstruction).
        self.br_op: List[object] = []
        #: owning state id (outcome computation, error messages).
        self.br_state: List[int] = []
        #: read branches: ``{vid: successor sid}``; None for writes.
        self.br_read_out: List[Optional[Dict[int, int]]] = []
        #: write branches: successor sid; -1 for reads.
        self.br_write_next: List[int] = []
        #: append-only journal of read-outcome cell fills
        #: ``(b, vid, sid)`` — engines mirror the sparse dicts above
        #: into dense matrices by draining this log.
        self.read_log: List[Tuple[int, int, int]] = []
        #: append-only journal of :meth:`ensure_compiled` completions —
        #: engines drain it to sync only the states whose branch rows
        #: changed instead of rescanning every table.
        self.compile_log: List[int] = []

        # -- initial configuration ------------------------------------
        self.init_regs: Tuple[int, ...] = tuple(
            self.intern_value(v) for v in self.layout.initial_values())
        self._initial_ids: Dict[Tuple[int, Hashable], int] = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def intern_value(self, value: Hashable) -> int:
        """Return (assigning if new) the dense id of a register value."""
        vid = self._value_ids.get(value)
        if vid is None:
            if len(self.values) >= self.max_values:
                raise IRCompileError(
                    f"{self.protocol.name}: value domain exceeded "
                    f"max_values={self.max_values} — the register value "
                    f"space is unbounded (or raise the budget)")
            vid = len(self.values)
            self.values.append(value)
            self._value_ids[value] = vid
        return vid

    def intern_state(self, pid: int, state: Hashable) -> int:
        """Return (assigning if new) the dense id of ``(pid, state)``.

        The state's decided value (:meth:`Automaton.output`) is
        resolved eagerly at interning so engines can test termination
        with one array lookup; branch lowering stays lazy (see
        :meth:`ensure_compiled`).
        """
        key = (pid, state)
        sid = self._state_ids.get(key)
        if sid is None:
            if len(self.state_pid) >= self.max_states:
                raise IRCompileError(
                    f"{self.protocol.name}: state space exceeded "
                    f"max_states={self.max_states} — the reachable "
                    f"automaton is unbounded (or raise the budget)")
            sid = len(self.state_pid)
            out = self.protocol.output(pid, state)
            self.state_pid.append(pid)
            self.state_obj.append(state)
            self.state_out.append(
                -1 if out is None else self.intern_value(out))
            self.state_nb.append(0 if out is not None else -1)
            self.state_base.append(-1)
            self.state_total.append(0.0)
            self.state_cum.append(None)
            self._state_ids[key] = sid
        return sid

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def ensure_compiled(self, sid: int) -> None:
        """Lower state ``sid``'s branch distribution into the tables.

        Mirrors :meth:`TransitionCache._build`: resolve each branch's
        op to a (kind, slot, write-vid) triple with the access check
        performed once, validate the distribution once under
        ``strict``, and precompute the CDF prefix sums fed to the
        engines' coin flips.  Write-branch successors are resolved
        eagerly (``observe`` of a write does not depend on memory);
        read-branch successors stay lazy per observed value
        (:meth:`read_outcome`).
        """
        if self.state_nb[sid] >= 0:
            return
        protocol = self.protocol
        pid = self.state_pid[sid]
        state = self.state_obj[sid]
        branches = tuple(protocol.branches(pid, state))
        if self.strict:
            protocol.validate_branches(branches)
        base = len(self.br_is_read)
        for branch in branches:
            op = branch.op
            if isinstance(op, ReadOp):
                slot = self.layout.check_read(pid, op.register)
                is_read, wvid = 1, -1
                read_out: Optional[Dict[int, int]] = {}
                write_next = -1
            elif isinstance(op, WriteOp):
                slot = self.layout.check_write(pid, op.register)
                is_read, wvid = 0, self.intern_value(op.value)
                read_out = None
                new_state = protocol.observe(pid, state, op, None)
                write_next = self.intern_state(pid, new_state)
            else:
                raise IRUnsupportedError(
                    f"{protocol.name}: cannot lower op {op!r} — the "
                    f"table IR supports shared-register ReadOp/WriteOp "
                    f"only (message-passing and custom ops must use "
                    f"the interpreted engines; docs/IR.md §6)")
            self.br_is_read.append(is_read)
            self.br_slot.append(slot)
            self.br_write.append(wvid)
            self.br_prob.append(branch.probability)
            self.br_op.append(op)
            self.br_state.append(sid)
            self.br_read_out.append(read_out)
            self.br_write_next.append(write_next)
        if len(branches) > 1:
            weights = [b.probability for b in branches]
            total = float(sum(weights))
            cum = []
            acc = 0.0
            for w in weights:
                acc += w
                cum.append(acc)
            self.state_total[sid] = total
            self.state_cum[sid] = tuple(cum)
        self.state_base[sid] = base
        self.state_nb[sid] = len(branches)
        self.compile_log.append(sid)

    def read_outcome(self, b: int, vid: int) -> int:
        """Successor sid of read branch ``b`` observing value ``vid``.

        Fills the cell on first use (``observe`` + interning, possibly
        discovering a new state) and journals it in :attr:`read_log`.
        """
        table = self.br_read_out[b]
        sid = table.get(vid)
        if sid is None:
            owner = self.br_state[b]
            pid = self.state_pid[owner]
            new_state = self.protocol.observe(
                pid, self.state_obj[owner], self.br_op[b], self.values[vid])
            sid = self.intern_state(pid, new_state)
            table[vid] = sid
            self.read_log.append((b, vid, sid))
        return sid

    def initial_sid(self, pid: int, input_value: Hashable) -> int:
        """State id of ``initial_state(pid, input_value)`` (memoized)."""
        key = (pid, input_value)
        sid = self._initial_ids.get(key)
        if sid is None:
            state = self.protocol.initial_state(pid, input_value)
            sid = self.intern_state(pid, state)
            self._initial_ids[key] = sid
        return sid

    def initial_sids(self, inputs: Sequence[Hashable]) -> Tuple[int, ...]:
        """Per-processor initial state ids for one input assignment."""
        if len(inputs) != self.n_processes:
            raise ValueError(
                f"expected {self.n_processes} inputs, got {len(inputs)}")
        return tuple(self.initial_sid(pid, value)
                     for pid, value in enumerate(inputs))

    # ------------------------------------------------------------------
    # Closed (eager fixpoint) compilation
    # ------------------------------------------------------------------

    def close(self, input_sets: Sequence[Sequence[Hashable]]) -> None:
        """Eagerly compile the joint reachable space (docs/IR.md §6).

        Runs the fixpoint over (a) every state reachable from the
        seeded initial assignments and (b) every value each register
        slot can ever hold: write branches grow their slot's domain,
        domain growth re-visits every read branch on that slot, and
        read outcomes discover new states.  Terminates exactly when
        the protocol is finite over the given inputs; an unbounded
        protocol (three_unbounded, n_process) exhausts ``max_states``
        or ``max_values`` and raises :class:`IRCompileError` — this is
        the IR's *refusal* behavior, exercised by the checker path.
        """
        slot_dom: List[set] = [set() for _ in range(self.n_slots)]
        slot_readers: List[List[int]] = [[] for _ in range(self.n_slots)]
        for slot, vid in enumerate(self.init_regs):
            slot_dom[slot].add(vid)

        state_queue: List[int] = list(range(self.n_states))
        for inputs in input_sets:
            for sid in self.initial_sids(inputs):
                state_queue.append(sid)
        seen_states = set(state_queue)
        # (b, vid) read-outcome work items.
        read_queue: List[Tuple[int, int]] = []

        def register_branches(lo: int, hi: int) -> None:
            for b in range(lo, hi):
                slot = self.br_slot[b]
                if self.br_is_read[b]:
                    slot_readers[slot].append(b)
                    for vid in slot_dom[slot]:
                        read_queue.append((b, vid))
                else:
                    wvid = self.br_write[b]
                    if wvid not in slot_dom[slot]:
                        slot_dom[slot].add(wvid)
                        for rb in slot_readers[slot]:
                            read_queue.append((rb, wvid))
                    nxt = self.br_write_next[b]
                    if nxt not in seen_states:
                        seen_states.add(nxt)
                        state_queue.append(nxt)

        # Branches lowered lazily before close() was called still need
        # their reader/domain registration.
        visited_compiled = set()

        def visit_state(sid: int) -> None:
            if sid in visited_compiled:
                return
            visited_compiled.add(sid)
            if self.state_out[sid] >= 0:
                return  # terminal: never stepped, nothing to lower
            base_before = len(self.br_is_read)
            self.ensure_compiled(sid)
            if self.state_nb[sid] > 0 and self.state_base[sid] < base_before:
                # Pre-existing lazy compile: register its branch range.
                register_branches(
                    self.state_base[sid],
                    self.state_base[sid] + self.state_nb[sid])
            else:
                register_branches(base_before, len(self.br_is_read))

        while state_queue or read_queue:
            while state_queue:
                visit_state(state_queue.pop())
            while read_queue:
                b, vid = read_queue.pop()
                nxt = self.read_outcome(b, vid)
                if nxt not in seen_states:
                    seen_states.add(nxt)
                    state_queue.append(nxt)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.state_pid)

    @property
    def n_branches(self) -> int:
        return len(self.br_is_read)

    @property
    def n_values(self) -> int:
        return len(self.values)

    def value_of(self, vid: int) -> Hashable:
        return self.values[vid]

    def state_of(self, sid: int) -> Hashable:
        return self.state_obj[sid]

    def decode_configuration(self, sids: Sequence[int],
                             reg_vids: Sequence[int],
                             pend: Sequence[Tuple[int, int, int]] = ()) \
            -> Configuration:
        """Rebuild the object-level :class:`Configuration` of an IR one.

        ``pend`` carries the packed weak-memory pending-write triples
        ``(writer, slot, vid)`` in writer order; it decodes to the
        :attr:`Configuration.mem` snapshot shape (``None`` when empty),
        matching :meth:`repro.sim.memory.RegularMemory.snapshot`.
        """
        return Configuration(
            states=tuple(self.state_obj[s] for s in sids),
            registers=tuple(self.values[v] for v in reg_vids),
            mem=(tuple((w, s, self.values[v]) for w, s, v in pend)
                 if pend else None),
        )

    def encode_configuration(self, config: Configuration) \
            -> Tuple[Tuple[int, ...], Tuple[int, ...],
                     Tuple[Tuple[int, int, int], ...]]:
        """Pack an object-level configuration into interned vectors.

        The inverse of :meth:`decode_configuration`: per-processor
        state ids, per-slot value ids, and the pending-write triples
        ``(writer, slot, vid)`` (empty for atomic/quiescent
        configurations).  Interns on demand, so encoding a
        configuration the tables have never seen is legal — the
        differential suites use this to fingerprint object-BFS graphs
        through the same tables the fingerprint engine used.
        """
        sids = tuple(self.intern_state(pid, state)
                     for pid, state in enumerate(config.states))
        regs = tuple(self.intern_value(v) for v in config.registers)
        pend: Tuple[Tuple[int, int, int], ...] = ()
        if config.mem is not None:
            pend = tuple((w, s, self.intern_value(v))
                         for w, s, v in config.mem)
        return sids, regs, pend

    def describe(self) -> Dict[str, int]:
        """Table sizes, for logs/benchmarks and the CLI."""
        return {
            "states": self.n_states,
            "branches": self.n_branches,
            "values": self.n_values,
            "slots": self.n_slots,
            "read_cells": len(self.read_log),
        }


def compile_protocol(protocol: Automaton,
                     input_sets: Sequence[Sequence[Hashable]] = (),
                     *,
                     layout: Optional[RegisterLayout] = None,
                     strict: bool = True,
                     closed: bool = False,
                     max_states: int = MAX_STATES,
                     max_values: int = MAX_VALUES) -> CompiledProtocol:
    """Lower ``protocol`` to a :class:`CompiledProtocol`.

    ``input_sets`` seeds the initial states (one tuple per distinct
    input assignment the batch will run; lazy mode accepts further
    assignments later through :meth:`CompiledProtocol.initial_sids`).
    ``closed=True`` additionally runs the eager reachability fixpoint —
    required by the model checker, and the mode in which unbounded
    protocols refuse with :class:`IRCompileError` (docs/IR.md §6).
    """
    compiled = CompiledProtocol(protocol, layout=layout, strict=strict,
                                max_states=max_states,
                                max_values=max_values)
    for inputs in input_sets:
        compiled.initial_sids(tuple(inputs))
    if closed:
        compiled.close([tuple(i) for i in input_sets])
    return compiled

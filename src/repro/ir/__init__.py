"""Table IR: finite protocols lowered to integer arrays.

``repro.ir`` is the layer between the object-level protocol automata
(:mod:`repro.core`) and the batch engines: :mod:`repro.ir.lower` interns
states/values/branches into dense tables, :mod:`repro.ir.mt` vectorizes
the CPython RNG those tables are stepped with, and
:mod:`repro.ir.vector` is the lockstep mega-batch executor behind
``engine="vector"``.  The IR layout, lowering rules, determinism
contract, and refusal cases are specified in docs/IR.md.
"""

from repro.ir.lower import (
    CompiledProtocol,
    IRCompileError,
    IRUnsupportedError,
    MAX_STATES,
    MAX_VALUES,
    compile_protocol,
)
from repro.ir.vector import (
    BATCH_CHUNK,
    RunRecord,
    SCALAR_CUTOFF,
    SUPPORTED_SCHEDULERS,
    VectorBatch,
    VectorKernel,
    replay_run,
    vectorize_scheduler,
)

__all__ = [
    "BATCH_CHUNK",
    "CompiledProtocol",
    "IRCompileError",
    "IRUnsupportedError",
    "MAX_STATES",
    "MAX_VALUES",
    "RunRecord",
    "SCALAR_CUTOFF",
    "SUPPORTED_SCHEDULERS",
    "VectorBatch",
    "VectorKernel",
    "compile_protocol",
    "replay_run",
    "vectorize_scheduler",
]

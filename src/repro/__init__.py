"""repro — reproduction of Chor, Israeli & Li, PODC 1987.

*On Processor Coordination Using Asynchronous Hardware*: randomized
wait-free consensus for asynchronous processors that communicate only
through atomic read/write registers, plus the impossibility of solving
the same problem deterministically.

Package map
-----------

``repro.core``
    The paper's protocols: two-processor (Figure 1), three-processor
    unbounded (Figure 2), three-processor bounded (Figure 3 / Section
    6), the n-processor generalization, the Theorem 5 multivalued
    reduction, and baselines.
``repro.sim``
    The Section 2 machine: automaton processors, atomic registers with
    reader/writer sets, serialized steps, seeded randomness.
``repro.sched``
    Schedulers from benign round-robin to the full-knowledge adaptive
    adversaries of the termination proofs, plus fail-stop crashes.
``repro.checker``
    Exhaustive safety verification and the mechanized Section 3
    impossibility pipeline (bivalence, Lemma 3, non-deciding lassos).
``repro.registers``
    The Lamport register-construction substrate: safe → regular →
    atomic, bits → words, SRSW → MRSW, with a linearizability checker.
``repro.apps``
    The applications the paper motivates coordination with: mutual
    exclusion, leader election, choice coordination.
``repro.analysis``
    The paper's bounds as formulas and the statistics that compare
    measurements against them.
``repro.obs``
    Kernel observability: event hooks, streaming metrics (counters /
    gauges / percentile histograms), JSONL run journals, and phase
    timers — see ``docs/OBSERVABILITY.md``.
``repro.spec``
    The canonical :class:`~repro.spec.RunSpec`: one frozen, picklable
    description of a run with a stable content hash — see
    ``docs/API.md``.
``repro.engines``
    The engine registry: sim and checker engines with capability
    flags, the single validation point for every engine selection.
``repro.store``
    Content-addressed run store: crash-safe shard commits, resumable
    sweeps, warm-cache repeats, checksummed self-healing shards — see
    ``docs/STORE.md``.
``repro.parallel``
    Sharded multi-process sweeps, plus the fault-tolerant supervisor
    (watchdogs, deterministic retries, quarantine) — see
    ``docs/ROBUSTNESS.md``.
``repro.faults``
    Deterministic, replayable fault injection for the chaos suite.

Quickstart
----------

>>> from repro import solve, TwoProcessProtocol
>>> outcome = solve(TwoProcessProtocol(), ["a", "b"], seed=1)
>>> outcome.consistent and outcome.value in ("a", "b")
True
"""

from repro.core import (
    ConsensusOutcome,
    ConsensusProtocol,
    MultiValuedProtocol,
    NaiveProtocol,
    NProcessProtocol,
    ThreeBoundedProtocol,
    ThreeUnboundedProtocol,
    TwoProcessProtocol,
    solve,
)
from repro.errors import (
    AccessViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    VerificationError,
)
from repro.faults import FaultAction, FaultPlan, InjectedFault
from repro.obs import JsonlJournal, MetricsRegistry, PhaseTimer
from repro.parallel.supervisor import (FaultReport, SupervisorError,
                                       SupervisorPolicy, run_supervised)
from repro.sim import BOTTOM, ExperimentRunner, ReplayableRng, Simulation
from repro.spec import ObsOptions, RunSpec, SpecError
from repro.store import RunStore, ShardVerdict, StoreError, StoreStats

__version__ = "1.1.0"

__all__ = [
    "ConsensusOutcome",
    "ConsensusProtocol",
    "MultiValuedProtocol",
    "NaiveProtocol",
    "NProcessProtocol",
    "ThreeBoundedProtocol",
    "ThreeUnboundedProtocol",
    "TwoProcessProtocol",
    "solve",
    "AccessViolation",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "VerificationError",
    "BOTTOM",
    "ExperimentRunner",
    "FaultAction",
    "FaultPlan",
    "FaultReport",
    "InjectedFault",
    "JsonlJournal",
    "MetricsRegistry",
    "ObsOptions",
    "PhaseTimer",
    "ReplayableRng",
    "RunSpec",
    "RunStore",
    "ShardVerdict",
    "Simulation",
    "SpecError",
    "StoreError",
    "StoreStats",
    "SupervisorError",
    "SupervisorPolicy",
    "__version__",
    "run_supervised",
]

"""Weak-memory anomaly search: machine-checked HHT-style claims.

Hadzilacos–Hu–Toueg (PAPERS.md) separate regular from safe registers
for randomized consensus: regularity is enough for consistency, safety
alone is not.  This module turns that claim into something the checker
can verify on our automata:

* :func:`find_memory_anomaly` BFS-walks the weak-memory configuration
  graph (every scheduling, every coin, every legal read value) looking
  for either a **consistency** violation (two processors decided
  different values) or a **garbage read** — a read edge whose returned
  value is outside what :class:`~repro.sim.memory.RegularMemory` would
  allow in the same configuration, i.e. a behavior only safe registers
  exhibit.  The shallowest anomaly is returned as an explicit
  step-by-step witness.
* :func:`replay_witness` re-executes a witness against the explorer's
  transition relation and returns the final configuration, proving the
  trace is a real run of the system (every step is a legal successor),
  not an artifact of the search.

Replaying through the *kernel* instead is impossible in general — a
witness pins coin outcomes, which the kernel deliberately samples
outside adversary control — so the replay walks the same successor
relation the safety checker quantifies over.  That is exactly the right
notion: the checker's guarantees are statements about this graph.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.sim.config import Configuration
from repro.sim.memory import RegularMemory, memory_spec
from repro.sim.ops import ReadOp
from repro.sim.process import Automaton
from repro.sim.transitions import TransitionCache
from repro.checker.explorer import successors


@dataclasses.dataclass(frozen=True)
class WitnessStep:
    """One step of an anomaly witness: who moved, what op, what value."""

    pid: int
    op: object
    result: Hashable

    def __repr__(self) -> str:
        return f"P{self.pid}: {self.op!r} -> {self.result!r}"


@dataclasses.dataclass(frozen=True)
class AnomalyWitness:
    """A replayable trace exhibiting a weak-memory anomaly.

    ``kind`` is ``"consistency"`` (two decision values in ``final``) or
    ``"garbage-read"`` (the last step's read value is infeasible under
    regular semantics — only safe registers return it).  ``steps`` lead
    from the initial configuration of ``inputs`` to ``final``;
    :func:`replay_witness` re-validates them.
    """

    kind: str
    memory: str
    inputs: Tuple[Hashable, ...]
    steps: Tuple[WitnessStep, ...]
    detail: str
    final: Configuration

    def describe(self) -> str:
        lines = [
            f"{self.kind} anomaly under {self.memory} registers "
            f"(inputs {self.inputs!r}):",
            f"  {self.detail}",
        ]
        for i, step in enumerate(self.steps):
            lines.append(f"  step {i}: {step!r}")
        return "\n".join(lines)


def _decision_values(protocol: Automaton,
                     config: Configuration) -> Dict[int, Hashable]:
    return config.decisions(protocol)


def find_memory_anomaly(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    memory: str = "safe",
    max_depth: Optional[int] = None,
    max_states: int = 200_000,
) -> Optional[AnomalyWitness]:
    """Search for the shallowest weak-memory anomaly, if any.

    Explores the ``memory``-semantics configuration graph breadth-first
    with parent pointers; the first consistency violation *or* garbage
    read found is materialized into an :class:`AnomalyWitness` (BFS
    order makes it a shortest witness in steps).  Returns ``None`` when
    the budgets are exhausted without an anomaly — which, for
    ``memory="regular"``, is the HHT-style positive claim
    :func:`repro.checker.properties.verify_safety` also certifies.
    """
    spec = memory_spec(memory)
    cache = TransitionCache(protocol, strict=False)
    layout = cache.layout
    model = None if spec.atomic else spec.build(layout)
    # Regular-feasibility oracle for the garbage-read check: a read
    # value is "garbage" iff RegularMemory would not allow it in the
    # same configuration (committed value or overlapping write only).
    regular = RegularMemory(layout)

    root = Configuration.initial(protocol, layout, inputs)
    parents: Dict[Configuration, Optional[Tuple[Configuration, WitnessStep]]]
    parents = {root: None}
    depth_of = {root: 0}
    queue = collections.deque([root])

    def witness_of(config: Configuration, last: Optional[WitnessStep],
                   kind: str, detail: str) -> AnomalyWitness:
        steps: List[WitnessStep] = [last] if last is not None else []
        node = config
        while True:
            parent = parents[node]
            if parent is None:
                break
            node, step = parent
            steps.append(step)
        steps.reverse()
        final = config
        if last is not None:
            for succ in successors(protocol, layout, config, cache, model):
                if (succ.pid == last.pid and succ.op == last.op
                        and succ.result == last.result):
                    final = succ.config
                    break
        return AnomalyWitness(
            kind=kind, memory=spec.name, inputs=tuple(inputs),
            steps=tuple(steps), detail=detail, final=final,
        )

    while queue:
        config = queue.popleft()
        depth = depth_of[config]
        decided = _decision_values(protocol, config)
        if len(set(decided.values())) > 1:
            return witness_of(
                config, None, "consistency",
                f"decisions {decided!r} at depth {depth}",
            )
        if max_depth is not None and depth >= max_depth:
            continue
        for succ in successors(protocol, layout, config, cache, model):
            step = WitnessStep(pid=succ.pid, op=succ.op, result=succ.result)
            if isinstance(succ.op, ReadOp):
                regular.restore(config.registers, config.mem)
                regular.on_activate(succ.pid)
                feasible = regular.read_choices(
                    layout.index_of(succ.op.register))
                if succ.result not in feasible:
                    return witness_of(
                        config, step, "garbage-read",
                        f"P{succ.pid} read {succ.result!r} from "
                        f"{succ.op.register!r}; regular registers only "
                        f"allow one of {feasible!r}",
                    )
            nxt = succ.config
            if nxt not in depth_of:
                if len(depth_of) >= max_states:
                    return None
                depth_of[nxt] = depth + 1
                parents[nxt] = (config, step)
                queue.append(nxt)
    return None


def replay_witness(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    memory: str,
    steps: Sequence[WitnessStep],
) -> Configuration:
    """Re-execute a witness step-by-step; return the final configuration.

    Each step must match an actual successor edge (same processor, same
    operation, same returned value) of the configuration reached so
    far; a mismatch raises :class:`~repro.errors.VerificationError`.
    A witness that replays is therefore a genuine run of the system
    under the claimed memory semantics.
    """
    spec = memory_spec(memory)
    cache = TransitionCache(protocol, strict=False)
    layout = cache.layout
    model = None if spec.atomic else spec.build(layout)
    config = Configuration.initial(protocol, layout, inputs)
    for i, step in enumerate(steps):
        for succ in successors(protocol, layout, config, cache, model):
            if (succ.pid == step.pid and succ.op == step.op
                    and succ.result == step.result):
                config = succ.config
                break
        else:
            raise VerificationError(
                f"witness step {i} ({step!r}) is not a legal successor "
                f"under {spec.name} semantics"
            )
    return config

"""Explicit-state exploration of protocol configuration graphs.

A configuration (processor states + register contents) is hashable, so
the set of configurations reachable under *every* scheduler choice and
*every* coin outcome can be enumerated by plain breadth-first search.
For the paper's protocols this is the ground truth the theorems talk
about: a safety property verified over this graph holds against the
strongest adaptive adversary, because the adversary can only pick paths
inside the graph.

The graph may be infinite (the unbounded protocol's num fields); the
explorer therefore takes depth and state budgets and reports whether it
exhausted the reachable space or was truncated.
"""

from __future__ import annotations

import collections
import dataclasses
from time import perf_counter as _perf_counter
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.sim.config import Configuration, RegisterLayout
from repro.sim.memory import MemoryModel, memory_spec
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton
from repro.sim.transitions import TransitionCache


@dataclasses.dataclass(frozen=True)
class Successor:
    """One outgoing edge of the configuration graph.

    ``pid`` is the processor the scheduler activates, ``probability``
    the coin weight of the branch taken (1.0 for deterministic steps),
    ``op`` the register operation performed, ``result`` the value the
    operation returned (the read value — adversary-chosen under weak
    memory semantics, where one read may fan out into several edges —
    or ``None`` for writes).
    """

    pid: int
    probability: float
    op: object
    config: Configuration
    result: Hashable = None


def enabled_pids(protocol: Automaton, config: Configuration,
                 cache: Optional[TransitionCache] = None) -> Tuple[int, ...]:
    """Processors that may still take a step (undecided ones)."""
    if cache is not None:
        output = cache.output
        return tuple(
            pid for pid in range(protocol.n_processes)
            if output(pid, config.states[pid]) is None
        )
    return tuple(
        pid for pid in range(protocol.n_processes)
        if protocol.output(pid, config.states[pid]) is None
    )


def _weak_successors(
    protocol: Automaton,
    layout: RegisterLayout,
    config: Configuration,
    memory: MemoryModel,
    cache: Optional[TransitionCache],
) -> Iterator[Successor]:
    """Successors under a weak memory model: branch over legal reads.

    ``memory`` is a scratch model instance (reused across calls); each
    activation restores it to the node's ``(registers, mem)`` snapshot,
    commits the activated processor's pending write, and then fans a
    contended read out into one edge per legal return value — the
    explorer's counterpart of the kernel adversary's ``resolve_read``/
    ``Activate(read_value=...)`` vocabulary, so safety verdicts
    quantify over *every* value choice the adversary could make.
    """
    for pid in enabled_pids(protocol, config, cache):
        state = config.states[pid]
        # Re-enter the node's memory state and commit pid's pending
        # write — the same on_activate the kernel performs.
        memory.restore(config.registers, config.mem)
        memory.on_activate(pid)
        base_regs = tuple(memory.values)
        base_mem = memory.snapshot()
        if cache is not None:
            entry = cache.entry(pid, state)
            branches = entry.branches
        else:
            entry = None
            branches = protocol.branches(pid, state)
        for branch_index, branch in enumerate(branches):
            if entry is not None:
                op, is_read, slot, value = entry.execs[branch_index]
            else:
                op = branch.op
                is_read = isinstance(op, ReadOp)
                if is_read:
                    slot, value = layout.check_read(pid, op.register), None
                else:
                    slot, value = layout.check_write(pid, op.register), op.value
            if is_read:
                for choice in memory.read_choices(slot):
                    if entry is not None:
                        new_state = cache.outcome(
                            pid, state, entry, branch_index, choice)[0]
                    else:
                        new_state = protocol.observe(pid, state, op, choice)
                    yield Successor(
                        pid=pid, probability=branch.probability, op=op,
                        config=Configuration(
                            states=config.states[:pid] + (new_state,)
                            + config.states[pid + 1:],
                            registers=base_regs, mem=base_mem,
                        ),
                        result=choice,
                    )
            else:
                memory.write(pid, slot, value)
                regs = tuple(memory.values)
                mem = memory.snapshot()
                # Undo the write so sibling branches see the base state.
                memory.restore(base_regs, base_mem)
                if entry is not None:
                    new_state = cache.outcome(
                        pid, state, entry, branch_index, None)[0]
                else:
                    new_state = protocol.observe(pid, state, op, None)
                yield Successor(
                    pid=pid, probability=branch.probability, op=op,
                    config=Configuration(
                        states=config.states[:pid] + (new_state,)
                        + config.states[pid + 1:],
                        registers=regs, mem=mem,
                    ),
                    result=None,
                )


def successors(
    protocol: Automaton,
    layout: RegisterLayout,
    config: Configuration,
    cache: Optional[TransitionCache] = None,
    memory: Optional[MemoryModel] = None,
) -> Iterator[Successor]:
    """All one-step successors over scheduler choices × coin branches.

    Passing the same :class:`~repro.sim.transitions.TransitionCache`
    the kernel's fast path uses memoizes branch construction, slot
    resolution, and ``observe``/``output`` across the whole BFS — the
    same ``(pid, state)`` pair recurs in many configurations.

    ``memory`` selects the register semantics: ``None`` (or an
    :class:`~repro.sim.memory.AtomicMemory` scratch instance) keeps the
    historical atomic behavior; a weak model additionally branches
    contended reads over every legal return value (see
    :func:`_weak_successors`).
    """
    if memory is not None and not memory.atomic:
        yield from _weak_successors(protocol, layout, config, memory, cache)
        return
    if cache is not None:
        for pid in enabled_pids(protocol, config, cache):
            state = config.states[pid]
            entry = cache.entry(pid, state)
            for branch_index, branch in enumerate(entry.branches):
                op, is_read, slot, value = entry.execs[branch_index]
                if is_read:
                    result: Hashable = config.registers[slot]
                    next_config = config
                else:
                    result = None
                    next_config = config.with_register(slot, value)
                new_state = cache.outcome(
                    pid, state, entry, branch_index, result)[0]
                yield Successor(
                    pid=pid, probability=branch.probability, op=op,
                    config=next_config.with_state(pid, new_state),
                    result=result,
                )
        return
    for pid in enabled_pids(protocol, config):
        state = config.states[pid]
        for branch in protocol.branches(pid, state):
            op = branch.op
            if isinstance(op, ReadOp):
                slot = layout.check_read(pid, op.register)
                result = config.registers[slot]
                next_config = config
            else:
                assert isinstance(op, WriteOp)
                slot = layout.check_write(pid, op.register)
                result = None
                next_config = config.with_register(slot, op.value)
            new_state = protocol.observe(pid, state, op, result)
            next_config = next_config.with_state(pid, new_state)
            yield Successor(
                pid=pid, probability=branch.probability, op=op,
                config=next_config, result=result,
            )


@dataclasses.dataclass
class ConfigGraph:
    """The (possibly truncated) reachable configuration graph.

    ``edges[c]`` lists the successors of configuration ``c``;
    configurations in ``frontier`` were reached but not expanded
    (budget exhaustion), so the graph is complete iff ``complete``.
    """

    protocol: Automaton
    layout: RegisterLayout
    roots: Tuple[Configuration, ...]
    edges: Dict[Configuration, Tuple[Successor, ...]]
    depth_of: Dict[Configuration, int]
    frontier: Tuple[Configuration, ...]
    complete: bool

    @property
    def n_states(self) -> int:
        return len(self.depth_of)

    def nodes(self) -> Iterator[Configuration]:
        return iter(self.depth_of)

    def terminal_nodes(self) -> Iterator[Configuration]:
        """Expanded configurations with no enabled processor."""
        for config, succ in self.edges.items():
            if not succ:
                yield config


def _explore_tables(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    max_depth: Optional[int],
    max_states: int,
    on_node: Optional[Callable[[Configuration, int], None]],
    spec,
    tracer,
) -> ConfigGraph:
    """BFS over compiled integer tables (``explore(engine="tables")``).

    Configurations are explored as ``(state-id tuple, register-vid
    tuple, pending-write triples)`` keys — interned integers instead of
    rich state objects — and decoded back to object-level
    :class:`Configuration` on first visit, so the returned graph is
    *identical* (same nodes, same edge order, same :class:`Successor`
    fields) to the object-path BFS while hashing and successor
    generation run over plain ints.  Compilation stays lazy: only
    states some reachable configuration actually contains are ever
    lowered.  Weak memory lowers the adversary's read fan-out into the
    per-value read-outcome cells of the tables: a contended read emits
    one edge per legal value — the committed value, each pending value
    in writer order, and (``safe`` only, under contention) the slot's
    initial value — matching :func:`_weak_successors` choice for
    choice (docs/IR.md §6, docs/CHECKER.md).  The only genuinely
    unsupported protocols are those the IR itself refuses: non-register
    operations (:class:`~repro.ir.lower.IRUnsupportedError`) and
    unbounded state spaces that blow the interning budget
    (:class:`~repro.ir.lower.IRCompileError`).
    """
    from repro.ir import compile_protocol

    t0 = _perf_counter() if tracer is not None else 0.0
    weak = not spec.atomic
    safe_mem = spec.name == "safe"
    # strict=False mirrors the object path's TransitionCache(strict=
    # False): the explorer has never validated branch distributions.
    cp = compile_protocol(protocol, strict=False)
    layout = cp.layout
    n = cp.n_processes
    root_key = (tuple(cp.initial_sids(tuple(inputs))),
                tuple(cp.init_regs), ())
    decoded: Dict[Tuple, Configuration] = {}

    def config_of(key: Tuple) -> Configuration:
        config = decoded.get(key)
        if config is None:
            config = decoded[key] = cp.decode_configuration(
                key[0], key[1], key[2])
        return config

    def succ_of(key: Tuple) -> Tuple[Successor, ...]:
        sids, regs, pend = key
        out: List[Successor] = []
        for pid in range(n):
            sid = sids[pid]
            if cp.state_out[sid] >= 0:
                continue
            if cp.state_nb[sid] < 0:
                cp.ensure_compiled(sid)
            if weak:
                # Commit pid's pending write (the on_activate step).
                base_regs, base_pend = regs, pend
                for i, entry in enumerate(pend):
                    if entry[0] == pid:
                        base_regs = regs[:entry[1]] + (entry[2],) \
                            + regs[entry[1] + 1:]
                        base_pend = pend[:i] + pend[i + 1:]
                        break
            else:
                base_regs, base_pend = regs, pend
            base = cp.state_base[sid]
            for b in range(base, base + cp.state_nb[sid]):
                slot = cp.br_slot[b]
                if cp.br_is_read[b]:
                    if weak:
                        # read_choices order: committed value, pending
                        # values in writer order (pend is
                        # writer-sorted) deduplicated, then — safe
                        # only, under contention — the initial value.
                        choices = [base_regs[slot]]
                        contended = False
                        for w_, s_, v_ in base_pend:
                            if s_ == slot:
                                contended = True
                                if v_ not in choices:
                                    choices.append(v_)
                        if safe_mem and contended:
                            garbage = cp.init_regs[slot]
                            if garbage not in choices:
                                choices.append(garbage)
                    else:
                        choices = [base_regs[slot]]
                    for rv in choices:
                        nxt = cp.br_read_out[b].get(rv)
                        if nxt is None:
                            nxt = cp.read_outcome(b, rv)
                        nkey = (sids[:pid] + (nxt,) + sids[pid + 1:],
                                base_regs, base_pend)
                        out.append(Successor(
                            pid=pid, probability=cp.br_prob[b],
                            op=cp.br_op[b], config=config_of(nkey),
                            result=cp.values[rv],
                        ))
                else:
                    nxt = cp.br_write_next[b]
                    if weak:
                        # The write lands pending, not committed.
                        new_regs = base_regs
                        new_pend = tuple(sorted(
                            base_pend + ((pid, slot, cp.br_write[b]),)))
                    else:
                        new_regs = base_regs[:slot] + (cp.br_write[b],) \
                            + base_regs[slot + 1:]
                        new_pend = base_pend
                    nkey = (sids[:pid] + (nxt,) + sids[pid + 1:],
                            new_regs, new_pend)
                    out.append(Successor(
                        pid=pid, probability=cp.br_prob[b],
                        op=cp.br_op[b], config=config_of(nkey),
                        result=None,
                    ))
        return tuple(out)

    depth_of_key: Dict[Tuple, int] = {root_key: 0}
    edges: Dict[Configuration, Tuple[Successor, ...]] = {}
    depth_of: Dict[Configuration, int] = {config_of(root_key): 0}
    frontier: List[Configuration] = []
    complete = True
    queue = collections.deque([root_key])

    if on_node is not None:
        on_node(config_of(root_key), 0)

    while queue:
        key = queue.popleft()
        depth = depth_of_key[key]
        config = config_of(key)
        if max_depth is not None and depth >= max_depth:
            if succ_of(key):
                frontier.append(config)
                complete = False
            else:
                edges[config] = ()
            continue
        succ = succ_of(key)
        edges[config] = succ
        sids, regs, _pend = key
        for s in succ:
            if weak:
                skey = cp.encode_configuration(s.config)
            else:
                skey = ((sids[:s.pid]
                         + (cp.intern_state(s.pid,
                                            s.config.states[s.pid]),)
                         + sids[s.pid + 1:]),
                        tuple(cp.intern_value(v)
                              for v in s.config.registers),
                        ())
            if skey not in depth_of_key:
                if len(depth_of_key) >= max_states:
                    complete = False
                    frontier.append(config)
                    break
                depth_of_key[skey] = depth + 1
                depth_of[s.config] = depth + 1
                if on_node is not None:
                    on_node(s.config, depth + 1)
                queue.append(skey)
        else:
            continue
        break  # state budget exhausted: stop expanding

    for key in queue:
        config = config_of(key)
        if config not in edges:
            frontier.append(config)
            if succ_of(key):
                complete = False

    graph = ConfigGraph(
        protocol=protocol,
        layout=layout,
        roots=(config_of(root_key),),
        edges=edges,
        depth_of=depth_of,
        frontier=tuple(frontier),
        complete=complete,
    )
    if tracer is not None:
        tracer.record_explore(
            protocol_name=getattr(protocol, "name",
                                  type(protocol).__name__),
            n_configs=len(depth_of),
            n_edges=sum(len(e) for e in edges.values()),
            depth=max(depth_of.values()) if depth_of else 0,
            complete=complete,
            seconds=_perf_counter() - t0,
            n_frontier=len(frontier),
        )
    return graph


def explore(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    max_depth: Optional[int] = None,
    max_states: int = 1_000_000,
    on_node: Optional[Callable[[Configuration, int], None]] = None,
    memory=None,
    tracer=None,
    engine: Optional[str] = None,
) -> ConfigGraph:
    """Breadth-first exploration from the initial configuration.

    Parameters
    ----------
    protocol, inputs:
        The system to explore.
    max_depth:
        Expand configurations at depth < max_depth only (``None`` means
        unlimited — use for protocols known to be finite-state).
    max_states:
        Hard cap on distinct configurations; exceeding it truncates the
        graph (``complete=False``).
    on_node:
        Optional callback ``(config, depth)`` invoked on first visit —
        used by the safety checker to test invariants without a second
        pass.
    memory:
        Register semantics (``None``/name/:class:`~repro.sim.memory.
        MemorySpec`).  Weak semantics add value-choice branching: the
        graph then quantifies over adversary read-value choices as well
        as scheduling and coins.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; the whole BFS is
        recorded as one ``checker.explore`` span (logical time = depth
        reached, attrs = configs/edges/completeness).  Purely
        observational — the graph is identical with or without it.
    engine:
        ``"objects"`` (default) walks rich :class:`Configuration`
        objects through :func:`successors`; ``"tables"`` compiles the
        protocol to the table IR (:mod:`repro.ir`) and runs the same
        BFS over interned integer keys — under any memory semantics —
        returning an identical graph.  The tables engine raises only
        for protocols the IR itself cannot express: non-register
        operations (:class:`~repro.ir.lower.IRUnsupportedError`) or
        state spaces that blow the interning budget
        (:class:`~repro.ir.lower.IRCompileError`).  For a summary
        report over a far larger space (fingerprinted visited set, no
        materialized graph), see :func:`repro.checker.statespace.
        explore_fast`.
    """
    from repro.engines import UnknownEngineError, resolve_engine

    info = resolve_engine("checker", engine)
    if info.batch_shape != "graph":
        # Registered, but does not materialize a ConfigGraph — point at
        # the summary-report surfaces instead of claiming "unknown".
        raise UnknownEngineError(
            f"checker engine {info.name!r} does not materialize a "
            f"ConfigGraph; use verify_safety(engine={info.name!r}) or "
            f"repro.checker.statespace.explore_fast for the summary "
            f"report")
    if info.name == "tables":
        return _explore_tables(protocol, inputs, max_depth, max_states,
                               on_node, memory_spec(memory), tracer)
    t0 = _perf_counter() if tracer is not None else 0.0
    # One TransitionCache for the whole BFS: (pid, state) pairs recur
    # across configurations far more often than in a single run, so
    # branch/slot/observe resolution is paid once per distinct pair.
    # strict=False preserves the explorer's historical behavior of not
    # validating branch distributions.
    cache = TransitionCache(protocol, strict=False)
    layout = cache.layout
    spec = memory_spec(memory)
    # One scratch model for the whole BFS (restored per expansion);
    # None under atomic keeps the historical fast successor path.
    model = None if spec.atomic else spec.build(layout)
    root = Configuration.initial(protocol, layout, inputs)
    depth_of: Dict[Configuration, int] = {root: 0}
    edges: Dict[Configuration, Tuple[Successor, ...]] = {}
    frontier: List[Configuration] = []
    complete = True
    queue = collections.deque([root])

    if on_node is not None:
        on_node(root, 0)

    while queue:
        config = queue.popleft()
        depth = depth_of[config]
        if max_depth is not None and depth >= max_depth:
            # Depth budget: do not expand, but only a config that
            # actually has successors makes the graph incomplete.
            if tuple(successors(protocol, layout, config, cache, model)):
                frontier.append(config)
                complete = False
            else:
                edges[config] = ()
            continue
        succ = tuple(successors(protocol, layout, config, cache, model))
        edges[config] = succ
        for s in succ:
            if s.config not in depth_of:
                if len(depth_of) >= max_states:
                    complete = False
                    frontier.append(config)
                    break
                depth_of[s.config] = depth + 1
                if on_node is not None:
                    on_node(s.config, depth + 1)
                queue.append(s.config)
        else:
            continue
        break  # state budget exhausted: stop expanding

    # Anything left unexpanded in the queue is frontier too.
    for config in queue:
        if config not in edges:
            frontier.append(config)
            if tuple(successors(protocol, layout, config, cache, model)):
                complete = False

    graph = ConfigGraph(
        protocol=protocol,
        layout=layout,
        roots=(root,),
        edges=edges,
        depth_of=depth_of,
        frontier=tuple(frontier),
        complete=complete,
    )
    if tracer is not None:
        tracer.record_explore(
            protocol_name=getattr(protocol, "name",
                                  type(protocol).__name__),
            n_configs=len(depth_of),
            n_edges=sum(len(e) for e in edges.values()),
            depth=max(depth_of.values()) if depth_of else 0,
            complete=complete,
            seconds=_perf_counter() - t0,
            n_frontier=len(frontier),
        )
    return graph

"""Valency classification (Section 3, Lemmas 1-2).

A configuration is *bivalent* if two different decision values are
reachable from it (over all schedules), *univalent* if exactly one is,
and — a case the paper does not need to name but the checker meets in
practice — *nullvalent* if no decision is reachable at all (e.g. the
obstinate protocol locked in eternal disagreement).

On a complete configuration graph the classification is computed by a
backward fixpoint: seed every configuration with the values its own
decided processors hold, then propagate reachable-value sets against
the edge direction until stable.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
from typing import Dict, FrozenSet, Hashable, Optional

from repro.checker.explorer import ConfigGraph
from repro.errors import ExplorationLimitError
from repro.sim.config import Configuration


class Valency(enum.Enum):
    """The three valency classes of a configuration."""

    BIVALENT = "bivalent"
    UNIVALENT = "univalent"
    NULLVALENT = "nullvalent"


def decision_values_of(graph: ConfigGraph) -> Dict[Configuration, FrozenSet[Hashable]]:
    """For every configuration, the set of decision values reachable
    from it under some schedule.

    Requires a complete graph: on a truncated graph the sets would be
    under-approximations and a "univalent" answer could be wrong.
    """
    if not graph.complete:
        raise ExplorationLimitError(
            "valency needs the complete reachable graph; increase the "
            "exploration budget or use a finite-state protocol",
            states_explored=graph.n_states,
        )
    protocol = graph.protocol

    # Reverse adjacency for backward propagation.
    parents: Dict[Configuration, list] = collections.defaultdict(list)
    for config, succ in graph.edges.items():
        for s in succ:
            parents[s.config].append(config)

    values: Dict[Configuration, set] = {}
    work = collections.deque()
    for config in graph.depth_of:
        own = frozenset(config.decisions(protocol).values())
        values[config] = set(own)
        if own:
            work.append(config)

    while work:
        config = work.popleft()
        for parent in parents.get(config, ()):
            before = len(values[parent])
            values[parent] |= values[config]
            if len(values[parent]) != before:
                work.append(parent)

    return {c: frozenset(v) for c, v in values.items()}


@dataclasses.dataclass(frozen=True)
class ValencyMap:
    """Valency classification of every configuration in a graph."""

    values: Dict[Configuration, FrozenSet[Hashable]]

    def valency(self, config: Configuration) -> Valency:
        n = len(self.values[config])
        if n >= 2:
            return Valency.BIVALENT
        if n == 1:
            return Valency.UNIVALENT
        return Valency.NULLVALENT

    def value(self, config: Configuration) -> Optional[Hashable]:
        """The single reachable value of a univalent configuration."""
        vals = self.values[config]
        if len(vals) == 1:
            return next(iter(vals))
        return None

    def count(self, valency: Valency) -> int:
        return sum(1 for c in self.values if self.valency(c) is valency)


def classify(graph: ConfigGraph) -> ValencyMap:
    """Classify every configuration of a complete graph."""
    return ValencyMap(values=decision_values_of(graph))

"""Correctness properties: per-run validation and exhaustive safety.

The paper's three requirements (Section 2):

* **Consistency** — no reachable configuration has two different
  decision values.  A *safety* property: it must hold on every path
  with probability 1, so it can be verified by enumerating all
  scheduler choices and coin outcomes (:func:`verify_safety`).
* **Nontriviality** — every decision value is the input of some
  processor activated in the run.  Also safety; checked the same way
  (our protocols only ever decide values traceable to inputs, so the
  stronger "decision ∈ inputs of *scheduled* processors" is checked on
  traces, and "decision ∈ inputs" on configurations).
* **Termination** — probabilistic; checked statistically by the
  benchmark harness (it is a claim about expectations, not about every
  path — indeed for every randomized protocol some measure-zero path
  never decides).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.checker.explorer import ConfigGraph, explore
from repro.errors import VerificationError
from repro.sim.config import Configuration
from repro.sim.kernel import RunResult
from repro.sim.process import Automaton


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Validation summary of one run."""

    consistent: bool
    nontrivial: bool
    all_decided: bool
    decisions: Dict[int, Hashable]
    activations: Dict[int, int]


def validate_run(result: RunResult, require_decision: bool = False) -> RunReport:
    """Validate one finished run; raise :class:`VerificationError` on
    a consistency or nontriviality violation.

    ``require_decision`` additionally demands that every non-crashed
    processor decided (useful after runs with generous step budgets,
    where not deciding indicates a liveness bug, not bad luck).
    """
    if not result.consistent:
        raise VerificationError(
            f"consistency violated: decisions {result.decisions!r} "
            f"on inputs {result.inputs!r}"
        )
    if not result.nontrivial:
        raise VerificationError(
            f"nontriviality violated: decisions {result.decisions!r} "
            f"not among inputs {result.inputs!r}"
        )
    if require_decision and not result.all_decided:
        undecided = [
            pid for pid in range(len(result.inputs))
            if pid not in result.decisions and pid not in result.crashed
        ]
        raise VerificationError(
            f"processors {undecided} never decided within "
            f"{result.total_steps} steps"
        )
    return RunReport(
        consistent=result.consistent,
        nontrivial=result.nontrivial,
        all_decided=result.all_decided,
        decisions=dict(result.decisions),
        activations=dict(result.activations),
    )


@dataclasses.dataclass
class SafetyReport:
    """Outcome of exhaustive safety verification.

    ``ok`` means no violation was found; combined with ``complete``
    this distinguishes "verified on the full reachable space" from
    "verified up to the exploration budget".
    """

    ok: bool
    complete: bool
    states_explored: int
    max_depth_reached: int
    violation: Optional[str] = None
    witness: Optional[Configuration] = None

    def guarantee(self) -> str:
        """Human-readable statement of what was proven."""
        if not self.ok:
            return f"VIOLATION: {self.violation}"
        scope = (
            "the full reachable configuration space"
            if self.complete
            else f"all runs up to depth {self.max_depth_reached} "
                 f"({self.states_explored} configurations)"
        )
        return f"safety (consistency + nontriviality) holds over {scope}"


def verify_safety(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    max_depth: Optional[int] = None,
    max_states: int = 500_000,
    memory=None,
    engine: Optional[str] = None,
    symmetry: bool = False,
    por: bool = False,
    workers: int = 1,
    exact: bool = False,
) -> SafetyReport:
    """Exhaustively check consistency and nontriviality.

    Explores every configuration reachable under any scheduler and any
    coin outcome (bounded by the budgets) and checks on each:

    * all decided outputs agree,
    * every decided output is one of the run's inputs.

    Since safety must hold with probability one, a probability-weighted
    search adds nothing: plain reachability is the right notion.

    ``memory`` selects the register semantics (``None`` = atomic).
    Under ``"regular"``/``"safe"`` the explorer additionally branches
    contended reads over every legal return value, so a verified
    property holds against scheduling, coins *and* adversary read-value
    choices (see :mod:`repro.checker.weakmem` for witness extraction).

    ``engine`` selects the backend: ``"objects"`` or ``"tables"`` walk
    the materialized graph (:func:`repro.checker.explorer.explore` —
    identical graphs, identical verdicts), while ``"fingerprints"``
    runs the scalable fingerprinted search
    (:func:`repro.checker.statespace.explore_fast`) with inline
    checking and no graph — the only engine that scales to the
    three-bounded protocol's full reachable space.  ``symmetry``/
    ``por``/``workers``/``exact`` tune the fingerprints engine (see
    docs/CHECKER.md) and are rejected elsewhere.
    """
    from repro.engines import resolve_engine

    info = resolve_engine("checker", engine)
    engine = info.name
    if (symmetry or por or workers != 1 or exact) and not info.reductions:
        raise ValueError(
            "symmetry/por/workers/exact require engine='fingerprints' "
            f"(engine {engine!r} has no reduction support)")
    if engine == "fingerprints":
        from repro.checker.statespace import explore_fast

        rep = explore_fast(
            protocol, inputs, memory=memory, max_depth=max_depth,
            max_states=max_states, symmetry=symmetry, por=por,
            workers=workers, exact=exact,
        )
        return SafetyReport(
            ok=rep.ok,
            complete=rep.exhausted,
            states_explored=rep.visited,
            max_depth_reached=rep.depth,
            violation=rep.violation,
            witness=rep.witness,
        )
    input_set = set(inputs)
    state: Dict[str, object] = {
        "violation": None, "witness": None, "max_depth": 0,
    }

    def on_node(config: Configuration, depth: int) -> None:
        if depth > state["max_depth"]:
            state["max_depth"] = depth
        if state["violation"] is not None:
            return
        decided = config.decisions(protocol)
        values = set(decided.values())
        if len(values) > 1:
            state["violation"] = (
                f"consistency: decisions {decided!r} at depth {depth}"
            )
            state["witness"] = config
        elif any(v not in input_set for v in values):
            state["violation"] = (
                f"nontriviality: decisions {decided!r} outside inputs "
                f"{sorted(map(repr, input_set))} at depth {depth}"
            )
            state["witness"] = config

    graph = explore(
        protocol, inputs, max_depth=max_depth, max_states=max_states,
        on_node=on_node, memory=memory, engine=engine,
    )
    return SafetyReport(
        ok=state["violation"] is None,
        complete=graph.complete,
        states_explored=graph.n_states,
        max_depth_reached=state["max_depth"],
        violation=state["violation"],
        witness=state["witness"],
    )


def verify_safety_all_inputs(
    protocol_factory,
    values: Sequence[Hashable],
    n: int,
    max_depth: Optional[int] = None,
    max_states: int = 500_000,
) -> List[Tuple[Tuple[Hashable, ...], SafetyReport]]:
    """Run :func:`verify_safety` for every input assignment in V^n."""
    import itertools

    reports = []
    for inputs in itertools.product(values, repeat=n):
        report = verify_safety(
            protocol_factory(), inputs,
            max_depth=max_depth, max_states=max_states,
        )
        reports.append((inputs, report))
    return reports

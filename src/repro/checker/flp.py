"""Mechanizing Theorem 4: deterministic coordination is impossible.

The paper's proof (an adaptation of Fischer-Lynch-Paterson to shared
registers) is constructive at heart:

* **Lemma 2** — some initial configuration is bivalent (found here by
  classifying the initial configuration of every input assignment);
* **Lemma 3** — from any bivalent configuration, some processor's step
  leads to another bivalent configuration (found here by inspecting the
  classified graph);
* **Theorem 4** — iterating Lemma 3 yields an infinite non-deciding
  schedule (found here as a *lasso*: since the reachable graph of a
  finite-state deterministic protocol is finite, the bivalence-
  preserving walk must revisit a configuration, and the cycle can be
  pumped forever).

:func:`analyze_deterministic` runs the whole pipeline on a concrete
deterministic protocol and returns exactly one of the three possible
failure certificates Theorem 4 guarantees: a consistency violation, a
nontriviality violation, or an explicit non-terminating schedule.  The
theorem says every deterministic protocol yields one — benchmark E1
sweeps the zoo of :mod:`repro.core.deterministic` and checks that none
escapes.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.checker.explorer import ConfigGraph, explore
from repro.checker.valency import Valency, ValencyMap, classify
from repro.errors import ProtocolError, VerificationError
from repro.sim.config import Configuration
from repro.sim.process import Automaton


@dataclasses.dataclass(frozen=True)
class ImpossibilityReport:
    """The Theorem 4 certificate for one deterministic protocol.

    Exactly one of the three certificates is populated:

    * ``consistency_violation`` — an input assignment and reachable
      configuration with two different decisions;
    * ``nontriviality_violation`` — likewise, with a decision outside
      the inputs;
    * ``lasso`` — an input assignment plus (prefix, cycle) schedules:
      running ``prefix`` then repeating ``cycle`` forever keeps the
      system bivalent, so no processor ever decides.  ``fair`` records
      whether the cycle activates every processor (the strongest form
      of the witness: even a fair schedule fails).
    """

    protocol_name: str
    inputs: Optional[Tuple[Hashable, ...]] = None
    consistency_violation: Optional[str] = None
    nontriviality_violation: Optional[str] = None
    lasso_prefix: Optional[Tuple[int, ...]] = None
    lasso_cycle: Optional[Tuple[int, ...]] = None
    fair: Optional[bool] = None
    states_explored: int = 0

    @property
    def verdict(self) -> str:
        if self.consistency_violation:
            return "violates consistency"
        if self.nontriviality_violation:
            return "violates nontriviality"
        return "admits an infinite non-deciding schedule"

    def render(self) -> str:
        lines = [f"{self.protocol_name}: {self.verdict}"]
        if self.inputs is not None:
            lines.append(f"  inputs: {self.inputs!r}")
        if self.consistency_violation:
            lines.append(f"  {self.consistency_violation}")
        if self.nontriviality_violation:
            lines.append(f"  {self.nontriviality_violation}")
        if self.lasso_cycle:
            lines.append(
                f"  schedule: {list(self.lasso_prefix)} then repeat "
                f"{list(self.lasso_cycle)} forever"
                + (" (fair cycle)" if self.fair else "")
            )
        lines.append(f"  ({self.states_explored} configurations examined)")
        return "\n".join(lines)


def _check_deterministic(protocol: Automaton) -> None:
    randomized = getattr(protocol, "is_randomized", True)
    if randomized:
        raise ProtocolError(
            f"{protocol.name} declares itself randomized; the Theorem 4 "
            "pipeline applies to deterministic protocols only"
        )


def _graphs_per_input(
    protocol: Automaton,
    values: Sequence[Hashable],
    max_states: int,
) -> Dict[Tuple[Hashable, ...], ConfigGraph]:
    graphs = {}
    for inputs in itertools.product(values, repeat=protocol.n_processes):
        graphs[inputs] = explore(protocol, inputs, max_states=max_states)
    return graphs


def _safety_certificate(
    protocol: Automaton,
    inputs: Tuple[Hashable, ...],
    graph: ConfigGraph,
) -> Optional[ImpossibilityReport]:
    """Scan a graph for consistency/nontriviality violations."""
    input_set = set(inputs)
    for config in graph.nodes():
        decided = config.decisions(protocol)
        vals = set(decided.values())
        if len(vals) > 1:
            return ImpossibilityReport(
                protocol_name=protocol.name,
                inputs=inputs,
                consistency_violation=(
                    f"reachable configuration decides {decided!r}"
                ),
                states_explored=graph.n_states,
            )
        if any(v not in input_set for v in vals):
            return ImpossibilityReport(
                protocol_name=protocol.name,
                inputs=inputs,
                nontriviality_violation=(
                    f"reachable configuration decides {decided!r}, "
                    f"not among inputs"
                ),
                states_explored=graph.n_states,
            )
    return None


def find_bivalent_initial(
    protocol: Automaton,
    values: Sequence[Hashable] = ("a", "b"),
    max_states: int = 200_000,
) -> Optional[Tuple[Tuple[Hashable, ...], ConfigGraph, ValencyMap]]:
    """Lemma 2: search the input assignments for a bivalent (or
    nullvalent) initial configuration.

    Returns the first assignment whose initial configuration is not
    univalent, with the classified graph — or ``None`` if every initial
    configuration is univalent (which, per Lemma 2, means the protocol
    breaks consistency or nontriviality somewhere else).
    """
    _check_deterministic(protocol)
    for inputs, graph in _graphs_per_input(protocol, values, max_states).items():
        vmap = classify(graph)
        root = graph.roots[0]
        if vmap.valency(root) is not Valency.UNIVALENT:
            return inputs, graph, vmap
    return None


def _bivalence_lasso(
    protocol: Automaton,
    graph: ConfigGraph,
    vmap: ValencyMap,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Lemma 3 / Theorem 4: walk bivalence-preserving steps to a cycle.

    From each non-univalent configuration pick a successor that is
    still non-univalent (preferring steps that rotate through the
    processors, to make the witness cycle fair when possible).  The
    graph is finite, so the walk revisits a configuration; the portion
    since the first visit is the pumpable cycle.

    Returns ``None`` if the walk gets stuck on a configuration whose
    successors are all univalent.  Lemma 3 rules that out only for
    protocols that also satisfy *termination* (its proof runs the
    solo schedule "(2,2,2,...) leads to a decision"); a non-terminating
    protocol can legitimately strand the walk, and the caller then
    falls back to the general cycle witness.
    """
    root = graph.roots[0]
    path: List[Tuple[Configuration, int]] = []  # (config, pid taken)
    seen: Dict[Configuration, int] = {root: 0}
    config = root
    last_pid = -1
    while True:
        candidates = [
            s for s in graph.edges[config]
            if vmap.valency(s.config) is not Valency.UNIVALENT
        ]
        if not candidates:
            return None
        # Prefer a different processor than last time (fair witness),
        # then prefer unseen configurations to shorten the prefix.
        candidates.sort(
            key=lambda s: (s.pid == last_pid, s.config in seen)
        )
        step = candidates[0]
        path.append((config, step.pid))
        last_pid = step.pid
        config = step.config
        if config in seen:
            cut = seen[config]
            schedule = [pid for (_c, pid) in path]
            return tuple(schedule[:cut]), tuple(schedule[cut:])
        seen[config] = len(path)


def analyze_deterministic(
    protocol: Automaton,
    values: Sequence[Hashable] = ("a", "b"),
    max_states: int = 200_000,
) -> ImpossibilityReport:
    """Produce the Theorem 4 certificate for one deterministic protocol.

    Either a safety violation (with the offending input assignment) or
    an explicit infinite non-deciding schedule.  Raises
    :class:`VerificationError` if the protocol exhibits neither — which
    would refute Theorem 4 and therefore indicates a bug in the model.
    """
    _check_deterministic(protocol)
    graphs = _graphs_per_input(protocol, values, max_states)

    # First: safety certificates (cheapest, and Lemma 2 presumes safety).
    for inputs, graph in graphs.items():
        report = _safety_certificate(protocol, inputs, graph)
        if report is not None:
            return report

    # Safety holds: Lemma 2 promises a bivalent (or nullvalent) initial
    # configuration among the mixed-input assignments.
    for inputs, graph in graphs.items():
        vmap = classify(graph)
        if vmap.valency(graph.roots[0]) is Valency.UNIVALENT:
            continue
        lasso = _bivalence_lasso(protocol, graph, vmap)
        if lasso is None:
            # Lemma 3 needs termination to hold; this protocol fails
            # termination in a way the general cycle search exposes.
            break
        prefix, cycle = lasso
        pids_in_cycle = set(cycle)
        return ImpossibilityReport(
            protocol_name=protocol.name,
            inputs=inputs,
            lasso_prefix=prefix,
            lasso_cycle=cycle,
            fair=pids_in_cycle == set(range(protocol.n_processes)),
            states_explored=sum(g.n_states for g in graphs.values()),
        )

    # Fallback: a univalent configuration can still loop forever (the
    # single reachable value need not be reached on *every* schedule).
    # On a finite graph, termination is equivalent to acyclicity of the
    # reachable configuration graph: any reachable cycle is an infinite
    # schedule along which its participants never decide.
    for inputs, graph in graphs.items():
        lasso = _any_cycle(graph)
        if lasso is not None:
            prefix, cycle = lasso
            return ImpossibilityReport(
                protocol_name=protocol.name,
                inputs=inputs,
                lasso_prefix=prefix,
                lasso_cycle=cycle,
                fair=set(cycle) == set(range(protocol.n_processes)),
                states_explored=sum(g.n_states for g in graphs.values()),
            )

    raise VerificationError(
        f"{protocol.name}: consistent, nontrivial, and every schedule "
        "decides — this contradicts Theorem 4; check the protocol "
        "encoding"
    )


def _any_cycle(
    graph: ConfigGraph,
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Find any reachable cycle as a (prefix, cycle) schedule pair."""
    root = graph.roots[0]
    color: Dict[Configuration, int] = {}  # 1 = on stack, 2 = done
    stack: List[Tuple[Configuration, int]] = []

    def dfs(config: Configuration):
        color[config] = 1
        for s in graph.edges.get(config, ()):
            if color.get(s.config, 0) == 1:
                # Found a back edge: reconstruct prefix + cycle.
                schedule = [pid for (_c, pid) in stack] + [s.pid]
                idx = next(
                    (i for i, (c, _pid) in enumerate(stack) if c == s.config),
                    len(stack),  # self-loop on the current configuration
                )
                return tuple(schedule[:idx]), tuple(schedule[idx:])
            if color.get(s.config, 0) == 0:
                stack.append((config, s.pid))
                found = dfs(s.config)
                stack.pop()
                if found is not None:
                    return found
        color[config] = 2
        return None

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, graph.n_states + 100))
    try:
        return dfs(root)
    finally:
        sys.setrecursionlimit(old_limit)

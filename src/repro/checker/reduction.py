"""State-space reductions: verified symmetry and sleep-set POR.

Two classic explicit-state reductions (the TLC/Murphi toolbox),
implemented over the table IR so the scalable checker
(:mod:`repro.checker.statespace`) can apply them to packed integer
configurations.  Soundness arguments live in docs/CHECKER.md §3-§4;
the short versions:

**Symmetry** — a processor permutation ``π`` induces an automorphism of
the configuration graph only if the *step relation* commutes with it.
Rather than assuming protocols are symmetric (the paper's protocols
read their peers in sorted-pid order, which breaks naive positional
symmetry for n ≥ 3 — see docs/CHECKER.md §3), this module *verifies*
each candidate ``π`` against the closed tables: it attempts to build a
total state bijection ``φ`` (sid → sid) and a slot bijection ``σ`` such
that initial states, branch structure, write successors, read outcomes
and decided outputs all transport along ``(π, φ, σ)``.  A permutation
is admitted into the canonicalization group only if the construction
succeeds, so canonicalizing with the discovered group is sound *by
construction* — no symmetry assumption about the protocol is trusted.
Requires closed compilation (the verification quantifies over every
reachable state/value), hence unbounded protocols get symmetry
disabled with a note, never silently wrong.

**Partial order (sleep sets)** — steps of two processors whose
register footprints do not conflict (no slot written by one is read or
written by the other) commute: executing them in either order reaches
the same configuration, and neither can enable or disable the other
(enabledness of a processor depends only on its own state).  Sleep
sets prune the second of each such commuting pair of interleavings.
The variant here prunes *edges only* — every reachable configuration
is still visited (whenever an edge ``s → p(s)`` is pruned, ``p`` was
explorable at an earlier state of the same path and independent of
everything since, so ``p(s)`` is reached via the commuted
interleaving), which gives the stronger differential guarantee the
tests assert: identical visited-state sets with the reduction on and
off, not merely identical verdicts.  Sleep sets are only sound for
full exploration under atomic memory: a depth budget can cut the
commuted path short, and weak-memory pending writes make independence
configuration-dependent; the engine disables the reduction (with a
note) in both cases.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.lower import CompiledProtocol

#: Candidate-group width guard: verifying all n! permutations is cheap
#: for the paper's widths (n ≤ 5) and pointless beyond.
MAX_SYMMETRY_PROCESSES = 6


def candidate_permutations(protocol) -> Optional[List[Tuple[int, ...]]]:
    """Non-identity processor permutations worth verifying.

    Protocols may narrow the candidate set with a ``symmetry_candidates``
    hook (see :meth:`repro.sim.process.Automaton.symmetry_candidates`);
    the default is every non-identity permutation for small widths and
    ``None`` (symmetry unavailable) beyond the guard.
    """
    hook = getattr(protocol, "symmetry_candidates", None)
    if hook is not None:
        candidates = hook()
        # None means "no hint — use the default enumeration"; an
        # explicit list (possibly empty) narrows or disables the search.
        if candidates is not None:
            return [tuple(perm) for perm in candidates]
    n = protocol.n_processes
    if n < 2 or n > MAX_SYMMETRY_PROCESSES:
        return None
    identity = tuple(range(n))
    return [perm for perm in itertools.permutations(range(n))
            if perm != identity]


def slot_permutation(layout, perm: Sequence[int]) -> Optional[List[int]]:
    """The slot bijection ``σ`` induced by processor permutation ``perm``.

    Slot ``s`` must map to a slot whose writer/reader sets are exactly
    the ``perm``-image of ``s``'s and whose initial value matches.  If
    no image exists, or two slots are structurally indistinguishable
    (ambiguous image), the permutation is rejected — conservative, but
    the paper's single-writer registers always disambiguate.
    """
    specs = layout.specs
    signature = {}
    for slot, spec in enumerate(specs):
        sig = (tuple(sorted(spec.writers)), tuple(sorted(spec.readers)),
               spec.initial)
        if sig in signature:
            return None  # ambiguous: two structurally identical slots
        signature[sig] = slot
    sigma: List[int] = []
    for spec in specs:
        image = (tuple(sorted(perm[w] for w in spec.writers)),
                 tuple(sorted(perm[r] for r in spec.readers)),
                 spec.initial)
        target = signature.get(image)
        if target is None:
            return None
        sigma.append(target)
    return sigma


def _discover_phi(cp: CompiledProtocol, perm: Sequence[int],
                  sigma: Sequence[int]) -> Optional[Dict[int, int]]:
    """Try to build the state bijection ``φ`` transporting ``perm``.

    Constraint propagation from the initial states: pair ``(a, b)``
    asserts ``φ(a) = b``; each paired state's invariants are checked
    (owning pid transports along ``perm``, decided output vid is
    preserved, branch lists are structurally parallel with slots
    transported along ``sigma``) and its successors generate new
    pairs.  Any conflict — including non-injectivity — refutes the
    permutation.  Decision and register *values* are never permuted:
    the paper's symmetry is over processors, not over the input
    alphabet.
    """
    phi: Dict[int, int] = {}
    inverse: Dict[int, int] = {}
    queue: List[int] = []

    def pair(a: int, b: int) -> bool:
        cur = phi.get(a)
        if cur is not None:
            return cur == b
        if inverse.get(b, a) != a:
            return False
        phi[a] = b
        inverse[b] = a
        queue.append(a)
        return True

    try:
        for (pid, value), sid in list(cp._initial_ids.items()):
            if not pair(sid, cp.initial_sid(perm[pid], value)):
                return None
        while queue:
            a = queue.pop()
            b = phi[a]
            if cp.state_pid[b] != perm[cp.state_pid[a]]:
                return None
            out_a, out_b = cp.state_out[a], cp.state_out[b]
            if out_a >= 0 or out_b >= 0:
                if out_a != out_b:
                    return None
                continue  # decided states have no branches
            cp.ensure_compiled(a)
            cp.ensure_compiled(b)
            nb = cp.state_nb[a]
            if nb != cp.state_nb[b]:
                return None
            base_a, base_b = cp.state_base[a], cp.state_base[b]
            for i in range(nb):
                x, y = base_a + i, base_b + i
                if cp.br_is_read[x] != cp.br_is_read[y]:
                    return None
                if cp.br_prob[x] != cp.br_prob[y]:
                    return None
                if sigma[cp.br_slot[x]] != cp.br_slot[y]:
                    return None
                if cp.br_is_read[x]:
                    for vid, nxt in list(cp.br_read_out[x].items()):
                        if not pair(nxt, cp.read_outcome(y, vid)):
                            return None
                else:
                    if cp.br_write[x] != cp.br_write[y]:
                        return None
                    if not pair(cp.br_write_next[x],
                                cp.br_write_next[y]):
                        return None
    except Exception:
        # observe() on a value the image branch never sees, or an
        # interning-budget hit (IRCompileError) while chasing the image
        # world — either way the permutation is not a verified
        # automorphism.
        return None
    return phi


@dataclasses.dataclass
class SymmetryGroup:
    """The verified automorphism group used for canonicalization.

    ``perms``/``phis``/``sigmas`` are aligned lists of the *non-identity*
    verified permutations with their state and slot bijections;
    ``order`` counts the identity too.  ``note`` records why the group
    is smaller than requested (unbounded protocol, sorted-order reads,
    ambiguous slots, ...) for reports and docs-honesty.
    """

    n_processes: int
    perms: List[Tuple[int, ...]]
    phis: List[List[int]]
    sigmas: List[List[int]]
    note: Optional[str] = None

    @property
    def order(self) -> int:
        return len(self.perms) + 1

    def canonical(self, sids: Tuple[int, ...], regs: Tuple[int, ...],
                  pend: Tuple[Tuple[int, int, int], ...] = ()) \
            -> Tuple[Tuple[int, ...], Tuple[int, ...],
                     Tuple[Tuple[int, int, int], ...]]:
        """Lexicographically-least element of the configuration's orbit."""
        best = (sids, regs, pend)
        n = self.n_processes
        for perm, phi, sigma in zip(self.perms, self.phis, self.sigmas):
            new_sids = [0] * n
            for p in range(n):
                new_sids[perm[p]] = phi[sids[p]]
            new_regs = [0] * len(regs)
            for slot, vid in enumerate(regs):
                new_regs[sigma[slot]] = vid
            candidate = (tuple(new_sids), tuple(new_regs),
                         tuple(sorted((perm[w], sigma[s], v)
                                      for w, s, v in pend)))
            if candidate < best:
                best = candidate
        return best


def discover_symmetry(cp: CompiledProtocol, protocol) -> SymmetryGroup:
    """Verify candidate permutations against the *closed* tables.

    Every admitted permutation carries a machine-checked certificate
    (its ``φ``/``σ`` bijections); a trivial result is a finding, not a
    failure — the sorted-pid peer reads of the paper's n ≥ 3 protocols
    genuinely admit no nontrivial step-level automorphism
    (docs/CHECKER.md §3).
    """
    n = protocol.n_processes
    candidates = candidate_permutations(protocol)
    if candidates is None:
        return SymmetryGroup(n, [], [], [],
                             note=f"no candidate permutations (width "
                                  f"{n} outside the verification guard)")
    perms: List[Tuple[int, ...]] = []
    phis: List[List[int]] = []
    sigmas: List[List[int]] = []
    rejected = 0
    for perm in candidates:
        sigma = slot_permutation(cp.layout, perm)
        if sigma is None:
            rejected += 1
            continue
        phi = _discover_phi(cp, perm, sigma)
        if phi is None:
            rejected += 1
            continue
        # φ discovery may have interned image-world states; make the
        # list total over the final universe (identity off-orbit is
        # safe: canonical() only consults sids that occur in reachable
        # configurations, all of which are in φ's domain by the
        # fixpoint — the padding only avoids IndexError on width).
        table = list(range(cp.n_states))
        for a, b in phi.items():
            table[a] = b
        perms.append(tuple(perm))
        phis.append(table)
        sigmas.append(sigma)
    note = None
    if rejected and not perms:
        note = (f"all {rejected} candidate permutations refuted by the "
                f"tables (the protocol's step relation is asymmetric — "
                f"e.g. sorted-pid peer reads; docs/CHECKER.md §3)")
    elif rejected:
        note = f"{rejected} candidate permutations refuted, {len(perms)} verified"
    return SymmetryGroup(n, perms, phis, sigmas, note=note)


class PorFootprints:
    """Per-state register footprints and pid-level independence.

    The footprint of state ``sid`` is the pair of slot sets its branch
    distribution may read/write *this step*.  Two processors' current
    steps are independent iff neither's write set intersects the
    other's read-or-write set; since a processor's enabledness and
    branch list depend only on its own state, independent steps
    commute and stay co-enabled (docs/CHECKER.md §4).
    """

    def __init__(self, cp: CompiledProtocol) -> None:
        self.cp = cp
        self._foot: Dict[int, Tuple[frozenset, frozenset]] = {}
        self._indep: Dict[Tuple[int, int], bool] = {}

    def footprint(self, sid: int) -> Tuple[frozenset, frozenset]:
        foot = self._foot.get(sid)
        if foot is None:
            cp = self.cp
            reads = set()
            writes = set()
            if cp.state_out[sid] < 0:
                if cp.state_nb[sid] < 0:
                    cp.ensure_compiled(sid)
                base = cp.state_base[sid]
                for b in range(base, base + cp.state_nb[sid]):
                    if cp.br_is_read[b]:
                        reads.add(cp.br_slot[b])
                    else:
                        writes.add(cp.br_slot[b])
            foot = self._foot[sid] = (frozenset(reads), frozenset(writes))
        return foot

    def independent(self, sid_a: int, sid_b: int) -> bool:
        key = (sid_a, sid_b) if sid_a <= sid_b else (sid_b, sid_a)
        verdict = self._indep.get(key)
        if verdict is None:
            reads_a, writes_a = self.footprint(sid_a)
            reads_b, writes_b = self.footprint(sid_b)
            verdict = self._indep[key] = (
                not (writes_a & (reads_b | writes_b))
                and not (writes_b & (reads_a | writes_a))
            )
        return verdict

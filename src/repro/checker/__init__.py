"""Verification machinery.

Three layers, all operating on the explicit automaton formalism:

* :mod:`repro.checker.properties` — validate single runs (consistency,
  nontriviality, wait-free accounting) and exhaustively verify *safety*
  of randomized protocols over all schedules × all coin outcomes up to
  a state/depth budget.  Safety must hold with probability one, so
  enumerating coin outcomes is sound.
* :mod:`repro.checker.explorer` — the underlying explicit-state
  reachability engine (configuration graphs).
* :mod:`repro.checker.valency` + :mod:`repro.checker.flp` — mechanize
  Section 3: classify configurations as univalent/bivalent (Lemmas 1-2)
  and constructively extend bivalence into an explicit infinite
  non-deciding schedule (Lemma 3 / Theorem 4) for any deterministic
  protocol.
* :mod:`repro.checker.weakmem` — weak-memory anomaly search: exhibit
  replayable consistency-violating or garbage-read traces under
  ``regular``/``safe`` register semantics (the HHT-style separation).
* :mod:`repro.checker.statespace` (+ :mod:`~repro.checker.fingerprint`,
  :mod:`~repro.checker.reduction`) — the scalable engine: fingerprinted
  table-IR BFS with verified symmetry canonicalization, sleep-set
  partial-order reduction, and a sharded parallel frontier
  (docs/CHECKER.md).
"""

from repro.checker.explorer import ConfigGraph, Successor, explore, successors
from repro.checker.fingerprint import ZobristTable, stable_token
from repro.checker.properties import (
    SafetyReport,
    validate_run,
    verify_safety,
)
from repro.checker.reduction import SymmetryGroup, discover_symmetry
from repro.checker.statespace import (
    ExploreReport,
    StateSpaceEngine,
    explore_fast,
)
from repro.checker.weakmem import (
    AnomalyWitness,
    WitnessStep,
    find_memory_anomaly,
    replay_witness,
)
from repro.checker.valency import Valency, classify, decision_values_of
from repro.checker.flp import (
    ImpossibilityReport,
    analyze_deterministic,
    find_bivalent_initial,
)

__all__ = [
    "ConfigGraph",
    "Successor",
    "explore",
    "successors",
    "ExploreReport",
    "StateSpaceEngine",
    "explore_fast",
    "ZobristTable",
    "stable_token",
    "SymmetryGroup",
    "discover_symmetry",
    "SafetyReport",
    "validate_run",
    "verify_safety",
    "AnomalyWitness",
    "WitnessStep",
    "find_memory_anomaly",
    "replay_witness",
    "Valency",
    "classify",
    "decision_values_of",
    "ImpossibilityReport",
    "analyze_deterministic",
    "find_bivalent_initial",
]

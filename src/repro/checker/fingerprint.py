"""Zobrist fingerprints for packed table-IR configurations.

The scalable checker (:mod:`repro.checker.statespace`) keys its visited
set by 64-bit fingerprints of packed ``(state-ids, register-vids[,
pending-writes])`` integer vectors instead of storing the vectors
themselves.  The fingerprint is a Zobrist hash: every *component* a
configuration can contain — processor ``p`` being in state ``s``, slot
``k`` holding value ``v``, writer ``w`` having a write of ``v`` pending
on slot ``k`` — gets an independent pseudo-random 64-bit key, and a
configuration's fingerprint is the XOR of its components' keys.  XOR
composition is what makes the hash *incremental*: one BFS edge changes
one processor state and at most one register slot, so the successor
fingerprint is the parent's XOR'd with two (reads) or four (writes)
keys — O(1) per edge regardless of system width.

Determinism contract
--------------------

Fingerprints must be identical across worker processes (the sharded
frontier merges visited-fingerprint sets; see docs/CHECKER.md §5) and
across runs, so nothing here may depend on Python's per-process salted
``hash()`` or on interning order (two workers that discover states in
different orders assign different state ids to the same state).  Keys
are therefore derived from *content*: a structural 64-bit token of the
state/value object (:func:`stable_token` — FNV/SplitMix over the
object's structure, the same mixers as :func:`repro.sim.rng.
derive_seed`) folded with the component's position.  Same object, same
position, same key — in every process, on every Python version.

Collision story (the math; measurements in docs/CHECKER.md §2)
--------------------------------------------------------------

Distinct configurations collide when their 64-bit fingerprints are
equal.  Modelling fingerprints as uniform, a visited set of ``N``
states has expected number of colliding pairs ``N·(N-1)/2^65``
(birthday bound) — about ``1.6e-6`` at ``N = 10^7`` and ``0.016`` at
``N = 10^9``: far below one expected collision for every state space
this repo can enumerate, but *not zero*, which is why a collision
erases a state from the search (its successors are never expanded) and
a "verified" verdict from the fingerprint engine is probabilistic with
error probability bounded by the birthday term.  Tokens are 64-bit
too, so token collisions add an identically-bounded term over the
(much smaller) set of distinct state/value objects.  ``exact=True``
switches the visited set to the packed key vectors themselves — no
collisions, same exploration order, ~2-3x the memory — and the
differential suite runs both modes against the objects BFS
(tests/test_checker_statespace.py).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sim.rng import _mix_str, _splitmix64

_MASK64 = (1 << 64) - 1

#: Tags keeping differently-typed atoms with equal payloads apart
#: (``1`` vs ``True`` vs ``1.0`` vs ``"1"``).
_T_NONE = 0x9E97_0001
_T_TRUE = 0x9E97_0003
_T_FALSE = 0x9E97_0004
_T_INT = 0x9E97_0005
_T_FLOAT = 0x9E97_0006
_T_STR = 0x9E97_0007
_T_BYTES = 0x9E97_0008
_T_TUPLE = 0x9E97_0009
_T_FROZENSET = 0x9E97_000A
_T_DATACLASS = 0x9E97_000B
_T_OPAQUE = 0x9E97_000C


def _fold(acc: int, token: int) -> int:
    return _splitmix64(acc ^ (token & _MASK64))


def stable_token(obj: Hashable,
                 _memo: Optional[Dict[Hashable, int]] = None) -> int:
    """Deterministic structural 64-bit token of a state/value object.

    Covers the object vocabulary the paper protocols use for states and
    register values: ``None``, bools, ints, floats, strings, bytes,
    tuples, frozensets, and (possibly nested) frozen dataclasses.
    Frozensets fold order-free (XOR of member tokens) so iteration
    order — which *is* salted-hash order — cannot leak in.  Anything
    else falls back to ``class-qualname + repr``, which is stable for
    the repo's singletons (``BOTTOM``) and enums; objects whose repr
    embeds a memory address would silently fingerprint per-process, so
    the fallback requires a repr without ``0x`` addresses.
    """
    if _memo is not None:
        token = _memo.get(obj)
        if token is not None:
            return token
    token = _token_of(obj, _memo)
    if _memo is not None:
        _memo[obj] = token
    return token


def _token_of(obj: Hashable, memo: Optional[Dict[Hashable, int]]) -> int:
    if obj is None:
        return _splitmix64(_T_NONE)
    if obj is True:
        return _splitmix64(_T_TRUE)
    if obj is False:
        return _splitmix64(_T_FALSE)
    cls = type(obj)
    if cls is int:
        return _fold(_splitmix64(_T_INT), obj)
    if cls is float:
        # Exact bit pattern via the (sign, mantissa, exponent) triple;
        # integral floats hash like their repr, not their int value.
        return _fold(_mix_str(_splitmix64(_T_FLOAT), repr(obj)), 0)
    if cls is str:
        return _mix_str(_splitmix64(_T_STR), obj)
    if cls is bytes:
        acc = _splitmix64(_T_BYTES)
        for byte in obj:
            acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
        return _splitmix64(acc)
    if cls is tuple:
        acc = _fold(_splitmix64(_T_TUPLE), len(obj))
        for item in obj:
            acc = _fold(acc, stable_token(item, memo))
        return acc
    if cls is frozenset:
        acc = 0
        for item in obj:
            acc ^= stable_token(item, memo)
        return _fold(_fold(_splitmix64(_T_FROZENSET), len(obj)), acc)
    if dataclasses.is_dataclass(obj):
        acc = _mix_str(_splitmix64(_T_DATACLASS),
                       f"{cls.__module__}.{cls.__qualname__}")
        for field in dataclasses.fields(obj):
            acc = _fold(acc, stable_token(getattr(obj, field.name), memo))
        return acc
    rendered = repr(obj)
    if "0x" in rendered:
        raise TypeError(
            f"cannot build a stable fingerprint token for {cls.__name__} "
            f"(repr {rendered!r} embeds a memory address — implement it "
            f"as a frozen dataclass or give it a stable repr)")
    return _mix_str(_mix_str(_splitmix64(_T_OPAQUE),
                             f"{cls.__module__}.{cls.__qualname__}"),
                    rendered)


class ZobristTable:
    """Per-component Zobrist keys over one :class:`CompiledProtocol`.

    Keys are memoized per state id / ``(slot, vid)`` / pending triple
    for hot-loop speed, but their *values* depend only on content (see
    module docstring), so two tables over independently-interned
    ``CompiledProtocol`` instances of the same protocol agree.

    ``seed`` offsets the whole key family — exploring with two seeds
    and comparing visited counts is a cheap collision probe (a
    collision is seed-specific, the state space is not).
    """

    def __init__(self, compiled, seed: int = 0) -> None:
        self.compiled = compiled
        self.seed = seed
        self._root = _splitmix64(seed & _MASK64)
        self._token_memo: Dict[Hashable, int] = {}
        #: sid -> key for "processor state_pid[sid] is in state_obj[sid]".
        self.sid_key: List[int] = []
        #: slot -> {vid -> key} for "slot holds value vid".
        self.reg_key: List[Dict[int, int]] = [
            {} for _ in range(compiled.n_slots)]
        #: (writer, slot, vid) -> key for one pending weak-memory write.
        self.pend_key: Dict[Tuple[int, int, int], int] = {}
        self.sync()

    def sync(self) -> None:
        """Extend ``sid_key`` to cover newly-interned states."""
        cp = self.compiled
        sid_key = self.sid_key
        for sid in range(len(sid_key), cp.n_states):
            acc = _fold(_mix_str(self._root, "st"), cp.state_pid[sid])
            sid_key.append(
                _fold(acc, stable_token(cp.state_obj[sid],
                                        self._token_memo)))

    def reg(self, slot: int, vid: int) -> int:
        """Key of "slot ``slot`` holds the value interned as ``vid``"."""
        table = self.reg_key[slot]
        key = table.get(vid)
        if key is None:
            acc = _fold(_mix_str(self._root, "rg"), slot)
            key = table[vid] = _fold(
                acc, stable_token(self.compiled.values[vid],
                                  self._token_memo))
        return key

    def pend(self, writer: int, slot: int, vid: int) -> int:
        """Key of one pending write ``(writer, slot, value)``."""
        key = self.pend_key.get((writer, slot, vid))
        if key is None:
            acc = _fold(_fold(_mix_str(self._root, "pd"), writer), slot)
            key = self.pend_key[(writer, slot, vid)] = _fold(
                acc, stable_token(self.compiled.values[vid],
                                  self._token_memo))
        return key

    def fingerprint(self, sids: Sequence[int], regs: Sequence[int],
                    pend: Sequence[Tuple[int, int, int]] = ()) -> int:
        """Full (non-incremental) fingerprint of one packed configuration."""
        self.sync()
        fp = 0
        sid_key = self.sid_key
        for sid in sids:
            fp ^= sid_key[sid]
        for slot, vid in enumerate(regs):
            fp ^= self.reg(slot, vid)
        for writer, slot, vid in pend:
            fp ^= self.pend(writer, slot, vid)
        return fp

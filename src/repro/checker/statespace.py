"""The scalable state-space engine: fingerprinted table-IR BFS.

This is the checker's counterpart of the kernel's fast path: the same
reachable-configuration semantics as :func:`repro.checker.explorer.
explore`, executed over packed integer vectors instead of
:class:`~repro.sim.config.Configuration` objects.  A configuration is
``(state-ids, register-vids, pending-writes)`` — interned through one
:class:`~repro.ir.lower.CompiledProtocol` — and the visited set stores
64-bit Zobrist fingerprints (:mod:`repro.checker.fingerprint`), so one
BFS edge costs a couple of XORs and one set probe instead of tuple
hashing and object allocation.  Safety (consistency + nontriviality)
is checked inline on first visit, exactly as
:func:`~repro.checker.properties.verify_safety` checks it via
``on_node``.

What quantifies over what: the graph ranges over every scheduler
choice and every coin outcome, and — under ``regular``/``safe``
memory — every adversary read-value choice, by lowering the
per-value read-outcome cells of the compiled tables into the successor
expansion (the same fan-out as :func:`repro.checker.explorer.
_weak_successors`, in the same deterministic order).

Optional reductions (:mod:`repro.checker.reduction`):

* ``symmetry=True`` canonicalizes each configuration over the
  *machine-verified* automorphism group of the closed tables before
  fingerprinting.  Soundness is by construction; protocols whose step
  relation is asymmetric (sorted-pid peer reads) verify a trivial
  group and the report says so.
* ``por=True`` prunes commuting interleavings with sleep sets.  The
  variant used prunes edges only — the visited-state set is provably
  identical with the reduction on or off, which the differential suite
  asserts literally.  Auto-disabled (with a note) under weak memory,
  depth budgets, or combined with symmetry.

``workers > 1`` fans each BFS level across a process pool
(:mod:`repro.parallel.frontier`) and merges the shard results in shard
order; fingerprints are content-derived, so the merged visited set is
identical at any worker count.  See docs/CHECKER.md for the collision
math, the soundness arguments, and the determinism contract.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter as _perf_counter
from typing import (
    Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple,
)

from repro.checker.fingerprint import ZobristTable
from repro.checker.reduction import (
    PorFootprints,
    SymmetryGroup,
    candidate_permutations,
    discover_symmetry,
)
from repro.ir.lower import IRCompileError, compile_protocol
from repro.sim.config import Configuration
from repro.sim.memory import memory_spec
from repro.sim.process import Automaton

#: Default distinct-configuration budget — sized for the exhaustive
#: three_bounded cell (17.4M states), not for toy runs.
DEFAULT_MAX_STATES = 50_000_000

#: Below this level size the sharded path falls back to in-process
#: expansion — pickling a tiny level costs more than expanding it.
MIN_PARALLEL_LEVEL = 512


@dataclasses.dataclass
class ExploreReport:
    """Outcome of one fingerprinted exploration.

    ``exhausted`` is the load-bearing bit: ``True`` means the *entire*
    reachable space was enumerated and the inline safety verdict
    (``ok``) covers it; ``False`` means a budget (``truncated_by``:
    ``"depth"``/``"states"``) or an early violation stop cut the search
    short, and ``ok`` only covers what was visited.  ``fingerprints``
    is populated on request (``keep_fingerprints=True``) for
    differential suites; ``fingerprint_of`` maps an object-level
    :class:`Configuration` through the same canonicalization and
    fingerprint function the search used.
    """

    protocol: str
    inputs: Tuple[Hashable, ...]
    memory: str
    visited: int
    edges: int
    depth: int
    exhausted: bool
    truncated_by: Optional[str]
    seconds: float
    states_per_sec: float
    ok: bool
    violation: Optional[str]
    witness: Optional[Configuration]
    exact: bool
    symmetry_order: int
    symmetry_note: Optional[str]
    por: bool
    por_note: Optional[str]
    pruned: int
    workers: int
    frontier: int
    fingerprints: Optional[frozenset] = None
    fingerprint_of: Optional[Callable[[Configuration], Any]] = \
        dataclasses.field(default=None, repr=False, compare=False)

    def guarantee(self) -> str:
        """Human-readable statement of what was proven (cf. SafetyReport)."""
        if not self.ok:
            return f"VIOLATION: {self.violation}"
        scope = (
            "the full reachable configuration space"
            if self.exhausted
            else f"all runs up to depth {self.depth} "
                 f"({self.visited} configurations)"
        )
        return f"safety (consistency + nontriviality) holds over {scope}"


def _orbit_input_sets(protocol: Automaton,
                      inputs: Tuple[Hashable, ...]) -> List[Tuple]:
    """The input assignments symmetry canonicalization can reach.

    A verified permutation ``π`` maps the root of assignment ``v`` to
    the root of ``v ∘ π⁻¹`` (processor ``π(p)`` holds ``v[p]``), so the
    closed tables must cover the whole candidate orbit for the
    automorphism check to have a universe to quantify over.
    """
    n = protocol.n_processes
    orbit = {inputs}
    for perm in candidate_permutations(protocol) or []:
        image: List[Hashable] = [None] * n
        for p in range(n):
            image[perm[p]] = inputs[p]
        orbit.add(tuple(image))
    return sorted(orbit, key=repr)


class StateSpaceEngine:
    """Compiled tables + reductions + fingerprints for one exploration.

    Shared by the serial loop and the frontier workers (each worker
    rebuilds an identical engine from the picklable task spec); all the
    cross-process determinism lives in the content-derived fingerprints
    and the canonical reduction tables, so engines built independently
    agree edge-for-edge.
    """

    def __init__(self, protocol: Automaton, inputs: Sequence[Hashable],
                 memory=None, *, exact: bool = False,
                 symmetry: bool = False, por: bool = False,
                 fingerprint_seed: int = 0) -> None:
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.spec = memory_spec(memory)
        self.weak = not self.spec.atomic
        self.safe_mem = self.spec.name == "safe"
        self.exact = exact
        self.fingerprint_seed = fingerprint_seed
        self.symmetry_note: Optional[str] = None
        self.por_note: Optional[str] = None
        self.group: Optional[SymmetryGroup] = None
        self.symmetry_order = 1

        use_por = por
        if por and symmetry:
            use_por = False
            self.por_note = ("disabled: combined with symmetry "
                             "(canonicalization relabels the pid-indexed "
                             "sleep masks; docs/CHECKER.md §4)")
        if use_por and self.weak:
            use_por = False
            self.por_note = ("disabled: weak memory (pending-write "
                             "commits make step independence "
                             "configuration-dependent; docs/CHECKER.md §4)")
        self.por = use_por

        cp = None
        if symmetry:
            try:
                cp = compile_protocol(
                    protocol, _orbit_input_sets(protocol, self.inputs),
                    strict=False, closed=True)
            except IRCompileError as exc:
                self.symmetry_note = (
                    f"disabled: closed compilation refused ({exc})")
                cp = None
            else:
                group = discover_symmetry(cp, protocol)
                self.symmetry_note = group.note
                self.symmetry_order = group.order
                if group.perms:
                    self.group = group
        if cp is None:
            cp = compile_protocol(protocol, [self.inputs], strict=False)
        self.cp = cp
        self.zob = None if exact else ZobristTable(cp, fingerprint_seed)
        self.foot = PorFootprints(cp) if self.por else None
        self.input_vids = frozenset(
            cp.intern_value(v) for v in self.inputs)

    # -- packing -------------------------------------------------------

    def root_item(self) -> Tuple:
        """The (canonical) packed root: ``(sids, regs, pend, key, mask)``."""
        sids = tuple(self.cp.initial_sids(self.inputs))
        regs = tuple(self.cp.init_regs)
        pend: Tuple = ()
        if self.group is not None:
            sids, regs, pend = self.group.canonical(sids, regs, pend)
        return (sids, regs, pend, self.key_of(sids, regs, pend), 0)

    def key_of(self, sids, regs, pend) -> Any:
        """Visited-set key: the packed vectors (exact) or their fingerprint."""
        if self.exact:
            return (sids, regs, pend)
        return self.zob.fingerprint(sids, regs, pend)

    def fingerprint_configuration(self, config: Configuration) -> Any:
        """Map an object-level configuration through the engine's lens.

        Encodes, canonicalizes (when symmetry is active) and keys the
        configuration exactly as the search would have — the
        differential suites compare ``{fingerprint_configuration(c)}``
        over an objects-BFS graph with the engine's visited set.
        """
        sids, regs, pend = self.cp.encode_configuration(config)
        if self.group is not None:
            sids, regs, pend = self.group.canonical(sids, regs, pend)
        return self.key_of(sids, regs, pend)

    def decode_item(self, item: Tuple) -> Tuple:
        """Packed item -> picklable ``(states, reg-values, mem, mask)``."""
        sids, regs, pend, _, mask = item
        cp = self.cp
        return (tuple(cp.state_obj[s] for s in sids),
                tuple(cp.values[v] for v in regs),
                tuple((w, s, cp.values[v]) for w, s, v in pend),
                mask)

    def encode_item(self, decoded: Tuple) -> Tuple:
        """Picklable decoded tuple -> packed item (interning on demand)."""
        states, reg_values, mem, mask = decoded
        cp = self.cp
        sids = tuple(cp.intern_state(pid, st)
                     for pid, st in enumerate(states))
        regs = tuple(cp.intern_value(v) for v in reg_values)
        pend = tuple((w, s, cp.intern_value(v)) for w, s, v in mem)
        return (sids, regs, pend, self.key_of(sids, regs, pend), mask)

    def witness_of(self, sids, regs, pend) -> Configuration:
        return self.cp.decode_configuration(sids, regs, pend)

    def has_enabled(self, item: Tuple) -> bool:
        """Does any processor still have a step (frontier liveness)?"""
        cp = self.cp
        for sid in item[0]:
            if cp.state_nb[sid] < 0:
                cp.ensure_compiled(sid)
            if cp.state_nb[sid] != 0:
                return True
        return False

    # -- safety --------------------------------------------------------

    def check_state(self, sids: Tuple[int, ...], depth: int) \
            -> Optional[str]:
        """Inline safety check; returns the violation message, if any."""
        cp = self.cp
        state_out = cp.state_out
        decided = {pid: state_out[sid] for pid, sid in enumerate(sids)
                   if state_out[sid] >= 0}
        if not decided:
            return None
        values = set(decided.values())
        rendered = {pid: cp.values[vid] for pid, vid in decided.items()}
        if len(values) > 1:
            return f"consistency: decisions {rendered!r} at depth {depth}"
        if any(vid not in self.input_vids for vid in values):
            inputs = sorted(map(repr, set(self.inputs)))
            return (f"nontriviality: decisions {rendered!r} outside "
                    f"inputs {inputs} at depth {depth}")
        return None

    # -- expansion -----------------------------------------------------

    def expand_level(self, items: Sequence[Tuple], visited,
                     next_items: List[Tuple], depth: int,
                     max_states: Optional[int]) -> Tuple:
        """Expand one BFS level against ``visited``, appending new items.

        ``visited`` is a set of keys (no POR) or a ``{key: sleep-mask}``
        dict (POR); ``max_states`` of ``None`` means unbounded (the
        worker path — budgets are enforced by the parent merge).
        Returns ``(edges, pruned, violations, stopped_at)`` where
        ``stopped_at`` is the index of the first unexpanded item when
        the state budget tripped mid-level (else ``None``) and
        ``violations`` holds decoded ``(message, states, regs, mem)``
        records (first one wins upstream).
        """
        cp = self.cp
        state_nb = cp.state_nb
        state_base = cp.state_base
        state_out = cp.state_out
        br_is_read = cp.br_is_read
        br_slot = cp.br_slot
        br_write = cp.br_write
        br_write_next = cp.br_write_next
        br_read_out = cp.br_read_out
        ensure = cp.ensure_compiled
        read_outcome = cp.read_outcome
        init_regs = cp.init_regs
        n = cp.n_processes
        ndepth = depth + 1

        exact = self.exact
        weak = self.weak
        safe_mem = self.safe_mem
        por = self.por
        group = self.group
        zob = self.zob
        if zob is not None:
            zob.sync()
            sid_key = zob.sid_key
            reg_rows = zob.reg_key
            reg_key = zob.reg
        indep = self.foot.independent if por else None
        input_vids = self.input_vids
        fast = not weak and group is None and not exact

        visited_get = visited.get if por else None
        append = next_items.append
        edges = 0
        pruned = 0
        violations: List[Tuple] = []

        for idx, item in enumerate(items):
            sids, regs, pend, fp, mask = item
            explored = 0
            for pid in range(n):
                sid = sids[pid]
                nb = state_nb[sid]
                if nb < 0:
                    ensure(sid)
                    if zob is not None:
                        zob.sync()
                    nb = state_nb[sid]
                if nb == 0:
                    continue
                if por and mask >> pid & 1:
                    pruned += 1
                    continue

                if por:
                    # Sleep mask every successor via this pid inherits:
                    # asleep-or-earlier pids whose current step is
                    # independent of pid's.
                    nmask = 0
                    cand = mask | explored
                    q = 0
                    c = cand
                    while c:
                        if c & 1 and indep(sids[q], sid):
                            nmask |= 1 << q
                        c >>= 1
                        q += 1
                    explored |= 1 << pid
                else:
                    nmask = 0

                if weak:
                    # Commit pid's pending write first (on_activate).
                    base_regs = regs
                    base_pend = pend
                    for i, entry in enumerate(pend):
                        if entry[0] == pid:
                            slot_c, vid_c = entry[1], entry[2]
                            base_regs = regs[:slot_c] + (vid_c,) \
                                + regs[slot_c + 1:]
                            base_pend = pend[:i] + pend[i + 1:]
                            break
                else:
                    base_regs = regs
                    base_pend = pend

                base = state_base[sid]
                if fast:
                    sk = sid_key[sid]
                for b in range(base, base + nb):
                    if br_is_read[b]:
                        slot = br_slot[b]
                        if weak:
                            # Adversary read fan-out: committed value
                            # first, then pending values in writer
                            # order (deduplicated), then — safe only,
                            # under contention — the initial value.
                            choice_vids = [base_regs[slot]]
                            contended = False
                            for w_, s_, v_ in base_pend:
                                if s_ == slot:
                                    contended = True
                                    if v_ not in choice_vids:
                                        choice_vids.append(v_)
                            if safe_mem and contended:
                                garbage = init_regs[slot]
                                if garbage not in choice_vids:
                                    choice_vids.append(garbage)
                        else:
                            choice_vids = (base_regs[slot],)
                        for vid in choice_vids:
                            nsid = br_read_out[b].get(vid)
                            if nsid is None:
                                nsid = read_outcome(b, vid)
                                if zob is not None:
                                    zob.sync()
                            edges += 1
                            if fast:
                                nfp = fp ^ sk ^ sid_key[nsid]
                                if por:
                                    old = visited_get(nfp)
                                    if old is None:
                                        if max_states is not None and \
                                                len(visited) >= max_states:
                                            return (edges, pruned,
                                                    violations, idx)
                                        visited[nfp] = nmask
                                    elif old & nmask != old:
                                        nmask_m = old & nmask
                                        visited[nfp] = nmask_m
                                        append((
                                            sids[:pid] + (nsid,)
                                            + sids[pid + 1:],
                                            regs, pend, nfp, nmask_m))
                                        continue
                                    else:
                                        continue
                                else:
                                    if nfp in visited:
                                        continue
                                    if max_states is not None and \
                                            len(visited) >= max_states:
                                        return (edges, pruned,
                                                violations, idx)
                                    visited.add(nfp)
                                nsids = sids[:pid] + (nsid,) \
                                    + sids[pid + 1:]
                                if state_out[nsid] >= 0:
                                    msg = self.check_state(nsids, ndepth)
                                    if msg is not None:
                                        violations.append(
                                            self._violation(
                                                msg, nsids, regs, pend))
                                        return (edges, pruned,
                                                violations, idx)
                                append((nsids, regs, pend, nfp, nmask))
                            else:
                                nsids = sids[:pid] + (nsid,) \
                                    + sids[pid + 1:]
                                stop = self._add_generic(
                                    nsids, base_regs, base_pend, nmask,
                                    visited, append, ndepth, violations,
                                    max_states)
                                if stop:
                                    return (edges, pruned,
                                            violations, idx)
                    else:
                        slot = br_slot[b]
                        nsid = br_write_next[b]
                        wvid = br_write[b]
                        edges += 1
                        if fast:
                            old_vid = regs[slot]
                            row = reg_rows[slot]
                            ko = row.get(old_vid)
                            if ko is None:
                                ko = reg_key(slot, old_vid)
                            kn = row.get(wvid)
                            if kn is None:
                                kn = reg_key(slot, wvid)
                            nfp = fp ^ sk ^ sid_key[nsid] ^ ko ^ kn
                            if por:
                                old = visited_get(nfp)
                                if old is None:
                                    if max_states is not None and \
                                            len(visited) >= max_states:
                                        return (edges, pruned,
                                                violations, idx)
                                    visited[nfp] = nmask
                                elif old & nmask != old:
                                    nmask_m = old & nmask
                                    visited[nfp] = nmask_m
                                    append((
                                        sids[:pid] + (nsid,)
                                        + sids[pid + 1:],
                                        regs[:slot] + (wvid,)
                                        + regs[slot + 1:],
                                        pend, nfp, nmask_m))
                                    continue
                                else:
                                    continue
                            else:
                                if nfp in visited:
                                    continue
                                if max_states is not None and \
                                        len(visited) >= max_states:
                                    return edges, pruned, violations, idx
                                visited.add(nfp)
                            nsids = sids[:pid] + (nsid,) + sids[pid + 1:]
                            nregs = regs[:slot] + (wvid,) \
                                + regs[slot + 1:]
                            if state_out[nsid] >= 0:
                                msg = self.check_state(nsids, ndepth)
                                if msg is not None:
                                    violations.append(self._violation(
                                        msg, nsids, nregs, pend))
                                    return edges, pruned, violations, idx
                            append((nsids, nregs, pend, nfp, nmask))
                        else:
                            nsids = sids[:pid] + (nsid,) + sids[pid + 1:]
                            if weak:
                                # The write is pending, not committed.
                                npend = tuple(sorted(
                                    base_pend + ((pid, slot, wvid),)))
                                nregs = base_regs
                            else:
                                npend = base_pend
                                nregs = base_regs[:slot] + (wvid,) \
                                    + base_regs[slot + 1:]
                            stop = self._add_generic(
                                nsids, nregs, npend, nmask,
                                visited, append, ndepth, violations,
                                max_states)
                            if stop:
                                return edges, pruned, violations, idx
        return edges, pruned, violations, None

    def _add_generic(self, nsids, nregs, npend, nmask, visited, append,
                     ndepth, violations, max_states) -> bool:
        """Slow-path add: canonicalize, key, dedup, check.  True = stop
        (either a violation was recorded or the state budget refused the
        addition — the caller's ``violations`` list disambiguates)."""
        if self.group is not None:
            nsids, nregs, npend = self.group.canonical(nsids, nregs, npend)
        key = self.key_of(nsids, nregs, npend)
        if self.por:
            old = visited.get(key)
            if old is None:
                if max_states is not None and len(visited) >= max_states:
                    return True
                visited[key] = nmask
            elif old & nmask != old:
                merged = old & nmask
                visited[key] = merged
                append((nsids, nregs, npend, key, merged))
                return False
            else:
                return False
        else:
            if key in visited:
                return False
            if max_states is not None and len(visited) >= max_states:
                return True
            visited.add(key)
        msg = self.check_state(nsids, ndepth)
        if msg is not None:
            violations.append(self._violation(msg, nsids, nregs, npend))
            return True
        append((nsids, nregs, npend, key, nmask))
        return False

    def _violation(self, msg, sids, regs, pend) -> Tuple:
        """Decode a violation record for transport/reporting."""
        cp = self.cp
        return (msg,
                tuple(cp.state_obj[s] for s in sids),
                tuple(cp.values[v] for v in regs),
                tuple((w, s, cp.values[v]) for w, s, v in pend))


def explore_fast(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    *,
    memory=None,
    max_depth: Optional[int] = None,
    max_states: int = DEFAULT_MAX_STATES,
    exact: bool = False,
    symmetry: bool = False,
    por: bool = False,
    workers: int = 1,
    protocol_factory: Optional[Callable[[], Automaton]] = None,
    fingerprint_seed: int = 0,
    keep_fingerprints: bool = False,
    heartbeat_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    heartbeat_every: int = 200_000,
    telemetry_path: Optional[str] = None,
    spill_dir: Optional[str] = None,
    tracer=None,
) -> ExploreReport:
    """Level-synchronous fingerprinted BFS with inline safety checking.

    The scalable counterpart of :func:`repro.checker.explorer.explore`
    — same reachable set, same quantification, ~10-20x the visited
    states/sec (benchmarks/test_bench_checker.py) — that returns a
    summary :class:`ExploreReport` instead of materializing the graph.

    Parameters beyond the explorer's: ``exact`` stores packed vectors
    instead of fingerprints (no collision risk, more memory);
    ``symmetry``/``por`` enable the verified reductions; ``workers``
    fans levels across a process pool; ``heartbeat_sink``/
    ``telemetry_path`` stream :class:`~repro.obs.telemetry.Heartbeat`
    progress pulses (visited, states/sec, depth, frontier — ``repro
    top`` renders them); ``spill_dir`` spools sharded level payloads
    through files instead of pipes; ``tracer`` records the whole
    search as one ``checker.explore`` span with ``visited``/
    ``frontier`` attributes.
    """
    t0 = _perf_counter()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    engine = StateSpaceEngine(
        protocol, inputs, memory, exact=exact, symmetry=symmetry,
        por=por, fingerprint_seed=fingerprint_seed)
    if engine.por and max_depth is not None:
        engine.por = False
        engine.foot = None
        engine.por_note = ("disabled: depth budget (a pruned "
                           "interleaving's commuted path may cross the "
                           "horizon; docs/CHECKER.md §4)")

    telemetry_fh = None
    sinks: List[Callable[[Dict[str, Any]], None]] = []
    if heartbeat_sink is not None:
        sinks.append(heartbeat_sink)
    if telemetry_path is not None:
        from repro.obs.telemetry import file_sink

        telemetry_fh = open(telemetry_path, "w")
        sinks.append(file_sink(telemetry_fh))

    pool_runner = None
    try:
        root = engine.root_item()
        visited: Any = {root[3]: 0} if engine.por else {root[3]}
        level: List[Tuple] = [root]
        depth = 0
        max_level = 0
        edges = 0
        pruned = 0
        frontier_items: List[Tuple] = []
        truncated_by: Optional[str] = None
        violation_rec: Optional[Tuple] = None
        last_beat = 0

        def emit(done: bool, frontier_size: int) -> None:
            nonlocal last_beat
            if not sinks:
                return
            from repro.obs.telemetry import Heartbeat

            elapsed = max(_perf_counter() - t0, 1e-9)
            count = len(visited)
            beat = Heartbeat(
                shard=0, runs_done=count, runs_total=max_states,
                steps=count, elapsed_s=elapsed,
                steps_per_s=count / elapsed, eta_s=None, done=done,
                tail={"p50": None, "p90": None, "p99": None,
                      "max": None, "new": count - last_beat,
                      "depth": max_level, "frontier": frontier_size},
            )
            last_beat = count
            payload = beat.to_dict()
            for sink in sinks:
                sink(payload)

        root_msg = engine.check_state(root[0], 0)
        if root_msg is not None:
            violation_rec = engine._violation(root_msg, *root[:3])
            level = []

        while level and violation_rec is None:
            if max_depth is not None and depth >= max_depth:
                frontier_items = level
                truncated_by = "depth"
                break
            next_items: List[Tuple] = []
            if workers > 1 and len(level) >= max(
                    MIN_PARALLEL_LEVEL, workers):
                from repro.parallel import frontier as frontier_mod

                if pool_runner is None:
                    pool_runner = frontier_mod.FrontierPool(
                        engine, workers, spill_dir=spill_dir,
                        protocol_factory=protocol_factory)
                lv_edges, lv_pruned, viols, stopped = \
                    pool_runner.expand_level(
                        level, visited, next_items, depth, max_states)
            else:
                lv_edges, lv_pruned, viols, stopped = engine.expand_level(
                    level, visited, next_items, depth, max_states)
            edges += lv_edges
            pruned += lv_pruned
            if viols:
                violation_rec = viols[0]
                frontier_items = next_items
                break
            if stopped is not None:
                truncated_by = "states"
                frontier_items = level[stopped:] + next_items
                break
            depth += 1
            if next_items:
                max_level = depth
            level = next_items
            if len(visited) - last_beat >= heartbeat_every or not level:
                emit(False, len(level))

        if violation_rec is None and truncated_by is None:
            frontier_items = []
        exhausted = False
        if violation_rec is None:
            if truncated_by == "depth":
                exhausted = not any(
                    engine.has_enabled(item) for item in frontier_items)
                if exhausted:
                    truncated_by = None
            else:
                exhausted = truncated_by is None

        seconds = _perf_counter() - t0
        witness = None
        violation_msg = None
        if violation_rec is not None:
            violation_msg = violation_rec[0]
            witness = Configuration(
                states=violation_rec[1], registers=violation_rec[2],
                mem=violation_rec[3] or None)
        emit(True, len(frontier_items))

        if tracer is not None:
            tracer.record_explore(
                protocol_name=getattr(protocol, "name",
                                      type(protocol).__name__),
                n_configs=len(visited),
                n_edges=edges,
                depth=max_level,
                complete=exhausted,
                seconds=seconds,
                n_frontier=len(frontier_items),
            )

        report = ExploreReport(
            protocol=getattr(protocol, "name", type(protocol).__name__),
            inputs=tuple(inputs),
            memory=engine.spec.name,
            visited=len(visited),
            edges=edges,
            depth=max_level,
            exhausted=exhausted,
            truncated_by=("violation" if violation_rec is not None
                          else truncated_by),
            seconds=seconds,
            states_per_sec=len(visited) / max(seconds, 1e-9),
            ok=violation_rec is None,
            violation=violation_msg,
            witness=witness,
            exact=exact,
            symmetry_order=engine.symmetry_order,
            symmetry_note=engine.symmetry_note,
            por=engine.por,
            por_note=engine.por_note,
            pruned=pruned,
            workers=workers,
            frontier=len(frontier_items),
            fingerprints=(frozenset(visited) if keep_fingerprints
                          else None),
            fingerprint_of=engine.fingerprint_configuration,
        )
        return report
    finally:
        if pool_runner is not None:
            pool_runner.close()
        if telemetry_fh is not None:
            telemetry_fh.close()

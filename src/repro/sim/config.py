"""System configurations: the global states of Section 2.

A configuration consists of the state of each processor together with
the contents of the shared registers.  Configurations are immutable and
hashable, which is what allows both the adaptive adversary (a mapping
from configurations to processors) and the exhaustive model checker to
work directly on them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.errors import AccessViolation
from repro.sim.process import Automaton, RegisterSpec


class RegisterLayout:
    """Immutable mapping between register names and value-tuple slots.

    Shared by every configuration of a run (and every node of a model-
    checking graph), so individual configurations only carry a compact
    tuple of values.
    """

    def __init__(self, specs: Sequence[RegisterSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate register names in {names}")
        self._specs: Tuple[RegisterSpec, ...] = tuple(specs)
        self._index: Dict[str, int] = {spec.name: i for i, spec in enumerate(specs)}

    @classmethod
    def for_protocol(cls, protocol: Automaton) -> "RegisterLayout":
        return cls(protocol.registers())

    @property
    def specs(self) -> Tuple[RegisterSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def initial_values(self) -> Tuple[Hashable, ...]:
        """The register contents of an initial configuration."""
        return tuple(spec.initial for spec in self._specs)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise AccessViolation(f"unknown register {name!r}") from None

    def spec_of(self, name: str) -> RegisterSpec:
        return self._specs[self.index_of(name)]

    def check_read(self, pid: int, name: str) -> int:
        """Validate that ``pid`` may read ``name``; return its slot index."""
        idx = self.index_of(name)
        spec = self._specs[idx]
        if pid not in spec.readers:
            raise AccessViolation(
                f"processor {pid} may not read register {name!r} "
                f"(readers: {spec.readers})"
            )
        return idx

    def check_write(self, pid: int, name: str) -> int:
        """Validate that ``pid`` may write ``name``; return its slot index."""
        idx = self.index_of(name)
        spec = self._specs[idx]
        if pid not in spec.writers:
            raise AccessViolation(
                f"processor {pid} may not write register {name!r} "
                f"(writers: {spec.writers})"
            )
        return idx


@dataclasses.dataclass(frozen=True)
class Configuration:
    """An immutable global snapshot: processor states + register values.

    ``states[i]`` is processor i's automaton state; ``registers[j]`` is
    the *committed* content of the register in slot j of the associated
    :class:`RegisterLayout` (the layout itself is not stored here to
    keep configurations small and trivially hashable).

    ``mem`` carries the memory model's extra state beyond the committed
    values — the pending-write snapshot of a weak
    :class:`~repro.sim.memory.MemoryModel` (see its ``snapshot``
    method).  It is ``None`` under atomic semantics *and* in quiescent
    weak-memory configurations, so configurations produced before the
    memory-semantics layer existed compare equal to today's atomic
    ones.
    """

    states: Tuple[Hashable, ...]
    registers: Tuple[Hashable, ...]
    mem: Optional[Hashable] = None

    @classmethod
    def initial(cls, protocol: Automaton, layout: RegisterLayout,
                inputs: Sequence[Hashable]) -> "Configuration":
        """Build the initial configuration for the given input assignment."""
        if len(inputs) != protocol.n_processes:
            raise ValueError(
                f"expected {protocol.n_processes} inputs, got {len(inputs)}"
            )
        states = tuple(
            protocol.initial_state(pid, value) for pid, value in enumerate(inputs)
        )
        return cls(states=states, registers=layout.initial_values())

    def with_state(self, pid: int, state: Hashable) -> "Configuration":
        """Copy of this configuration with processor ``pid``'s state replaced."""
        states = self.states[:pid] + (state,) + self.states[pid + 1:]
        return Configuration(states=states, registers=self.registers,
                             mem=self.mem)

    def with_register(self, idx: int, value: Hashable) -> "Configuration":
        """Copy of this configuration with register slot ``idx`` replaced."""
        regs = self.registers[:idx] + (value,) + self.registers[idx + 1:]
        return Configuration(states=self.states, registers=regs,
                             mem=self.mem)

    def decisions(self, protocol: Automaton) -> Dict[int, Hashable]:
        """Map of pid -> decided value for processors in decision states."""
        out = {}
        for pid, state in enumerate(self.states):
            value = protocol.output(pid, state)
            if value is not None:
                out[pid] = value
        return out

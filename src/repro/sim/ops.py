"""Step vocabulary of the asynchronous machine.

The paper's model (Section 2) allows a processor exactly one kind of
activity per step: a single input/output operation on a shared register,
followed by an internal state transition.  We therefore need only two
operation types, :class:`ReadOp` and :class:`WriteOp`.

Decisions are *not* operations: in the paper a processor decides by
writing its internal output register, which is part of the state
transition, not a shared-memory access.  The automaton interface exposes
decisions through :meth:`repro.sim.process.Automaton.output` instead.

Coin flips are likewise internal: a probabilistic transition function
offers several *branches* for the next step, and the kernel samples one
at activation time.  This is what keeps the adaptive adversary from
seeing coin outcomes before the corresponding step executes — exactly
the knowledge model the paper's termination proofs rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Union


class _Bottom:
    """The distinguished default value ⊥ (not a member of any input set V).

    A singleton: all registers and output registers start at ⊥.  It
    compares equal only to itself and hashes consistently, so it can live
    inside hashable configurations.

    Identity must survive process boundaries: weak-memory legal-value
    sets carry ⊥ through pickled ``BatchSpec`` shards and spawn workers,
    and protocol code compares with ``is``.  ``__reduce__`` therefore
    pickles *by reference* to the module-level ``BOTTOM`` name (the
    string form of ``__reduce__``), so unpickling — and ``copy`` /
    ``deepcopy`` — resolve to the importing process's singleton instead
    of constructing a fresh object.
    """

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self) -> str:
        return "BOTTOM"


#: The module-level ⊥ singleton used throughout the library.
BOTTOM = _Bottom()


@dataclasses.dataclass(frozen=True)
class ReadOp:
    """Read the shared register named ``register``.

    The value read is delivered to the automaton through
    :meth:`repro.sim.process.Automaton.observe`.
    """

    register: str

    @property
    def kind(self) -> str:
        return "read"

    def __repr__(self) -> str:
        return f"read({self.register})"


@dataclasses.dataclass(frozen=True)
class WriteOp:
    """Write ``value`` into the shared register named ``register``.

    ``value`` must be hashable so configurations stay hashable (the model
    checker relies on this).
    """

    register: str
    value: Hashable

    @property
    def kind(self) -> str:
        return "write"

    def __repr__(self) -> str:
        return f"write({self.register} ← {self.value!r})"


#: Union type of the two step operations (for annotations).
Op = Union[ReadOp, WriteOp]

#: Tuple of the concrete operation classes (for ``isinstance`` checks).
OP_TYPES = (ReadOp, WriteOp)

"""The processor-automaton formalism (Section 2 of the paper).

A processor is a (not necessarily finite) state automaton.  Each step is
a single register operation followed by a state transition; transition
functions may be deterministic or probabilistic.  We capture this with
three methods:

* :meth:`Automaton.initial_state` — the state ``I_P`` with the input
  value loaded into the internal input register,
* :meth:`Automaton.branches` — the probability distribution over the
  *next operation* from a state (a deterministic protocol returns a
  single branch of probability 1),
* :meth:`Automaton.observe` — the deterministic state transition applied
  once the operation has executed (for reads, it receives the value
  read).

Decisions are exposed by :meth:`Automaton.output`: a state whose output
is not ⊥ is a decision state, and the paper requires the output register
to be written at most once — the kernel enforces that a decided
processor halts.

This explicit formalism (instead of, say, coroutines) buys three things:

1. configurations ``(states, registers)`` are hashable, which makes
   exhaustive model checking possible (:mod:`repro.checker`),
2. the adaptive adversary can inspect full processor states without any
   reflection tricks, matching the paper's strongest scheduler,
3. coin flips are sampled at activation time, so the adversary provably
   cannot see them in advance.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.sim.ops import Op


@dataclasses.dataclass(frozen=True)
class Branch:
    """One probabilistic alternative for a processor's next step.

    ``probability`` is the chance this alternative is taken; the branches
    returned by :meth:`Automaton.branches` must have probabilities
    summing to 1 (within floating-point tolerance).
    """

    probability: float
    op: Op

    def __repr__(self) -> str:
        return f"Branch(p={self.probability:g}, {self.op!r})"


@dataclasses.dataclass(frozen=True)
class RegisterSpec:
    """Declaration of one shared register.

    ``writers`` and ``readers`` are tuples of processor ids entitled to
    write/read (Section 2 associates W_r and R_r with every register).
    ``initial`` is the starting content, ⊥ unless stated otherwise.

    The paper's headline protocols use the most restricted class —
    single-writer registers — so most specs here have ``len(writers)
    == 1``; the kernel nevertheless supports arbitrary sets.
    """

    name: str
    writers: Tuple[int, ...]
    readers: Tuple[int, ...]
    initial: Hashable

    def __post_init__(self) -> None:
        if not self.writers:
            raise ValueError(f"register {self.name!r} has no writers")
        if not self.readers:
            raise ValueError(f"register {self.name!r} has no readers")


class Automaton(abc.ABC):
    """A protocol for ``n_processes`` processors, one automaton per processor.

    Subclasses implement the four abstract methods below.  All states
    must be hashable and should be cheap to compare; frozen dataclasses
    or plain tuples work well.

    The same object describes every processor (the paper's protocols are
    symmetric up to register naming); asymmetric protocols simply branch
    on ``pid`` inside the methods.
    """

    #: Number of processors in the system; subclasses must set this.
    n_processes: int = 0

    @abc.abstractmethod
    def registers(self) -> Sequence[RegisterSpec]:
        """Declare the shared registers this protocol uses."""

    @abc.abstractmethod
    def initial_state(self, pid: int, input_value: Hashable) -> Hashable:
        """Return processor ``pid``'s initial state with the given input."""

    @abc.abstractmethod
    def branches(self, pid: int, state: Hashable) -> Sequence[Branch]:
        """Return the distribution over processor ``pid``'s next operation.

        Must return at least one branch unless the state is a decision
        state (in which case the processor has halted and is never
        scheduled again).
        """

    @abc.abstractmethod
    def observe(self, pid: int, state: Hashable, op: Op,
                result: Hashable) -> Hashable:
        """Apply the state transition after ``op`` executed.

        For a read, ``result`` is the value read; for a write it is
        ``None``.  Must be deterministic: all randomness lives in
        :meth:`branches`.
        """

    @abc.abstractmethod
    def output(self, pid: int, state: Hashable) -> Optional[Hashable]:
        """Return the decided value in ``state``, or ``None`` if undecided."""

    # ------------------------------------------------------------------
    # Conveniences with sensible defaults.
    # ------------------------------------------------------------------

    def describe_state(self, pid: int, state: Hashable) -> str:
        """Human-readable rendering of a state, used in traces and demos."""
        return repr(state)

    def symmetry_candidates(self) -> Optional[Sequence[Sequence[int]]]:
        """Processor permutations worth testing for symmetry reduction.

        The checker's symmetry reduction (:mod:`repro.checker.
        reduction`) never *trusts* a candidate — each one is verified
        against the protocol's compiled step tables and admitted only
        with a machine-checked automorphism certificate — so this hook
        is purely a search-space hint.  Return ``None`` (the default)
        to let the checker enumerate all permutations for small widths;
        return an explicit (possibly empty) list to narrow or disable
        the search for protocols known to be asymmetric.
        """
        return None

    @property
    def name(self) -> str:
        """Protocol name used in reports."""
        return type(self).__name__

    def validate_branches(self, branches: Sequence[Branch]) -> None:
        """Check that a branch list is a probability distribution.

        Called by the kernel in strict mode; protocols may also call it
        from their own tests.
        """
        from repro.errors import ProtocolError

        if not branches:
            raise ProtocolError(f"{self.name}: empty branch list")
        total = sum(b.probability for b in branches)
        if abs(total - 1.0) > 1e-9:
            raise ProtocolError(
                f"{self.name}: branch probabilities sum to {total}, not 1"
            )
        for branch in branches:
            if branch.probability < 0:
                raise ProtocolError(
                    f"{self.name}: negative branch probability {branch}"
                )


def deterministic(op: Op) -> Tuple[Branch]:
    """Helper: the single-branch distribution taking ``op`` surely."""
    return (Branch(1.0, op),)


def fair_coin(heads_op: Op, tails_op: Op) -> Tuple[Branch, Branch]:
    """Helper: an unbiased coin between two operations.

    This is the exact shape used by the paper's protocols — e.g. the
    two-processor protocol's line (2): heads rewrites the old preference,
    tails adopts the other processor's value.
    """
    return (Branch(0.5, heads_op), Branch(0.5, tails_op))


def biased_coin(p_heads: float, heads_op: Op, tails_op: Op) -> Tuple[Branch, Branch]:
    """Helper: a biased coin, used by ablation experiments."""
    if not 0.0 < p_heads < 1.0:
        raise ValueError("p_heads must be strictly between 0 and 1")
    return (Branch(p_heads, heads_op), Branch(1.0 - p_heads, tails_op))

"""Memoized automaton transitions: the kernel's fast-path lookup tables.

The simulation kernel executes the same small set of automaton states
over and over — a protocol's reachable ``(pid, state)`` pairs number in
the dozens while a Monte-Carlo batch takes millions of steps.  The seed
kernel nevertheless re-derived everything from scratch on every step:
``protocol.branches()`` rebuilt the branch tuple (allocating fresh op
objects), ``validate_branches`` re-checked the same distribution,
``layout.check_read``/``check_write`` re-resolved the same register
slots, and ``protocol.observe``/``output`` re-computed the same state
transitions.

:class:`TransitionCache` memoizes all of it, keyed by ``(pid, state)``:

* the branch tuple and its probability-weight list (fed unchanged to
  :meth:`~repro.sim.rng.ReplayableRng.choice_index`, so the coin-flip
  draw sequence is bit-identical to the uncached path),
* per-branch execution plans ``(op, is_read, slot, write_value)`` with
  the access-control check already performed,
* per-branch outcome tables mapping the operation result (the value
  read; ``None`` for writes) to ``(new_state, decided)``.

**Contract.**  Memoization is sound only for automata that follow the
:class:`~repro.sim.process.Automaton` contract:

* states (and register values) are hashable and compared by value,
* ``branches(pid, state)`` is *transition-stable* — it returns the same
  distribution every time it is called with the same arguments,
* ``observe`` and ``output`` are pure functions of their arguments
  (the docstrings already require this: all randomness lives in
  ``branches``).

Every protocol in :mod:`repro.core` and :mod:`repro.apps` satisfies
this; a protocol that does not must run with ``Simulation(...,
engine="reference")`` (see docs/PERFORMANCE.md).

A cache may be shared across many :class:`~repro.sim.kernel.Simulation`
instances — the runner shares one per batch, which also amortizes the
register-layout construction and the initial-state derivation across
runs.  Sharing is sound whenever the simulations execute *equivalent*
protocols (same type and parameters), which the
:class:`~repro.sim.runner.ExperimentRunner` factory contract already
guarantees.

:mod:`repro.ir.lower` is this module's logical successor one level
down: it performs the same lowering :meth:`TransitionCache._build`
does — branch tuple, weight sums in the same accumulation order,
access-checked slots, memoized observe/output — but into flat integer
arrays instead of per-state objects, so whole batches can step through
the tables in lockstep (docs/IR.md §3 maps each cache field to its
table twin).  The cache remains the one-run-at-a-time fast path and
the engine of record for everything the IR refuses (docs/IR.md §6).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sim.config import RegisterLayout
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton


class CachedTransition:
    """The memoized transition table of one ``(pid, state)`` pair.

    ``weights`` is ``None`` for deterministic (single-branch) states so
    the kernel can skip the coin flip without touching the RNG
    (``total`` is the weights' precomputed sum, fed back to
    :meth:`~repro.sim.rng.ReplayableRng.choice_index` so the sum is not
    recomputed per flip).  ``execs[i]`` is branch *i*'s execution plan
    ``(op, is_read, slot, write_value)``; ``outcomes[i]`` maps the
    operation result to the triple ``(new_state, decided, next_entry)``
    that :meth:`Automaton.observe` / :meth:`Automaton.output` produce
    for it — ``next_entry`` is the successor state's own
    :class:`CachedTransition` (``None`` once decided), letting the
    kernel's inner loop follow transitions pointer-to-pointer instead
    of re-hashing the state every step.
    """

    __slots__ = ("branches", "weights", "total", "execs", "outcomes")

    def __init__(self, branches, weights, total, execs) -> None:
        self.branches = branches
        self.weights = weights
        self.total = total
        self.execs = execs
        self.outcomes: Tuple[Dict[Hashable, tuple], ...] = tuple(
            {} for _ in branches
        )


class TransitionCache:
    """Per-protocol memo of branch distributions, slots, and outcomes.

    Parameters
    ----------
    protocol:
        The automaton whose transitions are cached.  Entries built
        lazily always consult *this* instance, so a cache shared across
        simulations must only be used with equivalent protocols.
    layout:
        The register layout to resolve slots against; built from the
        protocol when omitted.  Simulations constructed with a cache
        reuse this layout instead of rebuilding their own.
    strict:
        Validate each state's branch distribution (once, at entry
        build) — the cached analog of the kernel's per-step strict
        mode.
    max_entries:
        Safety valve for automata with very large state spaces (e.g.
        the unbounded protocol's ``num`` fields under adversarial
        schedules): past this many memoized pairs, lookups still work
        but new entries are computed without being stored.
    """

    __slots__ = ("protocol", "layout", "strict", "max_entries",
                 "entries", "_initial_states", "_initial_registers",
                 "_outputs")

    def __init__(self, protocol: Automaton,
                 layout: Optional[RegisterLayout] = None,
                 strict: bool = True,
                 max_entries: int = 1 << 20) -> None:
        self.protocol = protocol
        self.layout = layout if layout is not None \
            else RegisterLayout.for_protocol(protocol)
        self.strict = strict
        self.max_entries = max_entries
        #: ``(pid, state) -> CachedTransition`` — read directly by the
        #: kernel's inner loop; populate through :meth:`entry`.
        self.entries: Dict[tuple, CachedTransition] = {}
        self._initial_states: Dict[tuple, tuple] = {}
        self._initial_registers: Optional[tuple] = None
        self._outputs: Dict[tuple, Optional[Hashable]] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, pid: int, state: Hashable) -> CachedTransition:
        """Return (building if needed) the transition table of a state."""
        key = (pid, state)
        entry = self.entries.get(key)
        if entry is None:
            entry = self._build(pid, state)
            if len(self.entries) < self.max_entries:
                self.entries[key] = entry
        return entry

    def _build(self, pid: int, state: Hashable) -> CachedTransition:
        protocol = self.protocol
        layout = self.layout
        branches = tuple(protocol.branches(pid, state))
        if self.strict:
            protocol.validate_branches(branches)
        execs = []
        for branch in branches:
            op = branch.op
            if isinstance(op, ReadOp):
                execs.append((op, True, layout.check_read(pid, op.register),
                              None))
            elif isinstance(op, WriteOp):
                execs.append((op, False, layout.check_write(pid, op.register),
                              op.value))
            else:
                raise ProtocolError(f"unknown operation {op!r}")
        if len(branches) > 1:
            weights = [b.probability for b in branches]
            total = float(sum(weights))
        else:
            weights = None
            total = 0.0
        return CachedTransition(branches, weights, total, tuple(execs))

    def outcome(self, pid: int, state: Hashable,
                entry: CachedTransition, branch_index: int,
                result: Hashable) -> tuple:
        """Memoized ``(new_state, decided, next_entry)`` for one branch."""
        table = entry.outcomes[branch_index]
        out = table.get(result)
        if out is None:
            op = entry.execs[branch_index][0]
            new_state = self.protocol.observe(pid, state, op, result)
            decided = self.protocol.output(pid, new_state)
            next_entry = None if decided is not None \
                else self.entry(pid, new_state)
            out = (new_state, decided, next_entry)
            table[result] = out
        return out

    def output(self, pid: int, state: Hashable) -> Optional[Hashable]:
        """Memoized :meth:`Automaton.output` (used by the explorer)."""
        key = (pid, state)
        try:
            return self._outputs[key]
        except KeyError:
            value = self.protocol.output(pid, state)
            if len(self._outputs) < self.max_entries:
                self._outputs[key] = value
            return value

    def initial_states(self, inputs: Sequence[Hashable]) -> tuple:
        """Memoized ``(states, decisions)`` for ``inputs``.

        ``states`` is the tuple of initial processor states; ``decisions``
        maps the processors (if any) whose *initial* state already
        carries an output — degenerate protocols — to that value, saving
        the kernel a per-construction ``output`` scan.
        """
        key = tuple(inputs)
        snapshot = self._initial_states.get(key)
        if snapshot is None:
            protocol = self.protocol
            states = tuple(
                protocol.initial_state(pid, value)
                for pid, value in enumerate(key)
            )
            decisions = {}
            for pid, state in enumerate(states):
                value = protocol.output(pid, state)
                if value is not None:
                    decisions[pid] = value
            snapshot = (states, decisions)
            self._initial_states[key] = snapshot
        return snapshot

    def initial_registers(self) -> tuple:
        """Memoized initial register contents of the layout."""
        regs = self._initial_registers
        if regs is None:
            regs = self._initial_registers = self.layout.initial_values()
        return regs

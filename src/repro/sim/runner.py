"""Monte-Carlo experiment runner.

The paper's quantitative claims are about expectations and tail
probabilities over the protocol's coin flips, holding against *every*
scheduler.  The runner estimates those quantities empirically: it
executes many independent seeded runs of a protocol under a given
scheduler family and aggregates per-processor decision costs.

Factories (rather than instances) are taken for the protocol, the
scheduler, and the inputs so that stateful schedulers are fresh per run
and input assignments can be randomized per run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.obs.hooks import BaseSink
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import RunResult, Simulation
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng


ProtocolFactory = Callable[[], Automaton]
SchedulerFactory = Callable[[ReplayableRng], object]
InputsFactory = Callable[[int, ReplayableRng], Sequence[Hashable]]


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Condensed per-run record kept by the runner."""

    run_index: int
    completed: bool
    consistent: bool
    nontrivial: bool
    total_steps: int
    decisions: Dict[int, Hashable]
    steps_to_decide: Dict[int, int]
    coin_flips: Dict[int, int]
    crashed: frozenset = frozenset()
    sched_consults: int = 0


@dataclasses.dataclass
class BatchStats:
    """Aggregate statistics over a batch of runs.

    ``metrics`` carries the :class:`~repro.obs.metrics.MetricsRegistry`
    that observed the batch, when the runner had one attached; it holds
    the streaming aggregates (histograms with percentiles, event
    counters) that the per-run :class:`RunStats` summaries do not.
    """

    runs: List[RunStats]
    max_steps: int
    metrics: Optional[MetricsRegistry] = None

    def metrics_dict(self) -> Optional[Dict[str, Any]]:
        """JSON-ready snapshot of the attached registry, if any."""
        return self.metrics.to_dict() if self.metrics is not None else None

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_completed(self) -> int:
        return sum(1 for r in self.runs if r.completed)

    @property
    def completion_rate(self) -> float:
        return self.n_completed / self.n_runs if self.runs else 0.0

    @property
    def n_consistency_violations(self) -> int:
        return sum(1 for r in self.runs if not r.consistent)

    @property
    def n_nontriviality_violations(self) -> int:
        return sum(1 for r in self.runs if not r.nontrivial)

    def per_processor_costs(self) -> List[int]:
        """Steps-to-decide samples pooled over all processors and runs.

        This is the distribution the paper's Theorem 7 tail bound and
        its expected-steps corollary speak about.
        """
        samples: List[int] = []
        for run in self.runs:
            samples.extend(run.steps_to_decide.values())
        return samples

    def worst_processor_costs(self) -> List[int]:
        """Per-run worst steps-to-decide (only runs where all decided)."""
        out: List[int] = []
        for run in self.runs:
            if run.completed and run.steps_to_decide:
                out.append(max(run.steps_to_decide.values()))
        return out

    def mean_steps_to_decide(self) -> Optional[float]:
        samples = self.per_processor_costs()
        if not samples:
            return None
        return sum(samples) / len(samples)

    def tail_probability(self, k: int) -> float:
        """Empirical P(a processor has not decided after k of its steps).

        Runs censored by the step budget count as "not decided", making
        the estimate conservative (an upper bound in expectation).
        """
        undecided = 0
        total = 0
        for run in self.runs:
            # Every non-crashed processor contributes one Bernoulli sample
            # per run; coin_flips is keyed by every pid, decided or not.
            for pid in run.coin_flips:
                if pid in run.crashed:
                    continue
                total += 1
                cost = run.steps_to_decide.get(pid)
                if cost is None or cost > k:
                    undecided += 1
        return undecided / total if total else 0.0

    def mean_coin_flips(self) -> Optional[float]:
        samples: List[int] = []
        for run in self.runs:
            samples.extend(run.coin_flips.values())
        if not samples:
            return None
        return sum(samples) / len(samples)


class ExperimentRunner:
    """Run a protocol many times and aggregate statistics.

    Example
    -------
    >>> from repro.core.two_process import TwoProcessProtocol
    >>> from repro.sched.simple import RandomScheduler
    >>> runner = ExperimentRunner(
    ...     protocol_factory=lambda: TwoProcessProtocol(("a", "b")),
    ...     scheduler_factory=lambda rng: RandomScheduler(rng),
    ...     inputs_factory=lambda i, rng: ("a", "b"),
    ...     seed=42,
    ... )
    >>> stats = runner.run_many(100, max_steps=1000)
    >>> stats.n_consistency_violations
    0
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        scheduler_factory: SchedulerFactory,
        inputs_factory: InputsFactory,
        seed: int,
        strict: bool = False,
        sinks: Sequence[BaseSink] = (),
    ) -> None:
        self._protocol_factory = protocol_factory
        self._scheduler_factory = scheduler_factory
        self._inputs_factory = inputs_factory
        self._seed = seed
        self._strict = strict
        self._sinks = tuple(sinks)

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The attached batch-wide metrics registry, if any."""
        for sink in self._sinks:
            if isinstance(sink, MetricsRegistry):
                return sink
        return None

    def run_one(self, run_index: int, max_steps: int,
                record_trace: bool = False,
                sinks: Optional[Sequence[BaseSink]] = None) -> RunResult:
        """Execute a single run (deterministic given the runner seed).

        Sinks never perturb the run itself: the kernel's coin streams
        are independent of observation, so results are bit-identical
        with and without instrumentation.
        """
        rng = ReplayableRng(self._seed).child("run", run_index)
        protocol = self._protocol_factory()
        scheduler = self._scheduler_factory(rng.child("sched"))
        inputs = self._inputs_factory(run_index, rng.child("inputs"))
        sim = Simulation(
            protocol,
            inputs,
            scheduler,
            rng.child("kernel"),
            record_trace=record_trace,
            strict=self._strict,
            sinks=self._sinks if sinks is None else sinks,
        )
        return sim.run(max_steps)

    def run_many(self, n_runs: int, max_steps: int) -> BatchStats:
        """Execute ``n_runs`` independent runs and aggregate.

        The runner's sinks are shared across all runs, so an attached
        :class:`~repro.obs.metrics.MetricsRegistry` accumulates the
        whole batch; it is handed to the returned
        :class:`BatchStats` as ``metrics``.
        """
        runs: List[RunStats] = []
        for i in range(n_runs):
            result = self.run_one(i, max_steps)
            runs.append(
                RunStats(
                    run_index=i,
                    completed=result.completed,
                    consistent=result.consistent,
                    nontrivial=result.nontrivial,
                    total_steps=result.total_steps,
                    decisions=dict(result.decisions),
                    steps_to_decide=dict(result.decision_activation),
                    coin_flips=dict(result.coin_flips),
                    crashed=result.crashed,
                    sched_consults=result.sched_consults,
                )
            )
        return BatchStats(runs=runs, max_steps=max_steps,
                          metrics=self.metrics)

"""Monte-Carlo experiment runner.

The paper's quantitative claims are about expectations and tail
probabilities over the protocol's coin flips, holding against *every*
scheduler.  The runner estimates those quantities empirically: it
executes many independent seeded runs of a protocol under a given
scheduler family and aggregates per-processor decision costs.

Factories (rather than instances) are taken for the protocol, the
scheduler, and the inputs so that stateful schedulers are fresh per run
and input assignments can be randomized per run.

Every run is keyed by ``derive_seed(root_seed, "run", run_index)``
(through :meth:`ReplayableRng.child`), never by execution order, so
batches shard across worker processes with bit-identical results —
``run_many(..., workers=N)`` delegates to :mod:`repro.parallel` and
merges the shards back deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import (TYPE_CHECKING, Any, Callable, Dict, Hashable, List,
                    Optional, Sequence)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan
    from repro.parallel.supervisor import FaultReport, SupervisorPolicy
    from repro.store import RunStore, StoreStats

from repro.engines import resolve_sim_engine
from repro.obs.hooks import BaseSink
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import RunResult, Simulation
from repro.sim.memory import MemorySpec, memory_spec
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng
from repro.sim.transitions import TransitionCache


ProtocolFactory = Callable[[], Automaton]
SchedulerFactory = Callable[[ReplayableRng], object]
InputsFactory = Callable[[int, ReplayableRng], Sequence[Hashable]]


@dataclasses.dataclass(frozen=True)
class RunStats:
    """Condensed per-run record kept by the runner.

    Partially decided runs (``completed=False``, e.g. cut off by the
    ``max_steps`` budget or starved by an adversary) still populate
    every field, but the per-processor maps are *sparse*:
    ``decisions`` and ``steps_to_decide`` carry entries only for the
    processors that actually decided, while ``coin_flips`` has an
    entry for every processor that flipped at least one coin (decided
    or not).  ``crashed`` lists processors the scheduler fail-stopped;
    they never appear in ``decisions``.
    """

    run_index: int
    completed: bool
    consistent: bool
    nontrivial: bool
    total_steps: int
    decisions: Dict[int, Hashable]
    steps_to_decide: Dict[int, int]
    coin_flips: Dict[int, int]
    crashed: frozenset = frozenset()
    sched_consults: int = 0

    @classmethod
    def from_result(cls, run_index: int, result: RunResult) -> "RunStats":
        """Condense a kernel :class:`RunResult` into the batch record.

        This is the single conversion point shared by the serial loop
        and the parallel shard workers, so both produce field-identical
        records for the same seeded run.
        """
        return cls(
            run_index=run_index,
            completed=result.completed,
            consistent=result.consistent,
            nontrivial=result.nontrivial,
            total_steps=result.total_steps,
            decisions=dict(result.decisions),
            steps_to_decide=dict(result.decision_activation),
            coin_flips=dict(result.coin_flips),
            crashed=result.crashed,
            sched_consults=result.sched_consults,
        )


@dataclasses.dataclass
class BatchStats:
    """Aggregate statistics over a batch of runs.

    ``metrics`` carries the :class:`~repro.obs.metrics.MetricsRegistry`
    that observed the batch, when the runner had one attached; it holds
    the streaming aggregates (histograms with percentiles, event
    counters) that the per-run :class:`RunStats` summaries do not.

    **Lifetime.** The registry is the *runner's* sink, not a copy: it
    is live before ``run_many`` is called, keeps accumulating if the
    same runner executes another batch, and is shared by every
    ``BatchStats`` that runner returns.  Snapshot it
    (:meth:`metrics_dict`) when you need the state of one batch in
    isolation — or use a fresh runner (and registry) per batch, which
    is what the CLI and benchmarks do.

    **Merge semantics (sharded batches).** When ``run_many`` executes
    with ``workers > 1``, each worker process observes its contiguous
    shard of run indices with a private registry, and the shards are
    folded into the runner's registry in shard order via
    :meth:`MetricsRegistry.merge`: counters add, histograms union
    their exact counts, and gauges union min/max while the *value*
    field is last-writer-wins in shard order — the same final value a
    serial pass over the runs in index order would have left.  Because
    every run's randomness is keyed only by ``(root seed, run index)``,
    the merged registry snapshot, the ``runs`` list, and any journal
    written are bit-identical to a ``workers=1`` batch with the same
    seed.

    ``journal_path`` / ``journal_events`` are set when ``run_many`` was
    asked to stream a journal (``journal_path=...``): the path of the
    finished JSONL file and its line count (header included).

    ``store`` carries the :class:`~repro.store.StoreStats` cache
    accounting (hits, misses, runs served from cache vs executed) when
    the batch ran against a :class:`~repro.store.RunStore`.

    ``faults`` carries the
    :class:`~repro.parallel.supervisor.FaultReport` when the batch ran
    supervised (``run_many(..., supervise=True)``): every fault the
    supervisor absorbed, plus the quarantined index ranges ``runs``
    omits.  ``None`` on unsupervised batches; a supervised fault-free
    batch carries an empty report (``faults.ok``).
    """

    runs: List[RunStats]
    max_steps: int
    metrics: Optional[MetricsRegistry] = None
    journal_path: Optional[str] = None
    journal_events: Optional[int] = None
    store: Optional["StoreStats"] = None
    faults: Optional["FaultReport"] = None

    def metrics_dict(self) -> Optional[Dict[str, Any]]:
        """JSON-ready snapshot of the attached registry, if any."""
        return self.metrics.to_dict() if self.metrics is not None else None

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_completed(self) -> int:
        return sum(1 for r in self.runs if r.completed)

    @property
    def completion_rate(self) -> float:
        return self.n_completed / self.n_runs if self.runs else 0.0

    @property
    def n_consistency_violations(self) -> int:
        return sum(1 for r in self.runs if not r.consistent)

    @property
    def n_nontriviality_violations(self) -> int:
        return sum(1 for r in self.runs if not r.nontrivial)

    def per_processor_costs(self) -> List[int]:
        """Steps-to-decide samples pooled over all processors and runs.

        This is the distribution the paper's Theorem 7 tail bound and
        its expected-steps corollary speak about.  Only processors
        that actually decided contribute a sample — partially decided
        runs contribute their deciders and nothing else (use
        :meth:`tail_probability` for a censoring-aware estimate).
        """
        samples: List[int] = []
        for run in self.runs:
            samples.extend(run.steps_to_decide.values())
        return samples

    def worst_processor_costs(self) -> List[int]:
        """Per-run worst steps-to-decide (only runs where all decided)."""
        out: List[int] = []
        for run in self.runs:
            if run.completed and run.steps_to_decide:
                out.append(max(run.steps_to_decide.values()))
        return out

    def mean_steps_to_decide(self) -> Optional[float]:
        samples = self.per_processor_costs()
        if not samples:
            return None
        return sum(samples) / len(samples)

    def tail_probability(self, k: int) -> float:
        """Empirical P(a processor has not decided after k of its steps).

        Runs censored by the step budget count as "not decided", making
        the estimate conservative (an upper bound in expectation).
        """
        undecided = 0
        total = 0
        for run in self.runs:
            # Every non-crashed processor contributes one Bernoulli sample
            # per run; coin_flips is keyed by every pid, decided or not.
            for pid in run.coin_flips:
                if pid in run.crashed:
                    continue
                total += 1
                cost = run.steps_to_decide.get(pid)
                if cost is None or cost > k:
                    undecided += 1
        return undecided / total if total else 0.0

    def mean_coin_flips(self) -> Optional[float]:
        samples: List[int] = []
        for run in self.runs:
            samples.extend(run.coin_flips.values())
        if not samples:
            return None
        return sum(samples) / len(samples)


class ExperimentRunner:
    """Run a protocol many times and aggregate statistics.

    Example
    -------
    >>> from repro.core.two_process import TwoProcessProtocol
    >>> from repro.sched.simple import RandomScheduler
    >>> runner = ExperimentRunner(
    ...     protocol_factory=lambda: TwoProcessProtocol(("a", "b")),
    ...     scheduler_factory=lambda rng: RandomScheduler(rng),
    ...     inputs_factory=lambda i, rng: ("a", "b"),
    ...     seed=42,
    ... )
    >>> stats = runner.run_many(100, max_steps=1000)
    >>> stats.n_consistency_violations
    0
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        scheduler_factory: SchedulerFactory,
        inputs_factory: InputsFactory,
        seed: int,
        strict: bool = False,
        sinks: Sequence[BaseSink] = (),
        fast: Optional[bool] = None,
        memory=None,
        engine: Optional[str] = None,
    ) -> None:
        self._protocol_factory = protocol_factory
        self._scheduler_factory = scheduler_factory
        self._inputs_factory = inputs_factory
        self._seed = seed
        self._strict = strict
        self._sinks = tuple(sinks)
        # ``engine`` names the execution backend, resolved and
        # validated through the registry (repro.engines); ``fast`` is
        # the deprecated boolean alias.  "vector" steps compiled
        # integer tables in lockstep mega-batches (repro.ir) and is
        # bit-identical to the interpreted kernels for the supported
        # protocol × scheduler × memory matrix (docs/IR.md §5); it
        # raises IRUnsupportedError at first use otherwise.
        self._engine = resolve_sim_engine(
            engine, fast, caller="ExperimentRunner").name
        self._fast = self._engine == "fast"
        # Register semantics for every run of the batch (a picklable
        # MemorySpec, so parallel shards inherit it unchanged).
        self._memory: MemorySpec = memory_spec(memory)
        # One TransitionCache for the whole batch: the factory contract
        # (fresh but equivalent protocol per run) makes sharing sound,
        # and it amortizes branch/layout/initial-state resolution across
        # runs.  See repro.sim.transitions and docs/PERFORMANCE.md.
        self._cache: Optional[TransitionCache] = None
        # Lazily built VectorKernel (engine="vector"): the compiled
        # tables and scheduler spec are shared by every batch chunk.
        self._vector = None

    @property
    def engine(self) -> str:
        """The execution backend: ``fast``, ``reference``, or ``vector``."""
        return self._engine

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The attached batch-wide metrics registry, if any."""
        for sink in self._sinks:
            if isinstance(sink, MetricsRegistry):
                return sink
        return None

    def _vector_kernel(self):
        """Build (once) the shared VectorKernel for ``engine="vector"``.

        The scheduler factory is probed with a throwaway rng to learn
        the scheduler *kind* (and round-robin start); the factory
        contract — fresh but equivalent scheduler per run — makes that
        sound, exactly like the shared TransitionCache.  Per-run
        scheduler randomness still comes from each run's own ``sched``
        stream, derived inside the kernel.
        """
        if self._vector is None:
            from repro.ir import (VectorKernel, compile_protocol,
                                  vectorize_scheduler)

            protocol = self._protocol_factory()
            probe = self._scheduler_factory(
                ReplayableRng(self._seed).child("sched-probe"))
            self._vector = VectorKernel(
                compile_protocol(protocol, strict=self._strict),
                vectorize_scheduler(probe),
                memory=self._memory,
            )
        return self._vector

    def _run_one_vector(self, run_index: int, max_steps: int,
                        record_trace: bool,
                        sinks: Sequence[BaseSink]) -> RunResult:
        from repro.ir import replay_run

        vk = self._vector_kernel()
        rng = ReplayableRng(self._seed).child("run", run_index)
        inputs = self._inputs_factory(run_index, rng.child("inputs"))
        batch = vk.run_batch(self._seed, [run_index], [tuple(inputs)],
                             max_steps=max_steps, record=bool(sinks),
                             record_trace=record_trace)
        result = batch.results[0]
        if sinks:
            # replay_run emits on_run_key first, then the kernel event
            # stream — the exact order an instrumented Simulation (and
            # run_one's interpreted path) produces.
            replay_run(vk.compiled, result, batch.records[0], sinks,
                       self._seed, run_index)
        return result

    def run_one(self, run_index: int, max_steps: int,
                record_trace: bool = False,
                sinks: Optional[Sequence[BaseSink]] = None) -> RunResult:
        """Execute a single run (deterministic given the runner seed).

        Sinks never perturb the run itself: the kernel's coin streams
        are independent of observation, so results are bit-identical
        with and without instrumentation.

        Before the kernel's ``on_run_start``, every sink implementing
        ``on_run_key`` receives ``(root_seed, run_index)`` — the
        coordinates that replay this exact run, and the input from
        which the span tracer derives its deterministic trace ids.
        """
        effective_sinks = self._sinks if sinks is None else sinks
        if self._engine == "vector":
            return self._run_one_vector(run_index, max_steps,
                                        record_trace, effective_sinks)
        for sink in effective_sinks:
            run_key = getattr(sink, "on_run_key", None)
            if run_key is not None:
                run_key(self._seed, run_index)
        rng = ReplayableRng(self._seed).child("run", run_index)
        protocol = self._protocol_factory()
        scheduler = self._scheduler_factory(rng.child("sched"))
        inputs = self._inputs_factory(run_index, rng.child("inputs"))
        cache = None
        if self._fast:
            cache = self._cache
            if cache is None:
                cache = self._cache = TransitionCache(
                    protocol, strict=self._strict)
        sim = Simulation(
            protocol,
            inputs,
            scheduler,
            rng.child("kernel"),
            record_trace=record_trace,
            strict=self._strict,
            sinks=self._sinks if sinks is None else sinks,
            engine=self._engine,
            cache=cache,
            memory=self._memory,
        )
        return sim.run(max_steps)

    def run_range(self, start: int, stop: int, max_steps: int,
                  sinks: Optional[Sequence[BaseSink]] = None,
                  emitter=None) -> List[RunStats]:
        """Execute runs ``[start, stop)`` in index order.

        The shared inner loop of serial batches and parallel shards.
        Interpreted engines step one run at a time; the vector engine
        executes lockstep mega-batches of up to
        :data:`repro.ir.BATCH_CHUNK` runs and, when sinks are attached,
        replays each run's recorded event stream into them in index
        order — producing the same per-run results, journal bytes, and
        metrics as the interpreted loop.  ``emitter`` (a
        :class:`~repro.obs.telemetry.TelemetryEmitter`) receives one
        ``record_run`` per run; under the vector engine heartbeats
        arrive per chunk rather than per run, which only affects
        wall-clock pacing, never results.
        """
        if self._engine != "vector":
            runs = []
            for i in range(start, stop):
                result = self.run_one(i, max_steps, sinks=sinks)
                runs.append(RunStats.from_result(i, result))
                if emitter is not None:
                    emitter.record_run(result.total_steps)
            return runs
        from repro.ir import BATCH_CHUNK, replay_run

        vk = self._vector_kernel()
        effective_sinks = self._sinks if sinks is None else tuple(sinks)
        record = bool(effective_sinks)
        root = ReplayableRng(self._seed)
        runs = []
        for lo in range(start, stop, BATCH_CHUNK):
            hi = min(lo + BATCH_CHUNK, stop)
            indices = list(range(lo, hi))
            inputs = [
                tuple(self._inputs_factory(
                    i, root.child("run", i).child("inputs")))
                for i in indices
            ]
            batch = vk.run_batch(self._seed, indices, inputs,
                                 max_steps=max_steps, record=record)
            for j, i in enumerate(indices):
                result = batch.results[j]
                if record:
                    replay_run(vk.compiled, result, batch.records[j],
                               effective_sinks, self._seed, i)
                runs.append(RunStats.from_result(i, result))
                if emitter is not None:
                    emitter.record_run(result.total_steps)
        return runs

    def run_many(
        self,
        n_runs: int,
        max_steps: int,
        workers: int = 1,
        shard_size: Optional[int] = None,
        journal_path: Optional[str] = None,
        telemetry_path: Optional[str] = None,
        mp_context: str = "spawn",
        store: Optional["RunStore"] = None,
        supervise: bool = False,
        policy: Optional["SupervisorPolicy"] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> BatchStats:
        """Execute ``n_runs`` independent runs and aggregate.

        The runner's sinks are shared across all runs, so an attached
        :class:`~repro.obs.metrics.MetricsRegistry` accumulates the
        whole batch; it is handed to the returned :class:`BatchStats`
        as ``metrics``.

        ``workers > 1`` shards the run index range across that many
        worker processes (see :mod:`repro.parallel`).  Because each
        run's randomness is keyed only by the root seed and its index,
        the result — run stats, merged metrics snapshot, and journal
        bytes — is bit-identical to ``workers=1`` with the same seed,
        at any worker count and ``shard_size``.  Parallel batches
        require picklable factories (module-level functions or the
        specs in :mod:`repro.parallel.tasks`), and the only sink kind
        that may be attached is a :class:`MetricsRegistry` (shards
        merge into it); stream a journal with ``journal_path=``
        instead of attaching a :class:`JsonlJournal` sink.

        ``journal_path`` streams a batch-spanning JSONL journal to that
        path in either mode; the finished path and its event count are
        reported on the returned stats.

        ``telemetry_path`` streams live progress heartbeats (JSONL, one
        per ~1% of each shard — see :mod:`repro.obs.telemetry`) to that
        path in either mode; follow it live with ``repro top``.
        Heartbeats carry wall-clock rates and never affect results.

        ``store`` attaches a :class:`~repro.store.RunStore`: shards
        already committed under this batch's content address are
        loaded instead of executed, freshly executed shards are
        committed as they finish, and the returned stats carry a
        ``store`` accounting.  Store-backed batches always take the
        sharded engine (even at ``workers=1``, so interruption
        granularity is the shard) and inherit its restrictions:
        picklable spec-class factories and MetricsRegistry-only sinks.

        ``supervise=True`` (or passing ``policy`` / ``fault_plan``)
        routes the batch through the fault-tolerant supervisor
        (:mod:`repro.parallel.supervisor`): each shard runs in its own
        watched child process with bounded deterministic retries,
        optional engine degradation, and quarantine instead of sweep
        death.  Results stay bit-identical to the unsupervised batch;
        the returned stats gain a ``faults``
        :class:`~repro.parallel.supervisor.FaultReport`.  Supervised
        batches carry the same restrictions as parallel ones (they
        always cross a process boundary, even at ``workers=1``).
        """
        supervise = supervise or policy is not None \
            or fault_plan is not None
        if workers > 1 or store is not None or supervise:
            from repro.parallel.engine import BatchSpec, run_parallel

            unsupported = [s for s in self._sinks
                           if not isinstance(s, MetricsRegistry)]
            if unsupported:
                names = ", ".join(type(s).__name__ for s in unsupported)
                raise ValueError(
                    f"sinks cannot cross process boundaries in a "
                    f"parallel batch (attached: {names}); attach only a "
                    f"MetricsRegistry and pass journal_path= for "
                    f"journals, or run with workers=1"
                )
            spec = BatchSpec(
                protocol_factory=self._protocol_factory,
                scheduler_factory=self._scheduler_factory,
                inputs_factory=self._inputs_factory,
                seed=self._seed,
                strict=self._strict,
                memory=self._memory,
                engine=self._engine,
            )
            if supervise:
                from repro.parallel.supervisor import run_supervised

                return run_supervised(
                    spec, n_runs, max_steps,
                    workers=workers, shard_size=shard_size,
                    journal_path=journal_path,
                    telemetry_path=telemetry_path,
                    registry=self.metrics, mp_context=mp_context,
                    store=store, policy=policy, fault_plan=fault_plan,
                )
            return run_parallel(
                spec, n_runs, max_steps,
                workers=workers, shard_size=shard_size,
                journal_path=journal_path, telemetry_path=telemetry_path,
                registry=self.metrics, mp_context=mp_context,
                store=store,
            )

        journal = None
        sinks = None
        if journal_path is not None:
            from repro.obs.journal import JsonlJournal

            journal = JsonlJournal(journal_path, memory=self._memory.name)
            sinks = self._sinks + (journal,)
        telemetry_fh = None
        emitter = None
        if telemetry_path is not None:
            from repro.obs.telemetry import TelemetryEmitter, file_sink

            telemetry_fh = open(telemetry_path, "w")
            emitter = TelemetryEmitter(0, n_runs, file_sink(telemetry_fh))
        try:
            runs = self.run_range(0, n_runs, max_steps, sinks=sinks,
                                  emitter=emitter)
            if emitter is not None:
                emitter.finish()
        finally:
            if journal is not None:
                journal.close()
            if telemetry_fh is not None:
                telemetry_fh.close()
        return BatchStats(
            runs=runs,
            max_steps=max_steps,
            metrics=self.metrics,
            journal_path=journal_path,
            journal_events=(journal.events_written
                            if journal is not None else None),
        )

"""Simulation substrate: the asynchronous shared-memory machine of Section 2.

This subpackage implements the computational model the paper defines:

* processors are state automata taking one atomic register operation per
  step (:mod:`repro.sim.process`),
* shared registers have declared reader/writer sets
  (:mod:`repro.sim.registers_file`),
* an adversarial scheduler picks which processor moves next, and the
  kernel serializes everything into a single global order
  (:mod:`repro.sim.kernel`),
* randomness is seeded and replayable (:mod:`repro.sim.rng`),
* runs produce structured traces (:mod:`repro.sim.trace`) and batches of
  runs produce aggregate statistics (:mod:`repro.sim.runner`).
"""

from repro.sim.ops import Op, ReadOp, WriteOp, BOTTOM
from repro.sim.process import Automaton, Branch, RegisterSpec
from repro.sim.config import Configuration
from repro.sim.kernel import Simulation, RunResult
from repro.sim.memory import (
    ATOMIC,
    REGULAR,
    SAFE,
    MEMORY_NAMES,
    AtomicMemory,
    MemoryModel,
    MemorySpec,
    RegularMemory,
    SafeMemory,
    memory_spec,
)
from repro.sim.rng import ReplayableRng, derive_seed
from repro.sim.transitions import TransitionCache
from repro.sim.trace import StepRecord, Trace
from repro.sim.runner import ExperimentRunner, RunStats, BatchStats
from repro.sim.viz import (
    render_decision_summary,
    render_register_timeline,
    render_space_time,
)

__all__ = [
    "Op",
    "ReadOp",
    "WriteOp",
    "BOTTOM",
    "Automaton",
    "Branch",
    "RegisterSpec",
    "Configuration",
    "Simulation",
    "RunResult",
    "ATOMIC",
    "REGULAR",
    "SAFE",
    "MEMORY_NAMES",
    "AtomicMemory",
    "MemoryModel",
    "MemorySpec",
    "RegularMemory",
    "SafeMemory",
    "memory_spec",
    "ReplayableRng",
    "derive_seed",
    "TransitionCache",
    "StepRecord",
    "Trace",
    "ExperimentRunner",
    "RunStats",
    "BatchStats",
    "render_decision_summary",
    "render_register_timeline",
    "render_space_time",
]

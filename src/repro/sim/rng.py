"""Seeded, replayable randomness.

Every stochastic component in the library (protocol coin flips, random
schedulers, workload generators) draws from a :class:`ReplayableRng`
derived from a single experiment seed through a stable mixing function.
Re-running an experiment with the same seed reproduces the same runs,
bit for bit, on every Python version — the mixer is a hand-rolled
SplitMix64 rather than :mod:`random`'s version-dependent seeding.

The derivation is *hierarchical*: ``derive_seed(seed, "proc", 2)`` gives
the coin stream of processor 2, independent of how many coins other
components consume.  This matters for experiments: changing the
scheduler must not perturb the processors' coin sequences, otherwise
A/B comparisons between schedulers would be confounded.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

_MASK64 = (1 << 64) - 1

T = TypeVar("T")


def _splitmix64(state: int) -> int:
    """One step of the SplitMix64 generator; returns the mixed output."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _mix_str(acc: int, token: str) -> int:
    """Fold a string token into an accumulator, FNV-then-splitmix style."""
    h = acc
    for byte in token.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return _splitmix64(h)


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of tokens.

    Tokens may be strings or integers; they are folded into the seed one
    at a time, so ``derive_seed(s, "proc", 1)`` and
    ``derive_seed(s, "proc", 2)`` are (for all practical purposes)
    independent streams.
    """
    acc = _splitmix64(root_seed & _MASK64)
    for token in path:
        if isinstance(token, int):
            acc = _splitmix64(acc ^ (token & _MASK64))
        else:
            acc = _mix_str(acc, str(token))
    return acc


class ReplayableRng:
    """A :class:`random.Random` wrapper with counting and sub-streams.

    The counter lets experiments report how many coin flips a protocol
    consumed (one of the complexity measures the paper discusses), and
    :meth:`child` spawns independent named streams.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed & _MASK64
        self._random = random.Random(self._seed)
        self._draws = 0

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of random draws made so far on this stream."""
        return self._draws

    def child(self, *path: object) -> "ReplayableRng":
        """Return an independent stream derived from this stream's seed."""
        return ReplayableRng(derive_seed(self._seed, *path))

    def coin(self, p_heads: float = 0.5) -> bool:
        """Flip a (possibly biased) coin; ``True`` means heads."""
        self._draws += 1
        return self._random.random() < p_heads

    def choice_index(self, weights: Sequence[float]) -> int:
        """Sample an index proportionally to ``weights`` (need not sum to 1)."""
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must have positive sum")
        self._draws += 1
        x = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly at random."""
        self._draws += 1
        return self._random.choice(items)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the closed interval [lo, hi]."""
        self._draws += 1
        return self._random.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        self._draws += 1
        return self._random.random()

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._draws += 1
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        self._draws += 1
        return self._random.sample(items, k)


def spawn_streams(root_seed: int, names: Iterable[object]) -> dict:
    """Create one independent :class:`ReplayableRng` per name."""
    return {name: ReplayableRng(derive_seed(root_seed, name)) for name in names}

"""Seeded, replayable randomness.

Every stochastic component in the library (protocol coin flips, random
schedulers, workload generators) draws from a :class:`ReplayableRng`
derived from a single experiment seed through a stable mixing function.
Re-running an experiment with the same seed reproduces the same runs,
bit for bit, on every Python version — the mixer is a hand-rolled
SplitMix64 rather than :mod:`random`'s version-dependent seeding.

The derivation is *hierarchical*: ``derive_seed(seed, "proc", 2)`` gives
the coin stream of processor 2, independent of how many coins other
components consume.  This matters for experiments: changing the
scheduler must not perturb the processors' coin sequences, otherwise
A/B comparisons between schedulers would be confounded.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, TypeVar

_MASK64 = (1 << 64) - 1

T = TypeVar("T")


def _splitmix64(state: int) -> int:
    """One step of the SplitMix64 generator; returns the mixed output."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _mix_str(acc: int, token: str) -> int:
    """Fold a string token into an accumulator, FNV-then-splitmix style."""
    h = acc
    for byte in token.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return _splitmix64(h)


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of tokens.

    Tokens may be strings or integers; they are folded into the seed one
    at a time, so ``derive_seed(s, "proc", 1)`` and
    ``derive_seed(s, "proc", 2)`` are (for all practical purposes)
    independent streams.
    """
    acc = _splitmix64(root_seed & _MASK64)
    for token in path:
        if isinstance(token, int):
            acc = _splitmix64(acc ^ (token & _MASK64))
        else:
            acc = _mix_str(acc, str(token))
    return acc


class ReplayableRng:
    """A :class:`random.Random` wrapper with counting and sub-streams.

    The counter lets experiments report how many coin flips a protocol
    consumed (one of the complexity measures the paper discusses), and
    :meth:`child` spawns independent named streams.

    The underlying :class:`random.Random` is constructed lazily, on the
    first draw: seeding the Mersenne twister costs microseconds, and
    short runs build whole stream trees (per-processor coin streams,
    scheduler stream, input stream) of which several never draw.  The
    draw *sequence* is unaffected — the generator's state depends only
    on the seed, never on when it is instantiated.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed & _MASK64
        self._random: random.Random = None  # bound by _bind on first draw
        self._draws = 0

    def _bind(self) -> random.Random:
        rnd = random.Random(self._seed)
        self._random = rnd
        return rnd

    def prime(self) -> "ReplayableRng":
        """Force generator construction now (e.g. outside a timed region)."""
        if self._random is None:
            self._bind()
        return self

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of random draws made so far on this stream."""
        return self._draws

    def child(self, *path: object) -> "ReplayableRng":
        """Return an independent stream derived from this stream's seed."""
        return ReplayableRng(derive_seed(self._seed, *path))

    def children(self, prefix: str, count: int) -> list:
        """``[self.child(prefix, i) for i in range(count)]``, batched.

        Folds ``prefix`` into the seed once instead of once per child —
        the kernel derives one coin stream per processor on every run,
        so this shows up in per-run construction cost.
        """
        base = _mix_str(_splitmix64(self._seed), prefix)
        return [ReplayableRng(_splitmix64(base ^ i)) for i in range(count)]

    def coin(self, p_heads: float = 0.5) -> bool:
        """Flip a (possibly biased) coin; ``True`` means heads."""
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        return rnd.random() < p_heads

    def choice_index(self, weights: Sequence[float],
                     total: Optional[float] = None) -> int:
        """Sample an index proportionally to ``weights`` (need not sum to 1).

        ``total`` may carry the precomputed ``float(sum(weights))`` (the
        kernel caches it per transition); the sampled index is identical
        either way.
        """
        if total is None:
            total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must have positive sum")
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        x = rnd.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly at random.

        The rejection sampling below is :meth:`random.Random.choice`
        inlined (identical ``getrandbits`` consumption, so identical
        sequences) — this is the hottest draw in the library (one per
        kernel step under a random scheduler) and skipping the
        ``choice``/``_randbelow`` call pair is measurable there.
        """
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        n = len(items)
        if not n:
            raise IndexError("Cannot choose from an empty sequence")
        getrandbits = rnd.getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        return items[r]

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the closed interval [lo, hi]."""
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        return rnd.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        return rnd.random()

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        rnd.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        self._draws += 1
        rnd = self._random
        if rnd is None:
            rnd = self._bind()
        return rnd.sample(items, k)


def spawn_streams(root_seed: int, names: Iterable[object]) -> dict:
    """Create one independent :class:`ReplayableRng` per name."""
    return {name: ReplayableRng(derive_seed(root_seed, name)) for name in names}

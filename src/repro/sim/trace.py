"""Structured run traces.

A trace is the serialized record of a run: one :class:`StepRecord` per
step, in global order.  Traces feed the property validators in
:mod:`repro.checker.properties` (consistency, nontriviality, wait-free
accounting) and the examples' pretty-printers.

Traces can be large; the kernel only records them when asked
(``record_trace=True``), and Monte-Carlo experiments usually run with
tracing off and rely on per-run summaries instead.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterator, List, Optional, Sequence

from repro.sim.ops import Op, ReadOp, WriteOp


@dataclasses.dataclass(frozen=True)
class StepRecord:
    """One serialized step of a run.

    ``result`` is the value read (for reads) or ``None`` (for writes).
    ``decided`` carries the value the processor decided *at this step*,
    if the step's state transition entered a decision state.
    """

    index: int
    pid: int
    op: Op
    result: Hashable
    decided: Optional[Hashable] = None

    def render(self) -> str:
        """One-line human-readable form, e.g. ``#12 P1 read(r0) -> 'a'``."""
        if isinstance(self.op, ReadOp):
            line = f"#{self.index:<4d} P{self.pid} {self.op!r} -> {self.result!r}"
        else:
            line = f"#{self.index:<4d} P{self.pid} {self.op!r}"
        if self.decided is not None:
            line += f"   [decides {self.decided!r}]"
        return line


@dataclasses.dataclass(frozen=True)
class CrashRecord:
    """A fail-stop crash injected by the scheduler before step ``index``."""

    index: int
    pid: int

    def render(self) -> str:
        return f"#{self.index:<4d} P{self.pid} ✗ crashed"


class Trace:
    """Ordered list of step and crash records for one run."""

    def __init__(self) -> None:
        self._steps: List[StepRecord] = []
        self._crashes: List[CrashRecord] = []

    def append(self, record: StepRecord) -> None:
        self._steps.append(record)

    def append_crash(self, record: CrashRecord) -> None:
        self._crashes.append(record)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[StepRecord]:
        return iter(self._steps)

    def __getitem__(self, idx: int) -> StepRecord:
        return self._steps[idx]

    @property
    def steps(self) -> Sequence[StepRecord]:
        return tuple(self._steps)

    @property
    def crashes(self) -> Sequence[CrashRecord]:
        return tuple(self._crashes)

    def schedule(self) -> List[int]:
        """The schedule of this run: the ordered list of processor ids."""
        return [record.pid for record in self._steps]

    def steps_of(self, pid: int) -> List[StepRecord]:
        """All steps taken by one processor, in order."""
        return [record for record in self._steps if record.pid == pid]

    def writes_to(self, register: str) -> List[StepRecord]:
        """All writes to one register, in global order."""
        return [
            record for record in self._steps
            if isinstance(record.op, WriteOp) and record.op.register == register
        ]

    def reads_from(self, register: str) -> List[StepRecord]:
        """All reads of one register, in global order."""
        return [
            record for record in self._steps
            if isinstance(record.op, ReadOp) and record.op.register == register
        ]

    def decisions(self) -> List[StepRecord]:
        """The steps at which processors decided, in decision order."""
        return [record for record in self._steps if record.decided is not None]

    def render(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering of the trace (truncated at ``limit`` steps).

        A :class:`CrashRecord` carries the index of the *next* step at
        the moment the crash was injected, so on equal indices the
        crash precedes the step in the serialization order and renders
        first.
        """
        events: List[object] = sorted(
            list(self._steps) + list(self._crashes),
            key=lambda e: (e.index, isinstance(e, StepRecord)),
        )
        if limit is not None and len(events) > limit:
            shown = events[:limit]
            lines = [e.render() for e in shown]
            lines.append(f"... ({len(events) - limit} more steps)")
        else:
            lines = [e.render() for e in events]
        return "\n".join(lines)

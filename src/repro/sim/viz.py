"""Space-time rendering of run traces.

Distributed-computing arguments live and die by execution diagrams;
this module draws them in plain text so examples, bug reports, and
EXPERIMENTS.md can show *the actual interleaving* rather than describe
it.  One column per processor, time flowing downward, one row per step:

    step  P0                     P1
    ----  ---------------------  ---------------------
       0  w r0←'a'               .
       1  .                      w r1←'b'
       2  r r1→'b'               .
       3  W r0←'b' ⚐             .
       4  .                      r r0→'b' ✓b

``w``/``r`` are writes/reads, a capital ``W`` marks a coin-directed
write (the step where randomness acted), ``✓v`` marks a decision, and
``✗`` a crash.  Register contents snapshots can be interleaved every
``registers_every`` rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.ops import ReadOp, WriteOp
from repro.sim.trace import Trace


def _cell_for(record, coin_steps) -> str:
    if isinstance(record.op, ReadOp):
        text = f"r {record.op.register}→{record.result!r}"
    else:
        marker = "W" if record.index in coin_steps else "w"
        text = f"{marker} {record.op.register}←{record.op.value!r}"
    if record.decided is not None:
        text += f" ✓{record.decided!r}"
    return text


def render_space_time(
    trace: Trace,
    n_processes: int,
    width: int = 24,
    limit: Optional[int] = 60,
    coin_steps: Optional[Sequence[int]] = None,
) -> str:
    """Render a trace as a space-time diagram.

    ``coin_steps`` optionally marks which step indices consumed a coin
    flip (capitalized write marker); the kernel does not record this in
    the trace itself, so callers who care pass it in.
    """
    coin_set = set(coin_steps or ())
    events = sorted(
        list(trace.steps) + list(trace.crashes), key=lambda e: e.index
    )
    if limit is not None and len(events) > limit:
        shown, hidden = events[:limit], len(events) - limit
    else:
        shown, hidden = events, 0

    header = ["step"] + [f"P{p}" for p in range(n_processes)]
    widths = [4] + [width] * n_processes
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for event in shown:
        row = [str(event.index).rjust(4)]
        for p in range(n_processes):
            if getattr(event, "pid", None) == p:
                if hasattr(event, "op"):
                    cell = _cell_for(event, coin_set)
                else:
                    cell = "✗ crashed"
            else:
                cell = "."
            row.append(cell.ljust(width)[:width])
        lines.append("  ".join(row))
    if hidden:
        lines.append(f"... ({hidden} more steps)")
    return "\n".join(lines)


def render_register_timeline(trace: Trace, register: str,
                             limit: Optional[int] = 40) -> str:
    """The value history of one register, write by write."""
    writes = trace.writes_to(register)
    if limit is not None:
        writes = writes[:limit]
    lines = [f"register {register}:"]
    for w in writes:
        lines.append(
            f"  step {w.index:>4}: P{w.pid} wrote {w.op.value!r}"
        )
    if not writes:
        lines.append("  (never written)")
    return "\n".join(lines)


def render_decision_summary(trace: Trace) -> str:
    """Who decided what, when — the run's epilogue."""
    decisions = trace.decisions()
    if not decisions:
        return "no decisions in this trace"
    lines = []
    for d in decisions:
        lines.append(
            f"P{d.pid} decided {d.decided!r} at step {d.index}"
        )
    values = {d.decided for d in decisions}
    verdict = "consistent" if len(values) == 1 else "INCONSISTENT"
    lines.append(f"({len(decisions)} decisions, {verdict})")
    return "\n".join(lines)

"""The simulation kernel: serialized execution of an asynchronous system.

The paper observes (Section 1) that atomicity of the registers lets one
serialize any system execution into a single global order of operations,
and that the choice among the many possible serializations should be
viewed as an adversary.  The kernel *is* that serialized model: at each
step a scheduler names a processor, the kernel samples that processor's
probabilistic transition (coin flips resolve here, invisible to the
scheduler beforehand), executes the single register operation, and
applies the state transition.

Fail-stop crashes (the paper tolerates up to n−1 of them) are scheduler
actions: a crashed processor is simply never activated again, which in a
fully asynchronous model is indistinguishable from being infinitely
slow.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError, SimulationError
from repro.obs.hooks import BaseSink, make_hub
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng
from repro.sim.trace import CrashRecord, StepRecord, Trace


@dataclasses.dataclass(frozen=True)
class Activate:
    """Scheduler action: let processor ``pid`` take its next step."""

    pid: int


@dataclasses.dataclass(frozen=True)
class Crash:
    """Scheduler action: fail-stop processor ``pid`` (no step consumed)."""

    pid: int


SchedulerAction = Union[Activate, Crash]


class SchedulerView:
    """What a scheduler is allowed to see.

    The paper's adversary is the strongest possible: it has complete
    knowledge of every processor's internal state and all register
    contents — but it cannot predict future coin flips.  The view
    therefore exposes the full current configuration and the run's
    bookkeeping, while coins are sampled only after the scheduler has
    committed to an action.
    """

    def __init__(self, simulation: "Simulation") -> None:
        self._sim = simulation

    @property
    def protocol(self) -> Automaton:
        return self._sim.protocol

    @property
    def configuration(self) -> Configuration:
        return self._sim.configuration

    @property
    def layout(self) -> RegisterLayout:
        return self._sim.layout

    @property
    def step_index(self) -> int:
        return self._sim.step_index

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Processors that may still be activated (alive and undecided)."""
        return self._sim.enabled

    @property
    def alive(self) -> Tuple[int, ...]:
        """Processors that have not crashed (decided ones included)."""
        return self._sim.alive

    @property
    def crashed(self) -> frozenset:
        return self._sim.crashed

    @property
    def sched_consults(self) -> int:
        """How many times the scheduler has been consulted this run."""
        return self._sim.sched_consults

    def activations(self, pid: int) -> int:
        """How many steps processor ``pid`` has taken so far."""
        return self._sim.activations[pid]

    def state_of(self, pid: int) -> Hashable:
        return self._sim.configuration.states[pid]

    def register(self, name: str) -> Hashable:
        return self._sim.configuration.registers[self._sim.layout.index_of(name)]

    def decided(self, pid: int) -> Optional[Hashable]:
        return self._sim.decisions.get(pid)


@dataclasses.dataclass
class RunResult:
    """Summary of one finished run."""

    protocol_name: str
    inputs: Tuple[Hashable, ...]
    decisions: Dict[int, Hashable]
    activations: Dict[int, int]
    decision_activation: Dict[int, int]
    coin_flips: Dict[int, int]
    total_steps: int
    crashed: frozenset
    completed: bool
    trace: Optional[Trace]
    final_configuration: Configuration
    sched_consults: int = 0

    @property
    def all_decided(self) -> bool:
        """Did every non-crashed processor decide?"""
        n = len(self.inputs)
        return all(
            pid in self.decisions for pid in range(n) if pid not in self.crashed
        )

    @property
    def decided_values(self) -> set:
        return set(self.decisions.values())

    @property
    def consistent(self) -> bool:
        """At most one distinct decision value (paper's consistency)."""
        return len(self.decided_values) <= 1

    @property
    def nontrivial(self) -> bool:
        """Every decision is the input of some processor (nontriviality)."""
        inputs = set(self.inputs)
        return all(value in inputs for value in self.decided_values)

    def steps_to_decide(self, pid: int) -> Optional[int]:
        """Activations processor ``pid`` needed to decide (None if it didn't)."""
        return self.decision_activation.get(pid)

    def max_steps_to_decide(self) -> Optional[int]:
        """Worst per-processor decision cost in this run."""
        if not self.decision_activation:
            return None
        return max(self.decision_activation.values())


class Simulation:
    """One run of a protocol under a scheduler.

    Parameters
    ----------
    protocol:
        The :class:`~repro.sim.process.Automaton` to execute.
    inputs:
        One input value per processor (the contents of the internal
        input registers ``i_P``).
    scheduler:
        Any object with ``choose(view) -> Activate | Crash | int``
        (a bare int is accepted as shorthand for ``Activate``).
    rng:
        Root random stream; each processor gets an independent child
        stream so scheduling decisions do not perturb coin sequences.
    record_trace:
        Record a full :class:`~repro.sim.trace.Trace` (memory-heavy for
        long runs; off by default).
    strict:
        Validate branch distributions on every step.  Slightly slower;
        on by default since protocols here are research artifacts.
    sinks:
        Observability sinks (see :mod:`repro.obs`) to notify of kernel
        events.  With none attached (the default) the kernel keeps no
        hub at all and the hot path pays only ``is not None`` checks.
    """

    def __init__(
        self,
        protocol: Automaton,
        inputs: Sequence[Hashable],
        scheduler,
        rng: ReplayableRng,
        record_trace: bool = False,
        strict: bool = True,
        sinks: Optional[Sequence[BaseSink]] = None,
    ) -> None:
        if protocol.n_processes < 1:
            raise SimulationError("protocol declares no processors")
        self.protocol = protocol
        self.inputs: Tuple[Hashable, ...] = tuple(inputs)
        self.scheduler = scheduler
        self.layout = RegisterLayout.for_protocol(protocol)
        self.configuration = Configuration.initial(protocol, self.layout, self.inputs)
        self.step_index = 0
        self.activations: Dict[int, int] = {p: 0 for p in range(protocol.n_processes)}
        self.coin_flips: Dict[int, int] = {p: 0 for p in range(protocol.n_processes)}
        self.decisions: Dict[int, Hashable] = {}
        self.decision_activation: Dict[int, int] = {}
        self.crashed: frozenset = frozenset()
        self.sched_consults = 0
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self._obs = make_hub(sinks)
        self._strict = strict
        self._rng = rng
        self._proc_rngs = [
            rng.child("proc", pid) for pid in range(protocol.n_processes)
        ]
        self._view = SchedulerView(self)
        # Record decisions present in initial states (degenerate protocols).
        for pid, value in self.configuration.decisions(protocol).items():
            self.decisions[pid] = value
            self.decision_activation[pid] = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def alive(self) -> Tuple[int, ...]:
        return tuple(
            pid for pid in range(self.protocol.n_processes)
            if pid not in self.crashed
        )

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Alive processors that have not decided (decided ones halt)."""
        return tuple(
            pid for pid in self.alive if pid not in self.decisions
        )

    @property
    def finished(self) -> bool:
        """True when no processor can take a further step."""
        return not self.enabled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def attach_sink(self, sink: BaseSink) -> None:
        """Attach an observability sink to an already-built simulation."""
        existing = self._obs.sinks if self._obs is not None else ()
        self._obs = make_hub(existing + (sink,))

    def crash(self, pid: int) -> None:
        """Fail-stop processor ``pid``."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"processor {pid} already crashed")
        self.crashed = self.crashed | {pid}
        if self._obs is not None:
            self._obs.crash(pid, self.step_index)
        if self.trace is not None:
            self.trace.append_crash(CrashRecord(index=self.step_index, pid=pid))

    def step(self) -> StepRecord:
        """Execute one step, consulting the scheduler for who moves."""
        if self.finished:
            raise SimulationError("stepping a finished simulation")
        if self._obs is not None:
            return self._observed_step()
        self.sched_consults += 1
        action = self.scheduler.choose(self._view)
        # Allow schedulers to inject crashes; loop until an activation.
        while isinstance(action, Crash):
            self.crash(action.pid)
            if self.finished:
                raise SimulationError(
                    "scheduler crashed every remaining processor"
                )
            self.sched_consults += 1
            action = self.scheduler.choose(self._view)
        pid = action.pid if isinstance(action, Activate) else action
        return self.step_processor(pid)

    def _observed_step(self) -> StepRecord:
        """Instrumented twin of :meth:`step` (some sink is attached).

        Must stay semantically identical to the fast path — only hook
        emissions and (when a timing sink is attached) clock reads may
        differ.  ``test_obs_hooks`` asserts the two paths produce
        bit-identical runs.
        """
        obs = self._obs
        timing = obs.timing
        t0 = perf_counter() if timing else 0.0
        self.sched_consults += 1
        obs.sched(self.sched_consults)
        action = self.scheduler.choose(self._view)
        while isinstance(action, Crash):
            self.crash(action.pid)
            if self.finished:
                raise SimulationError(
                    "scheduler crashed every remaining processor"
                )
            self.sched_consults += 1
            obs.sched(self.sched_consults)
            action = self.scheduler.choose(self._view)
        if timing:
            obs.phase_time("sched", perf_counter() - t0)
        pid = action.pid if isinstance(action, Activate) else action
        return self.step_processor(pid)

    def step_processor(self, pid: int) -> StepRecord:
        """Execute one step of a specific processor (bypassing the scheduler)."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"scheduled crashed processor {pid}")
        if pid in self.decisions:
            raise SimulationError(f"scheduled decided processor {pid}")
        if self._obs is not None:
            return self._observed_step_processor(pid)

        state = self.configuration.states[pid]
        branches = self.protocol.branches(pid, state)
        if self._strict:
            self.protocol.validate_branches(branches)
        if len(branches) == 1:
            branch = branches[0]
        else:
            weights = [b.probability for b in branches]
            branch = branches[self._proc_rngs[pid].choice_index(weights)]
            self.coin_flips[pid] += 1
        op = branch.op

        if isinstance(op, ReadOp):
            slot = self.layout.check_read(pid, op.register)
            result: Hashable = self.configuration.registers[slot]
        elif isinstance(op, WriteOp):
            slot = self.layout.check_write(pid, op.register)
            self.configuration = self.configuration.with_register(slot, op.value)
            result = None
        else:
            raise ProtocolError(f"unknown operation {op!r}")

        new_state = self.protocol.observe(pid, state, op, result)
        self.configuration = self.configuration.with_state(pid, new_state)
        self.activations[pid] += 1

        decided = self.protocol.output(pid, new_state)
        if decided is not None:
            self.decisions[pid] = decided
            self.decision_activation[pid] = self.activations[pid]

        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result, decided=decided
        )
        self.step_index += 1
        if self.trace is not None:
            self.trace.append(record)
        return record

    def _observed_step_processor(self, pid: int) -> StepRecord:
        """Instrumented twin of :meth:`step_processor`'s execution body.

        Emission order is part of the journal schema contract:
        coin-flip, then read/write, then decision, then step —
        :func:`repro.obs.journal.replay_journal` re-dispatches in the
        same order.  Keep the state updates in lockstep with the fast
        path above.
        """
        obs = self._obs
        timing = obs.timing
        t_step = perf_counter() if timing else 0.0

        state = self.configuration.states[pid]
        branches = self.protocol.branches(pid, state)
        if self._strict:
            self.protocol.validate_branches(branches)
        if len(branches) == 1:
            branch = branches[0]
        else:
            weights = [b.probability for b in branches]
            branch = branches[self._proc_rngs[pid].choice_index(weights)]
            self.coin_flips[pid] += 1
            obs.coin_flip(pid, len(branches))
        op = branch.op
        t_trans = perf_counter() - t_step if timing else 0.0

        if isinstance(op, ReadOp):
            slot = self.layout.check_read(pid, op.register)
            result: Hashable = self.configuration.registers[slot]
            obs.read(pid, op.register, result)
        elif isinstance(op, WriteOp):
            slot = self.layout.check_write(pid, op.register)
            self.configuration = self.configuration.with_register(slot, op.value)
            result = None
            obs.write(pid, op.register, op.value)
        else:
            raise ProtocolError(f"unknown operation {op!r}")

        t1 = perf_counter() if timing else 0.0
        new_state = self.protocol.observe(pid, state, op, result)
        self.configuration = self.configuration.with_state(pid, new_state)
        self.activations[pid] += 1

        decided = self.protocol.output(pid, new_state)
        if timing:
            t_trans += perf_counter() - t1
        if decided is not None:
            self.decisions[pid] = decided
            self.decision_activation[pid] = self.activations[pid]
            obs.decision(pid, decided, self.activations[pid])

        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result, decided=decided
        )
        self.step_index += 1
        obs.step(record.index, pid, op, result, decided)
        if self.trace is not None:
            self.trace.append(record)
        if timing:
            obs.phase_time("transition", t_trans)
            obs.phase_time("step", perf_counter() - t_step)
        return record

    def run(self, max_steps: int,
            max_consults: Optional[int] = None) -> RunResult:
        """Run until every live processor decides, or a budget is hit.

        Two budgets bound the run.  ``max_steps`` bounds executed
        processor steps, as before.  ``max_consults`` additionally
        bounds *scheduler consultations*: a ``Crash`` action consumes
        no ``step_index``, so without this second budget a crash-happy
        adversary does unbounded scheduler work relative to
        ``max_steps``.  The default budget,
        ``max_steps + n_processes``, can never cut short a well-formed
        run (each step consumes one consultation and at most
        ``n_processes - 1`` crashes exist), so only pathological
        schedulers notice it.  The consumed count is reported on
        :attr:`RunResult.sched_consults` and via the observability
        metrics.
        """
        if max_consults is None:
            max_consults = max_steps + self.protocol.n_processes
        obs = self._obs
        if obs is not None:
            obs.run_start(self.protocol.name, self.protocol.n_processes,
                          self.inputs)
        while (not self.finished and self.step_index < max_steps
               and self.sched_consults < max_consults):
            self.step()
        result = self.result()
        if obs is not None:
            obs.run_end(result)
        return result

    def result(self) -> RunResult:
        """Snapshot the current run summary."""
        return RunResult(
            protocol_name=self.protocol.name,
            inputs=self.inputs,
            decisions=dict(self.decisions),
            activations=dict(self.activations),
            decision_activation=dict(self.decision_activation),
            coin_flips=dict(self.coin_flips),
            total_steps=self.step_index,
            crashed=self.crashed,
            completed=self.finished,
            trace=self.trace,
            final_configuration=self.configuration,
            sched_consults=self.sched_consults,
        )

    # ------------------------------------------------------------------

    def _check_pid(self, pid: int) -> None:
        if not isinstance(pid, int) or not 0 <= pid < self.protocol.n_processes:
            raise SimulationError(f"invalid processor id {pid!r}")

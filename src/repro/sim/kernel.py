"""The simulation kernel: serialized execution of an asynchronous system.

The paper observes (Section 1) that atomicity of the registers lets one
serialize any system execution into a single global order of operations,
and that the choice among the many possible serializations should be
viewed as an adversary.  The kernel *is* that serialized model: at each
step a scheduler names a processor, the kernel samples that processor's
probabilistic transition (coin flips resolve here, invisible to the
scheduler beforehand), executes the single register operation, and
applies the state transition.

Fail-stop crashes (the paper tolerates up to n−1 of them) are scheduler
actions: a crashed processor is simply never activated again, which in a
fully asynchronous model is indistinguishable from being infinitely
slow.

Two execution engines share this class (see docs/PERFORMANCE.md):

* the **fast path** (``engine="fast"``, the default) keeps processor states and
  register contents in mutable run-local buffers, resolves transitions
  through a :class:`~repro.sim.transitions.TransitionCache`, and
  materializes immutable :class:`~repro.sim.config.Configuration`
  snapshots lazily — only when a scheduler view, trace, sink, or
  :meth:`Simulation.result` asks for one;
* the **reference path** (``engine="reference"``) preserves the original
  kernel verbatim: an immutable configuration rebuilt via
  ``with_state``/``with_register`` on every step, a fresh
  ``protocol.branches()`` + validation + access check per step.

The two paths consume randomness identically (same streams, same draw
counts) and produce bit-identical :class:`RunResult`s; the differential
suites in ``tests/test_kernel_fastpath.py`` and the Hypothesis harness
enforce that.  The fast path additionally requires the
:class:`~repro.sim.transitions.TransitionCache` contract (hashable,
transition-stable states); protocols that violate it must pass
``engine="reference"``.

A third engine lives *outside* this class: :mod:`repro.ir` lowers
finite protocols to integer tables and steps whole Monte-Carlo batches
in lockstep (``engine="vector"`` on the batch surfaces).  It is held to
this kernel by the same differential discipline —
``tests/test_ir_lowering.py`` mirrors the fastpath suite, and this
kernel's :class:`RunResult` is the common currency all three engines
must produce bit-identically.  Its supported matrix and rng-draw
ordering contract are specified in docs/IR.md (§4, §5).

Register semantics are pluggable since PR 4 (see
:mod:`repro.sim.memory` and docs/MODEL.md): both engines route register
access through a :class:`~repro.sim.memory.MemoryModel`.  Under the
default :class:`~repro.sim.memory.AtomicMemory` every legal-read set is
a singleton and the fast path keeps its inlined buffer access (the
model's ``values`` list *is* the buffer), so atomic runs stay
bit-identical to the pre-memory-layer kernel.  Under ``regular`` /
``safe`` semantics a contended read has several legal return values and
the *scheduler* — the paper's adversary — picks one, either via its
``resolve_read`` hook or by pre-committing
``Activate(pid, read_value=...)``.  Either way the choice is made from
the current configuration only; coin flips are still sampled after the
scheduler commits, preserving the adaptive-adversary knowledge model.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.engines import resolve_sim_engine
from repro.errors import ProtocolError, SimulationError
from repro.obs.hooks import BaseSink, make_hub
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.memory import MemoryModel, MemorySpec, memory_spec
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng
from repro.sim.trace import CrashRecord, StepRecord, Trace
from repro.sim.transitions import TransitionCache


@dataclasses.dataclass(frozen=True)
class Activate:
    """Scheduler action: let processor ``pid`` take its next step.

    ``read_value`` optionally pre-commits the value a *contended weak-
    memory read* must return this step — the adversary's extended
    vocabulary under ``regular``/``safe`` semantics.  The value must be
    in the step's legal set (:meth:`SchedulerView.read_choices`);
    anything else — including pre-committing on a write step, or a
    value other than the register content under atomic semantics — is a
    scheduler bug surfaced as :class:`~repro.errors.SimulationError`.
    ``None`` (the default) leaves resolution to the scheduler's
    ``resolve_read`` hook.
    """

    pid: int
    read_value: Optional[Hashable] = None


@dataclasses.dataclass(frozen=True)
class Crash:
    """Scheduler action: fail-stop processor ``pid`` (no step consumed)."""

    pid: int


SchedulerAction = Union[Activate, Crash]


class SchedulerView:
    """What a scheduler is allowed to see.

    The paper's adversary is the strongest possible: it has complete
    knowledge of every processor's internal state and all register
    contents — but it cannot predict future coin flips.  The view
    therefore exposes the full current configuration and the run's
    bookkeeping, while coins are sampled only after the scheduler has
    committed to an action.

    ``state_of`` and ``register`` read the kernel's live buffers;
    ``configuration`` materializes (and caches, until the next step)
    an immutable snapshot — adaptive adversaries that map
    configurations to processors pay that materialization once per
    consultation, benign schedulers never do.
    """

    __slots__ = ("_sim",)

    def __init__(self, simulation: "Simulation") -> None:
        self._sim = simulation

    @property
    def protocol(self) -> Automaton:
        return self._sim.protocol

    @property
    def configuration(self) -> Configuration:
        return self._sim.configuration

    @property
    def layout(self) -> RegisterLayout:
        return self._sim.layout

    @property
    def step_index(self) -> int:
        return self._sim.step_index

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Processors that may still be activated (alive and undecided)."""
        return self._sim._enabled

    @property
    def alive(self) -> Tuple[int, ...]:
        """Processors that have not crashed (decided ones included)."""
        return self._sim._alive

    @property
    def crashed(self) -> frozenset:
        return self._sim.crashed

    @property
    def sched_consults(self) -> int:
        """How many times the scheduler has been consulted this run."""
        return self._sim.sched_consults

    def activations(self, pid: int) -> int:
        """How many steps processor ``pid`` has taken so far."""
        return self._sim.activations[pid]

    def state_of(self, pid: int) -> Hashable:
        return self._sim._state_of(pid)

    def register(self, name: str) -> Hashable:
        """The *committed* content of register ``name``."""
        return self._sim._register_value(self._sim.layout.index_of(name))

    def decided(self, pid: int) -> Optional[Hashable]:
        return self._sim.decisions.get(pid)

    @property
    def memory(self) -> MemoryModel:
        """The run's memory model (inspect, never mutate)."""
        return self._sim._memory

    @property
    def memory_semantics(self) -> str:
        """Semantics tag: ``"atomic"``, ``"regular"``, or ``"safe"``."""
        return self._sim._memory.semantics

    @property
    def read_resolutions(self) -> int:
        """Contended reads resolved so far (adversary had >1 choice)."""
        return self._sim.read_resolutions

    def read_choices(self, name: str) -> Tuple[Hashable, ...]:
        """Legal return values of a read of ``name`` right now.

        Committed value first (the ordering contract of
        :meth:`repro.sim.memory.MemoryModel.read_choices`).  Under
        atomic semantics this is always a singleton.
        """
        sim = self._sim
        return sim._memory.read_choices(sim.layout.index_of(name))


@dataclasses.dataclass
class RunResult:
    """Summary of one finished run."""

    protocol_name: str
    inputs: Tuple[Hashable, ...]
    decisions: Dict[int, Hashable]
    activations: Dict[int, int]
    decision_activation: Dict[int, int]
    coin_flips: Dict[int, int]
    total_steps: int
    crashed: frozenset
    completed: bool
    trace: Optional[Trace]
    final_configuration: Configuration
    sched_consults: int = 0
    #: Semantics tag of the run's memory model (docs/MODEL.md).
    memory: str = "atomic"
    #: Contended weak-memory reads the adversary resolved (always 0
    #: under atomic semantics, where legal sets are singletons).
    read_resolutions: int = 0

    @property
    def all_decided(self) -> bool:
        """Did every non-crashed processor decide?"""
        n = len(self.inputs)
        return all(
            pid in self.decisions for pid in range(n) if pid not in self.crashed
        )

    @property
    def decided_values(self) -> set:
        return set(self.decisions.values())

    @property
    def consistent(self) -> bool:
        """At most one distinct decision value (paper's consistency)."""
        return len(self.decided_values) <= 1

    @property
    def nontrivial(self) -> bool:
        """Every decision is the input of some processor (nontriviality)."""
        inputs = set(self.inputs)
        return all(value in inputs for value in self.decided_values)

    def steps_to_decide(self, pid: int) -> Optional[int]:
        """Activations processor ``pid`` needed to decide (None if it didn't)."""
        return self.decision_activation.get(pid)

    def max_steps_to_decide(self) -> Optional[int]:
        """Worst per-processor decision cost in this run."""
        if not self.decision_activation:
            return None
        return max(self.decision_activation.values())


class Simulation:
    """One run of a protocol under a scheduler.

    Parameters
    ----------
    protocol:
        The :class:`~repro.sim.process.Automaton` to execute.
    inputs:
        One input value per processor (the contents of the internal
        input registers ``i_P``).
    scheduler:
        Any object with ``choose(view) -> Activate | Crash | int``
        (a bare int is accepted as shorthand for ``Activate``).
    rng:
        Root random stream; each processor gets an independent child
        stream so scheduling decisions do not perturb coin sequences.
    record_trace:
        Record a full :class:`~repro.sim.trace.Trace` (memory-heavy for
        long runs; off by default).
    strict:
        Validate branch distributions.  The reference path validates on
        every step (as the seed kernel did); the fast path validates
        once per distinct automaton state, when its transition entry is
        built — equivalent for the transition-stable protocols the fast
        path requires.
    sinks:
        Observability sinks (see :mod:`repro.obs`) to notify of kernel
        events.  With none attached (the default) the kernel keeps no
        hub at all and the hot path pays only ``is not None`` checks.
    engine:
        Execution backend name resolved through the engine registry
        (:mod:`repro.engines`): ``"fast"`` (the default) or
        ``"reference"`` — the escape hatch for protocols that are not
        transition-stable, and the baseline the kernel benchmark gates
        against (see docs/PERFORMANCE.md).  The ``"vector"`` backend
        steps whole batches and cannot back a standalone simulation;
        use :func:`repro.core.consensus.solve` or the runner for it.
    fast:
        Deprecated boolean alias for ``engine`` (``True`` → ``"fast"``,
        ``False`` → ``"reference"``); passing it warns.
    cache:
        A :class:`~repro.sim.transitions.TransitionCache` to reuse
        (fast path only).  Sharing one across runs of equivalent
        protocols amortizes branch resolution, layout construction and
        initial-state derivation over a whole batch; omitted, the
        simulation builds a private cache.
    memory:
        Register semantics: ``None`` (atomic, the default), a name in
        ``("atomic", "regular", "safe")``, or a
        :class:`~repro.sim.memory.MemorySpec`.  See
        :mod:`repro.sim.memory` and docs/MODEL.md.
    """

    __slots__ = (
        "protocol", "inputs", "scheduler", "layout", "step_index",
        "activations", "coin_flips", "decisions", "decision_activation",
        "crashed", "sched_consults", "read_resolutions", "trace",
        "_fast", "_cache", "_states", "_registers", "_config_cache",
        "_memory", "_mem_atomic", "_read_resolver", "_forced_read",
        "_obs", "_strict", "_rng", "_proc_rngs", "_view",
        "_alive", "_enabled",
    )

    def __init__(
        self,
        protocol: Automaton,
        inputs: Sequence[Hashable],
        scheduler,
        rng: ReplayableRng,
        record_trace: bool = False,
        strict: bool = True,
        sinks: Optional[Sequence[BaseSink]] = None,
        fast: Optional[bool] = None,
        cache: Optional[TransitionCache] = None,
        memory: Union[None, str, MemorySpec] = None,
        engine: Optional[str] = None,
    ) -> None:
        info = resolve_sim_engine(engine, fast, caller="Simulation")
        if not info.standalone:
            raise SimulationError(
                f"engine {info.name!r} steps lockstep batches and cannot "
                f"back a standalone Simulation; use solve(engine="
                f"{info.name!r}) or ExperimentRunner(engine={info.name!r}) "
                f"instead (docs/IR.md)")
        fast = info.name == "fast"
        if protocol.n_processes < 1:
            raise SimulationError("protocol declares no processors")
        if cache is not None and not fast:
            raise SimulationError(
                "a TransitionCache requires the fast engine "
                "(engine='fast')"
            )
        n = protocol.n_processes
        self.protocol = protocol
        self.inputs: Tuple[Hashable, ...] = tuple(inputs)
        if len(self.inputs) != n:
            raise ValueError(
                f"expected {n} inputs, got {len(self.inputs)}"
            )
        self.scheduler = scheduler
        self._fast = fast
        spec = memory_spec(memory)
        initial_decisions: Optional[Dict[int, Hashable]] = None
        if fast:
            if cache is None:
                cache = TransitionCache(protocol, strict=strict)
            self._cache: Optional[TransitionCache] = cache
            self.layout = cache.layout
            # Mutable run-local buffers: the fast path's source of truth.
            states, initial_decisions = cache.initial_states(self.inputs)
            self._states: Optional[List[Hashable]] = list(states)
            # The memory model owns register storage; its committed-
            # values list doubles as the fast path's register buffer,
            # so the inlined atomic access below *is* model access.
            self._memory: MemoryModel = spec.build(self.layout)
            self._registers: Optional[List[Hashable]] = self._memory.values
            self._config_cache: Optional[Configuration] = None
        else:
            self._cache = None
            self.layout = RegisterLayout.for_protocol(protocol)
            # Reference path: the immutable configuration *is* the
            # state, rebuilt per step exactly as the seed kernel did —
            # with register access routed through the memory model
            # (identity resolution under the default AtomicMemory).
            self._states = None
            self._registers = None
            self._memory = spec.build(self.layout)
            self._config_cache = Configuration.initial(
                protocol, self.layout, self.inputs
            )
        self._mem_atomic = self._memory.atomic
        self._read_resolver = getattr(scheduler, "resolve_read", None)
        self._forced_read: Optional[Hashable] = None
        self.read_resolutions = 0
        self.step_index = 0
        self.activations: Dict[int, int] = dict.fromkeys(range(n), 0)
        self.coin_flips: Dict[int, int] = dict.fromkeys(range(n), 0)
        self.decisions: Dict[int, Hashable] = {}
        self.decision_activation: Dict[int, int] = {}
        self.crashed: frozenset = frozenset()
        self.sched_consults = 0
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self._obs = make_hub(sinks)
        self._strict = strict
        self._rng = rng
        self._proc_rngs = rng.children("proc", n)
        self._view = SchedulerView(self)
        # Incremental alive/enabled views: rebuilt only on the rare
        # crash/decide events, so `finished` and the scheduler API are
        # O(1) per step instead of the seed's two tuple rebuilds.
        self._alive: Tuple[int, ...] = tuple(range(n))
        self._enabled: Tuple[int, ...] = self._alive
        # Record decisions present in initial states (degenerate
        # protocols); the fast path gets them memoized from the cache.
        if initial_decisions is None:
            initial_decisions = {}
            for pid, state in enumerate(self._config_cache.states):
                value = protocol.output(pid, state)
                if value is not None:
                    initial_decisions[pid] = value
        if initial_decisions:
            self.decisions.update(initial_decisions)
            self.decision_activation.update(
                dict.fromkeys(initial_decisions, 0))
            self._enabled = tuple(
                pid for pid in self._alive if pid not in self.decisions
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def configuration(self) -> Configuration:
        """The current global snapshot (lazily materialized on the fast path).

        The reference path maintains this eagerly; the fast path builds
        it from the run buffers on first access after a step and caches
        it until the next mutation, so repeated reads within one
        scheduler consultation cost one construction.
        """
        config = self._config_cache
        if config is None:
            config = Configuration(
                states=tuple(self._states),
                registers=tuple(self._registers),
                mem=None if self._mem_atomic else self._memory.snapshot(),
            )
            self._config_cache = config
        return config

    @property
    def alive(self) -> Tuple[int, ...]:
        return self._alive

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Alive processors that have not decided (decided ones halt)."""
        return self._enabled

    @property
    def finished(self) -> bool:
        """True when no processor can take a further step."""
        return not self._enabled

    def _state_of(self, pid: int) -> Hashable:
        states = self._states
        if states is None:
            return self._config_cache.states[pid]
        return states[pid]

    def _register_value(self, slot: int) -> Hashable:
        registers = self._registers
        if registers is None:
            return self._config_cache.registers[slot]
        return registers[slot]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def attach_sink(self, sink: BaseSink) -> None:
        """Attach an observability sink to an already-built simulation."""
        existing = self._obs.sinks if self._obs is not None else ()
        self._obs = make_hub(existing + (sink,))

    def crash(self, pid: int) -> None:
        """Fail-stop processor ``pid``."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"processor {pid} already crashed")
        self.crashed = self.crashed | {pid}
        self._alive = tuple(p for p in self._alive if p != pid)
        self._enabled = tuple(p for p in self._enabled if p != pid)
        if self._obs is not None:
            self._obs.crash(pid, self.step_index)
        if self.trace is not None:
            self.trace.append_crash(CrashRecord(index=self.step_index, pid=pid))

    def _record_decision(self, pid: int, value: Hashable) -> None:
        self.decisions[pid] = value
        self.decision_activation[pid] = self.activations[pid]
        self._enabled = tuple([p for p in self._enabled if p != pid])

    def _normalize_action(self, action) -> int:
        """Resolve a scheduler action into the processor id to activate.

        The scheduler contract (`choose(view) -> Activate | Crash | int`)
        accepts a bare int as shorthand for ``Activate``; anything else
        is a scheduler bug surfaced as a :class:`SimulationError`
        (``bool`` is rejected even though it subclasses int — a
        scheduler returning True/False is confused, not naming P1/P0).
        """
        if isinstance(action, Activate):
            return action.pid
        if isinstance(action, int) and not isinstance(action, bool):
            return action
        raise SimulationError(
            f"scheduler returned {action!r}; expected Activate, Crash, "
            f"or a bare processor id (int)"
        )

    def step(self) -> StepRecord:
        """Execute one step, consulting the scheduler for who moves."""
        if self.finished:
            raise SimulationError("stepping a finished simulation")
        if self._obs is not None:
            return self._observed_step()
        self.sched_consults += 1
        action = self.scheduler.choose(self._view)
        # Allow schedulers to inject crashes; loop until an activation.
        while isinstance(action, Crash):
            self.crash(action.pid)
            if self.finished:
                raise SimulationError(
                    "scheduler crashed every remaining processor"
                )
            self.sched_consults += 1
            action = self.scheduler.choose(self._view)
        if isinstance(action, Activate) and action.read_value is not None:
            self._forced_read = action.read_value
        return self.step_processor(self._normalize_action(action))

    def _observed_step(self) -> StepRecord:
        """Instrumented twin of :meth:`step` (some sink is attached).

        Must stay semantically identical to the fast path — only hook
        emissions and (when a timing sink is attached) clock reads may
        differ.  ``test_obs_hooks`` asserts the two paths produce
        bit-identical runs.
        """
        obs = self._obs
        timing = obs.timing
        t0 = perf_counter() if timing else 0.0
        self.sched_consults += 1
        obs.sched(self.sched_consults)
        action = self.scheduler.choose(self._view)
        while isinstance(action, Crash):
            self.crash(action.pid)
            if self.finished:
                raise SimulationError(
                    "scheduler crashed every remaining processor"
                )
            self.sched_consults += 1
            obs.sched(self.sched_consults)
            action = self.scheduler.choose(self._view)
        if timing:
            obs.phase_time("sched", perf_counter() - t0)
        if isinstance(action, Activate) and action.read_value is not None:
            self._forced_read = action.read_value
        return self.step_processor(self._normalize_action(action))

    def step_processor(self, pid: int) -> StepRecord:
        """Execute one step of a specific processor (bypassing the scheduler)."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"scheduled crashed processor {pid}")
        if pid in self.decisions:
            raise SimulationError(f"scheduled decided processor {pid}")
        forced = self._forced_read
        if forced is not None:
            self._forced_read = None
        if self._obs is not None:
            return self._observed_step_processor(pid, forced)
        if self._fast:
            return self._step_fast(pid, forced)
        return self._step_reference(pid, forced)

    def _resolve_read(self, pid: int, register: str,
                      choices: Tuple[Hashable, ...],
                      forced: Optional[Hashable]) -> Hashable:
        """Pick a contended weak-memory read's return value.

        Precedence: an ``Activate(pid, read_value=...)`` pre-commitment
        wins; otherwise the scheduler's ``resolve_read`` hook is
        consulted; with neither, the committed value ``choices[0]`` is
        returned (the write "has not happened yet").  Any chosen value
        outside the legal set is a scheduler bug.  Called only when the
        legal set has >1 element or a value was pre-committed, so the
        atomic hot path never pays for it.
        """
        if len(choices) > 1:
            self.read_resolutions += 1
        if forced is not None:
            value = forced
        else:
            resolver = self._read_resolver
            if resolver is None:
                value = choices[0]
            else:
                value = resolver(self._view, pid, register, choices)
        if value not in choices:
            raise SimulationError(
                f"scheduler chose read value {value!r} for register "
                f"{register!r}, outside the legal set {choices!r}"
            )
        if self._obs is not None:
            self._obs.read_choices(pid, register, len(choices), value)
        return value

    @staticmethod
    def _check_forced_atomic(forced: Optional[Hashable], is_read: bool,
                             result: Hashable) -> None:
        """Validate an ``Activate.read_value`` under atomic semantics.

        Cold path: the only legal pre-commitment is the register's
        current content on a read step.
        """
        if forced is None:
            return
        if not is_read:
            raise SimulationError(
                f"scheduler pre-committed read value {forced!r} but the "
                f"step performed a write"
            )
        if forced != result:
            raise SimulationError(
                f"scheduler pre-committed read value {forced!r}, but "
                f"atomic memory returns {result!r}"
            )

    def _step_fast(self, pid: int,
                   forced: Optional[Hashable] = None) -> StepRecord:
        """One fast-path step, returning its :class:`StepRecord`.

        Mirrors the body of :meth:`_run_fast`'s inner loop; the two
        must stay in lockstep (this variant additionally allocates the
        record the public API promises and feeds the trace).
        """
        states = self._states
        state = states[pid]
        cache = self._cache
        atomic = self._mem_atomic
        if not atomic:
            self._memory.on_activate(pid)
        entry = cache.entries.get((pid, state))
        if entry is None:
            entry = cache.entry(pid, state)
        weights = entry.weights
        if weights is None:
            branch_index = 0
        else:
            branch_index = self._proc_rngs[pid].choice_index(
                weights, entry.total)
            self.coin_flips[pid] += 1
        op, is_read, slot, value = entry.execs[branch_index]
        if atomic:
            if is_read:
                result: Hashable = self._registers[slot]
            else:
                self._registers[slot] = value
                result = None
            if forced is not None:
                self._check_forced_atomic(forced, is_read, result)
        elif is_read:
            choices = self._memory.read_choices(slot)
            if len(choices) == 1 and forced is None:
                result = choices[0]
            else:
                result = self._resolve_read(pid, op.register, choices, forced)
        else:
            if forced is not None:
                raise SimulationError(
                    f"scheduler pre-committed read value {forced!r} but "
                    f"the step performed a write"
                )
            self._memory.write(pid, slot, value)
            result = None
        outcome = entry.outcomes[branch_index].get(result)
        if outcome is None:
            outcome = cache.outcome(pid, state, entry, branch_index, result)
        new_state, decided = outcome[0], outcome[1]
        states[pid] = new_state
        self._config_cache = None
        self.activations[pid] += 1
        if decided is not None:
            self._record_decision(pid, decided)
        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result,
            decided=decided,
        )
        self.step_index += 1
        if self.trace is not None:
            self.trace.append(record)
        return record

    def _step_reference(self, pid: int,
                        forced: Optional[Hashable] = None) -> StepRecord:
        """One reference-path step: the seed kernel's body.

        Immutable configuration rebuilt every step, fresh
        ``branches()`` + validation + access check every step, register
        access routed through the memory model (under the default
        :class:`~repro.sim.memory.AtomicMemory` the model resolution is
        the identity, so this is the seed kernel's behavior verbatim).
        This is the baseline the differential tests and the kernel
        benchmark compare the fast path against.
        """
        config = self._config_cache
        state = config.states[pid]
        memory = self._memory
        memory.on_activate(pid)
        branches = self.protocol.branches(pid, state)
        if self._strict:
            self.protocol.validate_branches(branches)
        if len(branches) == 1:
            branch = branches[0]
        else:
            weights = [b.probability for b in branches]
            branch = branches[self._proc_rngs[pid].choice_index(weights)]
            self.coin_flips[pid] += 1
        op = branch.op

        if isinstance(op, ReadOp):
            slot = self.layout.check_read(pid, op.register)
            choices = memory.read_choices(slot)
            if len(choices) == 1 and forced is None:
                result: Hashable = choices[0]
            else:
                result = self._resolve_read(pid, op.register, choices, forced)
        elif isinstance(op, WriteOp):
            slot = self.layout.check_write(pid, op.register)
            if forced is not None:
                raise SimulationError(
                    f"scheduler pre-committed read value {forced!r} but "
                    f"the step performed a write"
                )
            memory.write(pid, slot, op.value)
            result = None
        else:
            raise ProtocolError(f"unknown operation {op!r}")

        new_state = self.protocol.observe(pid, state, op, result)
        self._config_cache = Configuration(
            states=config.states[:pid] + (new_state,)
            + config.states[pid + 1:],
            registers=tuple(memory.values),
            mem=None if self._mem_atomic else memory.snapshot(),
        )
        self.activations[pid] += 1

        decided = self.protocol.output(pid, new_state)
        if decided is not None:
            self._record_decision(pid, decided)

        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result, decided=decided
        )
        self.step_index += 1
        if self.trace is not None:
            self.trace.append(record)
        return record

    def _observed_step_processor(self, pid: int,
                                 forced: Optional[Hashable] = None
                                 ) -> StepRecord:
        """Instrumented twin of :meth:`step_processor`'s execution body.

        Emission order is part of the journal schema contract:
        coin-flip, then read/write, then decision, then step —
        :func:`repro.obs.journal.replay_journal` re-dispatches in the
        same order (a contended weak read's ``read_choices`` emission
        lands between coin-flip and read, from :meth:`_resolve_read`).
        Keep the state updates in lockstep with the fast and reference
        bodies above (this one serves both engines: the ``self._fast``
        forks select cached vs. per-step resolution, and buffer vs.
        immutable-configuration state, with identical emissions either
        way).
        """
        obs = self._obs
        timing = obs.timing
        t_step = perf_counter() if timing else 0.0
        fast = self._fast
        atomic = self._mem_atomic
        memory = self._memory
        if not atomic:
            memory.on_activate(pid)

        if fast:
            state = self._states[pid]
            cache = self._cache
            entry = cache.entry(pid, state)
            branches = entry.branches
        else:
            state = self._config_cache.states[pid]
            entry = None
            branches = self.protocol.branches(pid, state)
            if self._strict:
                self.protocol.validate_branches(branches)
        if len(branches) == 1:
            branch_index = 0
        elif entry is not None:
            branch_index = self._proc_rngs[pid].choice_index(
                entry.weights, entry.total)
            self.coin_flips[pid] += 1
            obs.coin_flip(pid, len(branches))
        else:
            weights = [b.probability for b in branches]
            branch_index = self._proc_rngs[pid].choice_index(weights)
            self.coin_flips[pid] += 1
            obs.coin_flip(pid, len(branches))
        op = branches[branch_index].op
        t_trans = perf_counter() - t_step if timing else 0.0

        if fast:
            _, is_read, slot, value = entry.execs[branch_index]
        elif isinstance(op, ReadOp):
            is_read, value = True, None
            slot = self.layout.check_read(pid, op.register)
        elif isinstance(op, WriteOp):
            is_read, value = False, op.value
            slot = self.layout.check_write(pid, op.register)
        else:
            raise ProtocolError(f"unknown operation {op!r}")

        # The ``memory`` phase times weak-memory value resolution (legal
        # sets, adversary consultation, write installation into the
        # model).  Atomic semantics do no resolution, so the phase is
        # only emitted — and only costs clock reads — off the atomic
        # path; atomic runs attribute register access to ``kernel``.
        t_mem = 0.0
        if is_read:
            if atomic:
                result: Hashable = memory.values[slot]
                if forced is not None:
                    self._check_forced_atomic(forced, True, result)
            else:
                t2 = perf_counter() if timing else 0.0
                choices = memory.read_choices(slot)
                if len(choices) == 1 and forced is None:
                    result = choices[0]
                else:
                    result = self._resolve_read(
                        pid, op.register, choices, forced)
                if timing:
                    t_mem = perf_counter() - t2
            obs.read(pid, op.register, result)
        else:
            if forced is not None:
                self._check_forced_atomic(forced, False, None)
            if atomic:
                memory.write(pid, slot, value)
            else:
                t2 = perf_counter() if timing else 0.0
                memory.write(pid, slot, value)
                if timing:
                    t_mem = perf_counter() - t2
            result = None
            obs.write(pid, op.register, value)

        t1 = perf_counter() if timing else 0.0
        if fast:
            new_state, decided = self._cache.outcome(
                pid, state, entry, branch_index, result)[:2]
            self._states[pid] = new_state
            self._config_cache = None
        else:
            new_state = self.protocol.observe(pid, state, op, result)
            config = self._config_cache
            self._config_cache = Configuration(
                states=config.states[:pid] + (new_state,)
                + config.states[pid + 1:],
                registers=tuple(memory.values),
                mem=None if atomic else memory.snapshot(),
            )
            decided = self.protocol.output(pid, new_state)
        self.activations[pid] += 1

        if timing:
            t_trans += perf_counter() - t1
        if decided is not None:
            self._record_decision(pid, decided)
            obs.decision(pid, decided, self.activations[pid])

        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result, decided=decided
        )
        self.step_index += 1
        obs.step(record.index, pid, op, result, decided)
        if self.trace is not None:
            self.trace.append(record)
        if timing:
            if not atomic:
                obs.phase_time("memory", t_mem)
            obs.phase_time("transition", t_trans)
            obs.phase_time("step", perf_counter() - t_step)
        return record

    def _run_fast(self, max_steps: int, max_consults: int) -> None:
        """The fast path's inlined run loop (no sinks, no trace).

        Semantically identical to ``while not finished: self.step()``
        but with the per-step :class:`StepRecord` allocation skipped
        (nothing would consume it) and hot lookups bound to locals.
        Counters the :class:`SchedulerView` exposes (``step_index``,
        ``sched_consults``, ``activations``, ``coin_flips``,
        ``decisions``) stay live on ``self`` so schedulers observe
        exactly what they would under :meth:`step`.  Keep the step body
        in lockstep with :meth:`_step_fast`.
        """
        n = self.protocol.n_processes
        cache = self._cache
        entries = cache.entries
        build_entry = cache.entry
        resolve_outcome = cache.outcome
        states = self._states
        registers = self._registers
        atomic = self._mem_atomic
        memory = self._memory
        proc_rngs = self._proc_rngs
        choose = self.scheduler.choose
        view = self._view
        activations = self.activations
        coin_flips = self.coin_flips
        decisions = self.decisions
        # Each live processor's current transition entry: seeded lazily
        # from its state, then chained through the memoized outcomes'
        # next-entry pointers — no per-step state hashing.  Local to
        # this loop (nothing else mutates states while it runs).
        cur_entries: List[Optional[object]] = [None] * n
        # step_index/sched_consults are mirrored in locals and written
        # back to self *before* every scheduler consultation, so views
        # always read live values.
        step_index = self.step_index
        consults = self.sched_consults
        crashed = self.crashed

        while self._enabled and step_index < max_steps \
                and consults < max_consults:
            consults += 1
            self.sched_consults = consults
            action = choose(view)
            forced = None
            cls = action.__class__
            if cls is int:
                pid = action
            elif cls is Activate:
                pid = action.pid
                forced = action.read_value
            else:
                # Cold branch: crash injections and exotic action types.
                while isinstance(action, Crash):
                    self.crash(action.pid)
                    if not self._enabled:
                        raise SimulationError(
                            "scheduler crashed every remaining processor"
                        )
                    consults += 1
                    self.sched_consults = consults
                    action = choose(view)
                crashed = self.crashed
                pid = self._normalize_action(action)
                if isinstance(action, Activate):
                    forced = action.read_value
            if pid.__class__ is not int or not 0 <= pid < n:
                self._check_pid(pid)
            if pid in crashed:
                raise SimulationError(f"scheduled crashed processor {pid}")
            if pid in decisions:
                raise SimulationError(f"scheduled decided processor {pid}")

            if not atomic:
                memory.on_activate(pid)
            entry = cur_entries[pid]
            if entry is None:
                state = states[pid]
                entry = entries.get((pid, state))
                if entry is None:
                    entry = build_entry(pid, state)
            weights = entry.weights
            if weights is None:
                branch_index = 0
            else:
                branch_index = proc_rngs[pid].choice_index(
                    weights, entry.total)
                coin_flips[pid] += 1
            op, is_read, slot, value = entry.execs[branch_index]
            if atomic:
                if is_read:
                    result = registers[slot]
                else:
                    registers[slot] = value
                    result = None
                if forced is not None:
                    self._check_forced_atomic(forced, is_read, result)
            elif is_read:
                choices = memory.read_choices(slot)
                if len(choices) == 1 and forced is None:
                    result = choices[0]
                else:
                    result = self._resolve_read(
                        pid, op.register, choices, forced)
            else:
                if forced is not None:
                    self._check_forced_atomic(forced, False, None)
                memory.write(pid, slot, value)
                result = None
            outcome = entry.outcomes[branch_index].get(result)
            if outcome is None:
                outcome = resolve_outcome(pid, states[pid], entry,
                                          branch_index, result)
            states[pid] = outcome[0]
            cur_entries[pid] = outcome[2]
            self._config_cache = None
            activations[pid] += 1
            step_index += 1
            self.step_index = step_index
            decided = outcome[1]
            if decided is not None:
                self._record_decision(pid, decided)

    def run(self, max_steps: int,
            max_consults: Optional[int] = None) -> RunResult:
        """Run until every live processor decides, or a budget is hit.

        Two budgets bound the run.  ``max_steps`` bounds executed
        processor steps, as before.  ``max_consults`` additionally
        bounds *scheduler consultations*: a ``Crash`` action consumes
        no ``step_index``, so without this second budget a crash-happy
        adversary does unbounded scheduler work relative to
        ``max_steps``.  The default budget,
        ``max_steps + n_processes``, can never cut short a well-formed
        run (each step consumes one consultation and at most
        ``n_processes - 1`` crashes exist), so only pathological
        schedulers notice it.  The consumed count is reported on
        :attr:`RunResult.sched_consults` and via the observability
        metrics.
        """
        if max_consults is None:
            max_consults = max_steps + self.protocol.n_processes
        obs = self._obs
        if obs is not None:
            obs.run_start(self.protocol.name, self.protocol.n_processes,
                          self.inputs)
        if self._fast and obs is None and self.trace is None:
            self._run_fast(max_steps, max_consults)
        else:
            while (not self.finished and self.step_index < max_steps
                   and self.sched_consults < max_consults):
                self.step()
        result = self.result()
        if obs is not None:
            obs.run_end(result)
        return result

    def result(self) -> RunResult:
        """Snapshot the current run summary."""
        return RunResult(
            protocol_name=self.protocol.name,
            inputs=self.inputs,
            decisions=dict(self.decisions),
            activations=dict(self.activations),
            decision_activation=dict(self.decision_activation),
            coin_flips=dict(self.coin_flips),
            total_steps=self.step_index,
            crashed=self.crashed,
            completed=self.finished,
            trace=self.trace,
            final_configuration=self.configuration,
            sched_consults=self.sched_consults,
            memory=self._memory.semantics,
            read_resolutions=self.read_resolutions,
        )

    # ------------------------------------------------------------------

    def _check_pid(self, pid: int) -> None:
        if not isinstance(pid, int) or not 0 <= pid < self.protocol.n_processes:
            raise SimulationError(f"invalid processor id {pid!r}")

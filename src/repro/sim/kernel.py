"""The simulation kernel: serialized execution of an asynchronous system.

The paper observes (Section 1) that atomicity of the registers lets one
serialize any system execution into a single global order of operations,
and that the choice among the many possible serializations should be
viewed as an adversary.  The kernel *is* that serialized model: at each
step a scheduler names a processor, the kernel samples that processor's
probabilistic transition (coin flips resolve here, invisible to the
scheduler beforehand), executes the single register operation, and
applies the state transition.

Fail-stop crashes (the paper tolerates up to n−1 of them) are scheduler
actions: a crashed processor is simply never activated again, which in a
fully asynchronous model is indistinguishable from being infinitely
slow.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError, SimulationError
from repro.sim.config import Configuration, RegisterLayout
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng
from repro.sim.trace import CrashRecord, StepRecord, Trace


@dataclasses.dataclass(frozen=True)
class Activate:
    """Scheduler action: let processor ``pid`` take its next step."""

    pid: int


@dataclasses.dataclass(frozen=True)
class Crash:
    """Scheduler action: fail-stop processor ``pid`` (no step consumed)."""

    pid: int


SchedulerAction = Union[Activate, Crash]


class SchedulerView:
    """What a scheduler is allowed to see.

    The paper's adversary is the strongest possible: it has complete
    knowledge of every processor's internal state and all register
    contents — but it cannot predict future coin flips.  The view
    therefore exposes the full current configuration and the run's
    bookkeeping, while coins are sampled only after the scheduler has
    committed to an action.
    """

    def __init__(self, simulation: "Simulation") -> None:
        self._sim = simulation

    @property
    def protocol(self) -> Automaton:
        return self._sim.protocol

    @property
    def configuration(self) -> Configuration:
        return self._sim.configuration

    @property
    def layout(self) -> RegisterLayout:
        return self._sim.layout

    @property
    def step_index(self) -> int:
        return self._sim.step_index

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Processors that may still be activated (alive and undecided)."""
        return self._sim.enabled

    @property
    def alive(self) -> Tuple[int, ...]:
        """Processors that have not crashed (decided ones included)."""
        return self._sim.alive

    @property
    def crashed(self) -> frozenset:
        return self._sim.crashed

    def activations(self, pid: int) -> int:
        """How many steps processor ``pid`` has taken so far."""
        return self._sim.activations[pid]

    def state_of(self, pid: int) -> Hashable:
        return self._sim.configuration.states[pid]

    def register(self, name: str) -> Hashable:
        return self._sim.configuration.registers[self._sim.layout.index_of(name)]

    def decided(self, pid: int) -> Optional[Hashable]:
        return self._sim.decisions.get(pid)


@dataclasses.dataclass
class RunResult:
    """Summary of one finished run."""

    protocol_name: str
    inputs: Tuple[Hashable, ...]
    decisions: Dict[int, Hashable]
    activations: Dict[int, int]
    decision_activation: Dict[int, int]
    coin_flips: Dict[int, int]
    total_steps: int
    crashed: frozenset
    completed: bool
    trace: Optional[Trace]
    final_configuration: Configuration

    @property
    def all_decided(self) -> bool:
        """Did every non-crashed processor decide?"""
        n = len(self.inputs)
        return all(
            pid in self.decisions for pid in range(n) if pid not in self.crashed
        )

    @property
    def decided_values(self) -> set:
        return set(self.decisions.values())

    @property
    def consistent(self) -> bool:
        """At most one distinct decision value (paper's consistency)."""
        return len(self.decided_values) <= 1

    @property
    def nontrivial(self) -> bool:
        """Every decision is the input of some processor (nontriviality)."""
        inputs = set(self.inputs)
        return all(value in inputs for value in self.decided_values)

    def steps_to_decide(self, pid: int) -> Optional[int]:
        """Activations processor ``pid`` needed to decide (None if it didn't)."""
        return self.decision_activation.get(pid)

    def max_steps_to_decide(self) -> Optional[int]:
        """Worst per-processor decision cost in this run."""
        if not self.decision_activation:
            return None
        return max(self.decision_activation.values())


class Simulation:
    """One run of a protocol under a scheduler.

    Parameters
    ----------
    protocol:
        The :class:`~repro.sim.process.Automaton` to execute.
    inputs:
        One input value per processor (the contents of the internal
        input registers ``i_P``).
    scheduler:
        Any object with ``choose(view) -> Activate | Crash | int``
        (a bare int is accepted as shorthand for ``Activate``).
    rng:
        Root random stream; each processor gets an independent child
        stream so scheduling decisions do not perturb coin sequences.
    record_trace:
        Record a full :class:`~repro.sim.trace.Trace` (memory-heavy for
        long runs; off by default).
    strict:
        Validate branch distributions on every step.  Slightly slower;
        on by default since protocols here are research artifacts.
    """

    def __init__(
        self,
        protocol: Automaton,
        inputs: Sequence[Hashable],
        scheduler,
        rng: ReplayableRng,
        record_trace: bool = False,
        strict: bool = True,
    ) -> None:
        if protocol.n_processes < 1:
            raise SimulationError("protocol declares no processors")
        self.protocol = protocol
        self.inputs: Tuple[Hashable, ...] = tuple(inputs)
        self.scheduler = scheduler
        self.layout = RegisterLayout.for_protocol(protocol)
        self.configuration = Configuration.initial(protocol, self.layout, self.inputs)
        self.step_index = 0
        self.activations: Dict[int, int] = {p: 0 for p in range(protocol.n_processes)}
        self.coin_flips: Dict[int, int] = {p: 0 for p in range(protocol.n_processes)}
        self.decisions: Dict[int, Hashable] = {}
        self.decision_activation: Dict[int, int] = {}
        self.crashed: frozenset = frozenset()
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self._strict = strict
        self._rng = rng
        self._proc_rngs = [
            rng.child("proc", pid) for pid in range(protocol.n_processes)
        ]
        self._view = SchedulerView(self)
        # Record decisions present in initial states (degenerate protocols).
        for pid, value in self.configuration.decisions(protocol).items():
            self.decisions[pid] = value
            self.decision_activation[pid] = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def alive(self) -> Tuple[int, ...]:
        return tuple(
            pid for pid in range(self.protocol.n_processes)
            if pid not in self.crashed
        )

    @property
    def enabled(self) -> Tuple[int, ...]:
        """Alive processors that have not decided (decided ones halt)."""
        return tuple(
            pid for pid in self.alive if pid not in self.decisions
        )

    @property
    def finished(self) -> bool:
        """True when no processor can take a further step."""
        return not self.enabled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Fail-stop processor ``pid``."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"processor {pid} already crashed")
        self.crashed = self.crashed | {pid}
        if self.trace is not None:
            self.trace.append_crash(CrashRecord(index=self.step_index, pid=pid))

    def step(self) -> StepRecord:
        """Execute one step, consulting the scheduler for who moves."""
        if self.finished:
            raise SimulationError("stepping a finished simulation")
        action = self.scheduler.choose(self._view)
        # Allow schedulers to inject crashes; loop until an activation.
        while isinstance(action, Crash):
            self.crash(action.pid)
            if self.finished:
                raise SimulationError(
                    "scheduler crashed every remaining processor"
                )
            action = self.scheduler.choose(self._view)
        pid = action.pid if isinstance(action, Activate) else action
        return self.step_processor(pid)

    def step_processor(self, pid: int) -> StepRecord:
        """Execute one step of a specific processor (bypassing the scheduler)."""
        self._check_pid(pid)
        if pid in self.crashed:
            raise SimulationError(f"scheduled crashed processor {pid}")
        if pid in self.decisions:
            raise SimulationError(f"scheduled decided processor {pid}")

        state = self.configuration.states[pid]
        branches = self.protocol.branches(pid, state)
        if self._strict:
            self.protocol.validate_branches(branches)
        if len(branches) == 1:
            branch = branches[0]
        else:
            weights = [b.probability for b in branches]
            branch = branches[self._proc_rngs[pid].choice_index(weights)]
            self.coin_flips[pid] += 1
        op = branch.op

        if isinstance(op, ReadOp):
            slot = self.layout.check_read(pid, op.register)
            result: Hashable = self.configuration.registers[slot]
        elif isinstance(op, WriteOp):
            slot = self.layout.check_write(pid, op.register)
            self.configuration = self.configuration.with_register(slot, op.value)
            result = None
        else:
            raise ProtocolError(f"unknown operation {op!r}")

        new_state = self.protocol.observe(pid, state, op, result)
        self.configuration = self.configuration.with_state(pid, new_state)
        self.activations[pid] += 1

        decided = self.protocol.output(pid, new_state)
        if decided is not None:
            self.decisions[pid] = decided
            self.decision_activation[pid] = self.activations[pid]

        record = StepRecord(
            index=self.step_index, pid=pid, op=op, result=result, decided=decided
        )
        self.step_index += 1
        if self.trace is not None:
            self.trace.append(record)
        return record

    def run(self, max_steps: int) -> RunResult:
        """Run until every live processor decides, or ``max_steps`` elapse."""
        while not self.finished and self.step_index < max_steps:
            self.step()
        return self.result()

    def result(self) -> RunResult:
        """Snapshot the current run summary."""
        return RunResult(
            protocol_name=self.protocol.name,
            inputs=self.inputs,
            decisions=dict(self.decisions),
            activations=dict(self.activations),
            decision_activation=dict(self.decision_activation),
            coin_flips=dict(self.coin_flips),
            total_steps=self.step_index,
            crashed=self.crashed,
            completed=self.finished,
            trace=self.trace,
            final_configuration=self.configuration,
        )

    # ------------------------------------------------------------------

    def _check_pid(self, pid: int) -> None:
        if not isinstance(pid, int) or not 0 <= pid < self.protocol.n_processes:
            raise SimulationError(f"invalid processor id {pid!r}")

"""Pluggable register semantics: atomic, regular, and safe memory.

The paper's model (Section 2) assumes *atomic* registers and defends
the assumption only by citation — atomicity is what lets every system
execution be serialized into one global operation order.  The register
construction tower (:mod:`repro.registers`) makes the weaker classes of
Lamport's hierarchy executable in the interval world, but until this
layer existed the simulation kernel itself hard-coded atomicity.

A :class:`MemoryModel` owns the register storage of one run and decides
what values a read may legally return:

* :class:`AtomicMemory` — a read returns exactly the last written
  value.  The legal-value set is always a singleton, so the adversary
  has no choice and the kernel's fast path keeps its inlined
  ``registers[slot]`` access (the model's ``values`` list *is* the fast
  path's buffer; semantically every access still goes through the
  model, the atomic resolution is just the identity).
* :class:`RegularMemory` — a write issued by processor P becomes
  *pending* and commits at the start of P's next activation (a crashed
  or halted writer leaves its write pending forever, i.e. the write
  overlaps every later read — the standard serialization of "the write
  is still in flight").  A read of a contended register may return the
  committed (old) value or the new value of any overlapping write; the
  *adversary* picks which (see below).
* :class:`SafeMemory` — regular, plus garbage: a read that overlaps a
  write may additionally return the register's initial value even when
  it was long overwritten.  (Lamport's safe registers allow arbitrary
  domain values under contention; register specs here declare no value
  domain, so the observable domain ``{initial} ∪ {committed} ∪
  {pending}`` is used.  For the ⊥-initialized paper registers the
  initial value is exactly the "garbage" a consistency argument must
  survive, and the choice keeps the model memoryless — a configuration
  plus its pending-write snapshot fully determines the legal sets,
  which is what lets the model checker branch over them.)

Who picks the returned value?  The scheduler (= the paper's adversary):
the kernel consults ``scheduler.resolve_read(view, pid, register,
choices)`` whenever a legal set has more than one element, and a
scheduler may also pre-commit the value with
``Activate(pid, read_value=...)``.  Both channels see only the current
configuration — never future coin flips — so the paper's
adaptive-adversary knowledge model is intact.

Ordering contract: :meth:`MemoryModel.read_choices` tuples are
deterministic — ``choices[0]`` is always the committed value, followed
by pending-write values in writer order, then (safe only) the initial
value.  Deterministic ordering is what keeps runs replayable and lets
the default resolution (``choices[0]``) behave like "the write has not
happened yet".

:class:`MemorySpec` is the picklable fingerprint (a name) that threads
the choice through ``ExperimentRunner``, ``BatchSpec`` workers,
``solve`` and the ``--memory`` CLI flag, exactly like
:class:`repro.parallel.tasks.ProtocolSpec` does for protocols.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.config import RegisterLayout

#: Memory-semantics names accepted by :class:`MemorySpec` (CLI vocabulary).
MEMORY_NAMES = ("atomic", "regular", "safe")


class MemoryModel:
    """Base class: owns one run's register storage.

    ``values[slot]`` is the *committed* content of each register — what
    a quiescent read returns, what :class:`SchedulerView.register`
    shows, and what :class:`~repro.sim.config.Configuration.registers`
    snapshots.  Subclasses add pending-write bookkeeping and define the
    legal read sets.

    The kernel drives the model with exactly three calls per step:
    ``on_activate(pid)`` at the start of ``pid``'s step (commits
    ``pid``'s pending write, if any), then one of ``write(pid, slot,
    value)`` or ``read_choices(slot)``.  ``snapshot``/``restore``
    round-trip the extra (non-``values``) state for the model checker.
    """

    #: Semantics tag recorded on results and journals.
    semantics: str = "abstract"
    #: True only for :class:`AtomicMemory`; lets the kernel keep its
    #: inlined buffer access for the zero-cost default.
    atomic: bool = False

    def __init__(self, layout: RegisterLayout) -> None:
        self.layout = layout
        self._initial: Tuple[Hashable, ...] = layout.initial_values()
        self.values: List[Hashable] = list(self._initial)

    def on_activate(self, pid: int) -> None:
        """``pid`` is taking a step: commit its pending write, if any."""
        raise NotImplementedError

    def write(self, pid: int, slot: int, value: Hashable) -> None:
        """``pid`` writes ``value`` into register ``slot``."""
        raise NotImplementedError

    def read_choices(self, slot: int) -> Tuple[Hashable, ...]:
        """Legal return values for a read of ``slot``, committed first."""
        raise NotImplementedError

    def snapshot(self) -> Optional[Hashable]:
        """Hashable extra state beyond ``values`` (``None`` if quiescent).

        Stored as :attr:`Configuration.mem`; ``None`` when there are no
        pending writes, so quiescent weak-memory configurations compare
        equal to atomic ones.
        """
        raise NotImplementedError

    def restore(self, registers, snap: Optional[Hashable]) -> None:
        """Reset to the state ``(registers, snap)`` describes (in place).

        Mutates ``self.values`` in place rather than rebinding it — the
        kernel's fast path aliases the list as its register buffer.
        """
        raise NotImplementedError


class AtomicMemory(MemoryModel):
    """The paper's model: every write commits instantly.

    Legal read sets are always singletons — the last written value —
    so runs under :class:`AtomicMemory` are bit-identical to the
    pre-memory-layer kernel (asserted by the differential suite).
    """

    semantics = "atomic"
    atomic = True

    def on_activate(self, pid: int) -> None:
        pass

    def write(self, pid: int, slot: int, value: Hashable) -> None:
        self.values[slot] = value

    def read_choices(self, slot: int) -> Tuple[Hashable, ...]:
        return (self.values[slot],)

    def snapshot(self) -> Optional[Hashable]:
        return None

    def restore(self, registers, snap: Optional[Hashable]) -> None:
        if snap is not None:
            raise SimulationError(
                f"atomic memory carries no snapshot state, got {snap!r}"
            )
        self.values[:] = registers


class RegularMemory(MemoryModel):
    """Lamport-regular registers in the serialized kernel.

    A write by P is pending from the step that issues it until the
    start of P's next activation (its commit point).  Because the
    commit happens before P's next operation, each writer has at most
    one pending write at a time, and the pending map is tiny.

    A read of ``slot`` may return the committed value or the value of
    any write currently pending on that slot — exactly the "old value
    or any overlapping write's new value" regularity condition, with
    "overlap" serialized as "issued but not yet committed".
    """

    semantics = "regular"
    atomic = False

    def __init__(self, layout: RegisterLayout) -> None:
        super().__init__(layout)
        # writer pid -> (slot, value); at most one entry per writer.
        self._pending: Dict[int, Tuple[int, Hashable]] = {}

    def on_activate(self, pid: int) -> None:
        if self._pending:
            entry = self._pending.pop(pid, None)
            if entry is not None:
                self.values[entry[0]] = entry[1]

    def write(self, pid: int, slot: int, value: Hashable) -> None:
        # on_activate(pid) ran at the start of this step, so pid's
        # previous write (if any) is already committed.
        self._pending[pid] = (slot, value)

    def read_choices(self, slot: int) -> Tuple[Hashable, ...]:
        committed = self.values[slot]
        pending = self._pending
        if not pending:
            return (committed,)
        choices = [committed]
        for writer in sorted(pending):
            s, v = pending[writer]
            if s == slot and v not in choices:
                choices.append(v)
        return tuple(choices)

    def pending_writes(self, slot: int) -> Tuple[Hashable, ...]:
        """Values of writes currently pending on ``slot`` (writer order)."""
        return tuple(
            v for w in sorted(self._pending)
            for s, v in (self._pending[w],) if s == slot
        )

    def snapshot(self) -> Optional[Hashable]:
        pending = self._pending
        if not pending:
            return None
        return tuple((w,) + pending[w] for w in sorted(pending))

    def restore(self, registers, snap: Optional[Hashable]) -> None:
        self.values[:] = registers
        self._pending = (
            {w: (s, v) for w, s, v in snap} if snap else {}
        )


class SafeMemory(RegularMemory):
    """Safe registers: contended reads may additionally return garbage.

    Quiescent reads behave like regular (and atomic) reads; a read
    overlapping a pending write on its slot may also return the
    register's *initial* value — the canonical garbage for the
    ⊥-initialized paper registers (see the module docstring for why the
    garbage domain is restricted to observable values).  Crucially the
    garbage choice is legal even when the committed and pending values
    agree, which is where safe registers genuinely diverge from
    regular ones (a rewrite of the same value exposes ⊥ again).
    """

    semantics = "safe"

    def read_choices(self, slot: int) -> Tuple[Hashable, ...]:
        committed = self.values[slot]
        pending = self._pending
        if not pending:
            return (committed,)
        choices = [committed]
        contended = False
        for writer in sorted(pending):
            s, v = pending[writer]
            if s == slot:
                contended = True
                if v not in choices:
                    choices.append(v)
        if contended:
            garbage = self._initial[slot]
            if garbage not in choices:
                choices.append(garbage)
        return tuple(choices)


_MODELS = {
    "atomic": AtomicMemory,
    "regular": RegularMemory,
    "safe": SafeMemory,
}


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Picklable fingerprint of a memory semantics (see module docs).

    Frozen, hashable, and serializes as one string — safe to embed in
    :class:`repro.parallel.engine.BatchSpec` and ship across a
    ``multiprocessing`` spawn boundary.  ``build(layout)`` constructs a
    fresh per-run :class:`MemoryModel`.
    """

    name: str = "atomic"

    def __post_init__(self) -> None:
        if self.name not in _MODELS:
            raise ValueError(
                f"unknown memory semantics {self.name!r} "
                f"(expected one of {MEMORY_NAMES})"
            )

    @property
    def atomic(self) -> bool:
        return self.name == "atomic"

    def build(self, layout: RegisterLayout) -> MemoryModel:
        return _MODELS[self.name](layout)


#: Shared default instances (specs are immutable, sharing is free).
ATOMIC = MemorySpec("atomic")
REGULAR = MemorySpec("regular")
SAFE = MemorySpec("safe")


def memory_spec(memory) -> MemorySpec:
    """Normalize ``None`` / a name / a spec into a :class:`MemorySpec`."""
    if memory is None:
        return ATOMIC
    if isinstance(memory, MemorySpec):
        return memory
    if isinstance(memory, str):
        return MemorySpec(memory)
    raise TypeError(
        f"memory must be None, a semantics name {MEMORY_NAMES}, or a "
        f"MemorySpec; got {memory!r}"
    )

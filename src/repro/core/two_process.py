"""The two-processor protocol (paper Section 4, Figure 1).

Each processor P_i owns a single-writer single-reader register r_i
holding its currently preferred decision value.  The protocol, verbatim
from Figure 1 (for P_0)::

    (0) write r0 <- input
        repeat
    (1)     read v0 <- r1
            if v0 = r0 or v0 = ⊥ then decide r0 and quit
    (2)     else flip an unbiased coin:
               Heads: rewrite r0 <- r0
               Tails: write  r0 <- v0
        until decision is made

The paper proves:

* **Theorem 6 (consistency)** — the first decider saw both registers
  equal to v; the other processor must read the first's register (now
  frozen at v) before deciding, so it decides v too.
* **Theorem 7 (randomized termination)** — against any adaptive
  adversary, every pair of write steps reaches a univalent configuration
  with probability ≥ 1/4; P(not decided after k steps) ≤ (1/4)^(k/2).
* **Corollary** — expected steps to decide ≤ 2 + 4·2 = 10.

The ``rewrite`` on heads is superfluous for correctness (footnote 2 of
the paper) but kept because the step counts above assume it; pass
``skip_redundant_rewrite=True`` to benchmark the optimized variant.

States expose ``pc`` in {"init", "read", "write"} so the adaptive
adversaries of :mod:`repro.sched.adversary` can see which operation a
processor will perform next — the knowledge model Theorem 7 grants the
scheduler.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


@dataclasses.dataclass(frozen=True)
class TPState:
    """Processor state of the two-processor protocol.

    ``pc``:
        "init"  — about to perform line (0)'s initial write;
        "read"  — about to perform line (1)'s read;
        "write" — about to perform line (2)'s coin-directed write;
        "done"  — decided (output holds the decision).
    ``pref``:
        the processor's current preferred value (mirrors its register).
    ``last_read``:
        the value read from the other register in the current iteration.
    """

    pc: str
    pref: Hashable
    last_read: Hashable = BOTTOM
    output: Optional[Hashable] = None


class TwoProcessProtocol(ConsensusProtocol):
    """Figure 1's randomized coordination protocol for two processors.

    Parameters
    ----------
    values:
        Optional input domain (any hashable values; with two processors
        at most two distinct inputs occur anyway).
    p_heads:
        Coin bias for the ablation benchmark; Figure 1 uses a fair coin.
        Heads keeps the processor's own preference.
    skip_redundant_rewrite:
        If True, a heads flip performs no write at all and the
        processor goes straight back to reading (footnote 2's remark
        that the rewrite is superfluous).  Changes step counts, not
        correctness.
    """

    n_processes = 2

    def __init__(
        self,
        values: Optional[Sequence[Hashable]] = None,
        p_heads: float = 0.5,
        skip_redundant_rewrite: bool = False,
    ) -> None:
        super().__init__(values)
        if not 0.0 < p_heads < 1.0:
            raise ValueError("p_heads must be in (0, 1)")
        self._p_heads = p_heads
        self._skip_rewrite = skip_redundant_rewrite

    # ------------------------------------------------------------------

    def registers(self) -> Tuple[RegisterSpec, ...]:
        """Two SRSW registers: P_i writes r_i, P_{1-i} reads it."""
        return (
            RegisterSpec(name="r0", writers=(0,), readers=(1,), initial=BOTTOM),
            RegisterSpec(name="r1", writers=(1,), readers=(0,), initial=BOTTOM),
        )

    @staticmethod
    def _own(pid: int) -> str:
        return f"r{pid}"

    @staticmethod
    def _other(pid: int) -> str:
        return f"r{1 - pid}"

    def initial_state(self, pid: int, input_value: Hashable) -> TPState:
        self.check_input(input_value)
        if input_value is BOTTOM:
            raise ValueError("⊥ is not a legal input value")
        return TPState(pc="init", pref=input_value)

    def branches(self, pid: int, state: TPState) -> Sequence[Branch]:
        if state.pc == "init":
            return deterministic(WriteOp(self._own(pid), state.pref))
        if state.pc == "read":
            return deterministic(ReadOp(self._other(pid)))
        if state.pc == "write":
            # Line (2): heads rewrites the old preference, tails adopts
            # the other processor's value.  The coin is sampled only
            # when this step executes — the adversary committed first.
            if self._skip_rewrite:
                # Footnote-2 variant: heads writes nothing; the step is
                # spent going straight to the next read instead.
                return (
                    Branch(self._p_heads, ReadOp(self._other(pid))),
                    Branch(1.0 - self._p_heads,
                           WriteOp(self._own(pid), state.last_read)),
                )
            return (
                Branch(self._p_heads, WriteOp(self._own(pid), state.pref)),
                Branch(1.0 - self._p_heads,
                       WriteOp(self._own(pid), state.last_read)),
            )
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def observe(self, pid: int, state: TPState, op: Op,
                result: Hashable) -> TPState:
        if state.pc == "init":
            return dataclasses.replace(state, pc="read")
        if state.pc == "read":
            v = result
            if v == state.pref or v is BOTTOM:
                # Line (1): decide r_i and quit.
                return dataclasses.replace(
                    state, pc="done", last_read=v, output=state.pref
                )
            return dataclasses.replace(state, pc="write", last_read=v)
        if state.pc == "write":
            if isinstance(op, ReadOp):
                # skip_redundant_rewrite heads-path: this step was the
                # next iteration's read; handle it like a "read" step.
                return self.observe(
                    pid, dataclasses.replace(state, pc="read"), op, result
                )
            assert isinstance(op, WriteOp)
            return dataclasses.replace(state, pc="read", pref=op.value)
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: TPState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: TPState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return (
            f"P{pid}: pc={state.pc} pref={state.pref!r} "
            f"last_read={state.last_read!r}"
        )

"""Common base class for coordination protocols.

A coordination protocol (paper, Section 2) is an automaton family that
must satisfy:

* **Consistency** — no reachable configuration carries two different
  decision values,
* **Nontriviality** — every decision value is the input of some
  processor activated in the run,
* **Termination** — deterministic or randomized (probability of not
  having decided after k activations vanishes with k).

The base class adds input-domain bookkeeping on top of
:class:`repro.sim.process.Automaton`; the properties themselves are
checked externally by :mod:`repro.checker.properties` — a protocol does
not get to grade its own homework.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

from repro.sim.process import Automaton


class ConsensusProtocol(Automaton):
    """An :class:`Automaton` that solves (or claims to solve) coordination.

    ``values`` is the input domain V (cardinality ≥ 2 per the paper;
    protocols supporting arbitrary domains may pass ``None``).
    """

    def __init__(self, values: Optional[Sequence[Hashable]] = None) -> None:
        if values is not None:
            values = tuple(values)
            if len(values) < 2:
                raise ValueError(
                    "the coordination problem needs |V| >= 2 (it is trivial "
                    "otherwise, as the paper notes in Section 2)"
                )
            if len(set(values)) != len(values):
                raise ValueError("input domain contains duplicates")
        self._values: Optional[Tuple[Hashable, ...]] = values

    @property
    def values(self) -> Optional[Tuple[Hashable, ...]]:
        """The input domain V, or ``None`` for domain-agnostic protocols."""
        return self._values

    def check_input(self, value: Hashable) -> Hashable:
        """Validate one input value against the domain."""
        if self._values is not None and value not in self._values:
            raise ValueError(
                f"input {value!r} outside the protocol domain {self._values}"
            )
        return value

    @property
    def is_randomized(self) -> bool:
        """Whether any state has more than one branch.

        Default ``True`` (the interesting protocols here are randomized);
        deterministic protocols override this so the impossibility
        checker can refuse randomized inputs.
        """
        return True
